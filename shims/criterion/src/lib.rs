//! Hermetic stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the API subset its benches use: `criterion_group!` / `criterion_main!`,
//! benchmark groups, `bench_function` / `bench_with_input`, and
//! `Bencher::iter`. Measurement is a simple warmup + timed-iterations
//! loop reporting mean and min wall-clock per iteration — enough to track
//! regressions and overhead deltas, without criterion's statistics.
//!
//! Under `cargo test` the bench binary is invoked with `--test`; in that
//! mode every benchmark runs exactly one iteration so the suite stays
//! fast.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (only `--test` is recognized).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_bench(self.test_mode, name, sample_size, f);
        self
    }
}

/// A named benchmark id with an optional parameter, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(self.criterion.test_mode, &label, self.sample_size, f);
        self
    }

    /// Runs a benchmark that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(self.criterion.test_mode, &label, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API parity; measurement is eager).
    pub fn finish(self) {}
}

/// Timing harness passed to every benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

/// Result of one benchmark: per-iteration mean and minimum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Mean wall-clock per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest observed iteration, nanoseconds.
    pub min_ns: f64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Runs one benchmark and prints its timing; also used directly by the
/// telemetry-overhead bench to get numeric results.
pub fn run_bench<F: FnMut(&mut Bencher)>(
    test_mode: bool,
    label: &str,
    sample_size: usize,
    f: F,
) -> Measurement {
    let m = measure(test_mode, sample_size, f);
    if test_mode {
        println!("bench {label}: ok (1 iteration, test mode)");
    } else {
        println!(
            "bench {label}: mean {} / iter, min {} ({} samples)",
            fmt_ns(m.mean_ns),
            fmt_ns(m.min_ns),
            sample_size
        );
    }
    m
}

/// Measures without printing.
pub fn measure<F: FnMut(&mut Bencher)>(
    test_mode: bool,
    sample_size: usize,
    mut f: F,
) -> Measurement {
    if test_mode {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64;
        return Measurement {
            mean_ns: ns,
            min_ns: ns,
        };
    }
    // Warmup: one untimed sample.
    let mut warm = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let mut total_ns = 0f64;
    let mut min_ns = f64::INFINITY;
    let samples = sample_size.max(1) as u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64;
        total_ns += ns;
        min_ns = min_ns.min(ns);
    }
    Measurement {
        mean_ns: total_ns / samples as f64,
        min_ns,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations() {
        let mut calls = 0u32;
        let m = measure(false, 3, |b| b.iter(|| calls += 1));
        // warmup + 3 samples, one iteration each
        assert_eq!(calls, 4);
        assert!(m.mean_ns >= m.min_ns);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut calls = 0u32;
        measure(true, 50, |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("det", 34).to_string(), "det/34");
    }
}
