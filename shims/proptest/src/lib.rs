//! Hermetic stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of proptest its tests use: the [`proptest!`] macro, range /
//! tuple / collection strategies, [`Strategy::prop_map`] /
//! [`Strategy::prop_flat_map`], and the `prop_assert*` / `prop_assume!`
//! macros. Inputs are sampled from a generator seeded deterministically
//! from the test name, so failures reproduce across runs; there is **no
//! shrinking** — a failing case reports the case index and panics.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng as _, SampleUniform, SeedableRng};

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many sampled cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed or discarded test case, carried out of the property body by
/// the `prop_assert*` / `prop_assume!` macros.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed with this message.
    Fail(String),
    /// The case was discarded by `prop_assume!`.
    Reject,
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject => write!(f, "case rejected by prop_assume!"),
        }
    }
}

/// The per-test sampling source.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator seeded from the property name (deterministic across
    /// runs and platforms).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A source of sampled values.
pub trait Strategy {
    /// The sampled type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<F, T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each sampled value.
    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { inner: self, f }
    }

    /// Filters sampled values; resamples up to an attempt budget.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(S::Value) -> T, T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(S::Value) -> S2, S2: Strategy> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

pub mod collection {
    //! Collection strategies (`proptest::collection`).

    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng().gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with target sizes drawn from `size`.
    ///
    /// Sampling stops early if the element strategy cannot produce enough
    /// distinct values within a bounded number of attempts.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.rng().gen_range(self.size.clone());
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < 100 + 10 * target {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Runs each property in the block `cases` times over sampled inputs.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() {}
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg [$crate::ProptestConfig::default()] $($rest)* }
    };
}

/// Internal recursion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg [$cfg:expr]) => {};
    // Strip a user-written `#[test]` (the expansion adds its own).
    (@cfg [$cfg:expr] #[test] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg [$cfg] $($rest)* }
    };
    // Drop doc comments and other attributes on properties.
    (@cfg [$cfg:expr] #[$meta:meta] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg [$cfg] $($rest)* }
    };
    (@cfg [$cfg:expr]
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(())
                    | ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!("property {} failed at case {}/{}: {}",
                               stringify!($name), __case + 1, __config.cases, __msg);
                    }
                }
            }
        }
        $crate::__proptest_impl! { @cfg [$cfg] $($rest)* }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}` (both: `{:?}`): {}",
            stringify!($left), stringify!($right), __l, format!($($fmt)+)
        );
    }};
}

/// Discards the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_in_bounds(a in 5usize..50, b in 0u64..=3) {
            prop_assert!((5..50).contains(&a));
            prop_assert!(b <= 3);
        }

        #[test]
        fn tuples_and_maps(pair in (0u32..10, 0u32..10).prop_map(|(x, y)| x + y)) {
            prop_assert!(pair < 20);
        }

        fn flat_map_dependent(v in (1usize..8).prop_flat_map(|n| {
            crate::collection::vec(0usize..n, 1..4).prop_map(move |xs| (n, xs))
        })) {
            let (n, xs) = v;
            prop_assert!(xs.iter().all(|&x| x < n));
            prop_assert!(!xs.is_empty() && xs.len() < 4);
        }

        fn assume_discards(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = 0u64..1_000_000;
        let mut a = TestRng::deterministic("stream");
        let mut b = TestRng::deterministic("stream");
        let xs: Vec<u64> = (0..20).map(|_| Strategy::sample(&strat, &mut a)).collect();
        let ys: Vec<u64> = (0..20).map(|_| Strategy::sample(&strat, &mut b)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn btree_set_respects_bounds() {
        let mut rng = TestRng::deterministic("sets");
        let s = crate::collection::btree_set(0u32..8, 1..4);
        for _ in 0..50 {
            let set = Strategy::sample(&s, &mut rng);
            assert!(!set.is_empty() && set.len() < 4);
        }
    }
}
