//! Derive macros for the in-repo serde shim.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace uses — named structs, tuple structs, unit
//! structs, and enums with unit / tuple / struct variants — by walking the
//! `proc_macro` token stream directly (the build environment has no
//! crates.io access, so `syn`/`quote` are unavailable). Generics are
//! intentionally unsupported; attempting to derive on a generic type is a
//! compile error with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives `serde::Serialize` (the shim's `to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the shim's `from_value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde shim derive: expected `struct` or `enum`, found `{t}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde shim derive: expected type name, found `{t}`"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_items(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                t => panic!("serde shim derive: expected enum body, found `{t:?}`"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Counts comma-separated items at the top level of a token stream,
/// treating `<...>` as nesting (other brackets arrive pre-grouped).
fn count_top_level_items(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut items = 0usize;
    let mut pending = false;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if pending {
                    items += 1;
                }
                pending = false;
            }
            _ => pending = true,
        }
    }
    if pending {
        items += 1;
    }
    items
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Skip `:` and the type, up to a top-level comma.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant and the separating comma.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Fields::Named(fs) => map_literal(fs.iter().map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::to_value(&self.{f})"),
                    )
                })),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({}) => {},",
                            binds.join(", "),
                            map_literal([(v.clone(), inner)])
                        )
                    }
                    Fields::Named(fs) => {
                        let inner =
                            map_literal(fs.iter().map(|f| {
                                (f.clone(), format!("::serde::Serialize::to_value({f})"))
                            }));
                        format!(
                            "{name}::{v} {{ {} }} => {},",
                            fs.join(", "),
                            map_literal([(v.clone(), inner)])
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn map_literal(entries: impl IntoIterator<Item = (String, String)>) -> String {
    let items: Vec<String> = entries
        .into_iter()
        .map(|(k, v)| format!("(::std::string::String::from(\"{k}\"), {v})"))
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", items.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let ctor = build_ctor(name, fields, "__v");
            (name, format!("::std::result::Result::Ok({ctor})"))
        }
        Item::Enum { name, variants } => {
            let mut arms = Vec::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => arms.push(format!(
                        "::serde::Value::Str(__s) if __s == \"{v}\" => \
                         ::std::result::Result::Ok({name}::{v}),"
                    )),
                    _ => {
                        let ctor = build_ctor(&format!("{name}::{v}"), fields, "(&__m[0].1)");
                        arms.push(format!(
                            "::serde::Value::Map(__m) if __m.len() == 1 && __m[0].0 == \"{v}\" => \
                             ::std::result::Result::Ok({ctor}),"
                        ));
                    }
                }
            }
            let body = format!(
                "match __v {{\n{}\n_ => ::std::result::Result::Err(::serde::Error::new(\
                 \"no variant of {name} matched\")),\n}}",
                arms.join("\n")
            );
            (name, body)
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Builds a constructor expression reading from the value expression
/// `src` (which has type `&Value`); may use `?`.
fn build_ctor(path: &str, fields: &Fields, src: &str) -> String {
    match fields {
        Fields::Unit => path.to_string(),
        Fields::Tuple(1) => format!("{path}(::serde::Deserialize::from_value({src})?)"),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&{src}.as_seq({n})?[{i}])?"))
                .collect();
            format!("{path}({})", items.join(", "))
        }
        Fields::Named(fs) => {
            let items: Vec<String> = fs
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value({src}.field(\"{f}\")?)?"))
                .collect();
            format!("{path} {{ {} }}", items.join(", "))
        }
    }
}
