//! Hermetic stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *API subset it actually uses* behind the same paths
//! (`rand::Rng`, `rand::SeedableRng`, `rand::rngs::StdRng`,
//! `rand::seq::SliceRandom`). The generator is splitmix64 — statistically
//! strong enough for test-instance generation and randomized subroutines,
//! and deterministic per seed, which is all the repo relies on.
//!
//! Distributions are intentionally simple: integer ranges use a modulo
//! reduction (bias is irrelevant at the range sizes used here), floats use
//! the standard 53-bit mantissa construction.

use std::ops::{Range, RangeInclusive};

/// Core infinite stream of pseudo-random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform-in-range sample, mirroring `rand::distributions::uniform`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// The successor of `x` (for inclusive ranges); `None` on overflow.
    fn successor(x: Self) -> Option<Self>;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
            fn successor(x: $t) -> Option<$t> {
                x.checked_add(1)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
        assert!(low < high, "cannot sample empty range {low}..{high}");
        low + unit_f64(rng) * (high - low)
    }
    fn successor(x: f64) -> Option<f64> {
        Some(x) // inclusive float ranges sample the same interval
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(low: f32, high: f32, rng: &mut R) -> f32 {
        f64::sample_half_open(low as f64, high as f64, rng) as f32
    }
    fn successor(x: f32) -> Option<f32> {
        Some(x)
    }
}

/// A range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (*self.start(), *self.end());
        match T::successor(high) {
            Some(h) => T::sample_half_open(low, h, rng),
            None => T::sample_half_open(low, high, rng), // saturating fallback
        }
    }
}

/// Types drawable by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// A uniform draw over the type's full domain (unit interval for
    /// floats).
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self) < p
    }

    /// A full-domain draw of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: splitmix64.
    ///
    /// Passes through all 2^64 states; each output is a bijective mix of
    /// the counter, so short seed distances do not correlate streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    //! Slice helpers mirroring `rand::seq::SliceRandom`.

    use super::{Rng, RngCore};

    /// Shuffling and random choice on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
