//! Hermetic stand-in for `serde` (+ `serde_json`'s role).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal data model: [`Serialize`] lowers a value into a [`Value`]
//! tree, [`Deserialize`] rebuilds it, and [`json`] prints/parses `Value`
//! as standard JSON. The derive macros (`#[derive(Serialize,
//! Deserialize)]`) are re-exported from the sibling `serde_derive`
//! proc-macro crate and cover the shapes used in this workspace: named
//! structs, tuple structs, and enums with unit/tuple/struct variants.
//!
//! The wire format differs from real serde_json only in enum encoding
//! details; nothing in this repository depends on byte-compatibility with
//! upstream serde, only on lossless round-trips.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped value tree, the interchange format between
/// [`Serialize`] and [`Deserialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object.
    ///
    /// # Errors
    ///
    /// [`Error`] if `self` is not a map or the key is missing.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets `self` as a sequence of exactly `len` elements.
    ///
    /// # Errors
    ///
    /// [`Error`] on a non-sequence or a length mismatch.
    pub fn as_seq(&self, len: usize) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) if items.len() == len => Ok(items),
            Value::Seq(items) => Err(Error::new(format!(
                "expected sequence of length {len}, found length {}",
                items.len()
            ))),
            other => Err(Error::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "object",
        }
    }
}

/// A (de)serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying `msg`.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Lowers a value into the [`Value`] data model.
pub trait Serialize {
    /// The value as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from the [`Value`] data model.
///
/// The lifetime parameter exists for signature compatibility with real
/// serde bounds (`for<'de> Deserialize<'de>`); this shim always copies.
pub trait Deserialize<'de>: Sized {
    /// Parses `v` into `Self`.
    ///
    /// # Errors
    ///
    /// [`Error`] on a shape or type mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::new(format!("{x} out of range for {}", stringify!($t)))),
                    Value::I64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::new(format!("{x} out of range for {}", stringify!($t)))),
                    other => Err(Error::new(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::new(format!("{x} out of range for {}", stringify!($t)))),
                    Value::I64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::new(format!("{x} out of range for {}", stringify!($t)))),
                    other => Err(Error::new(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(x) => Ok(*x as $t),
                    Value::I64(x) => Ok(*x as $t),
                    other => Err(Error::new(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_seq(N)?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::new(format!("expected array of length {N}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v.as_seq(LEN)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

pub mod json {
    //! JSON printing and parsing for [`Value`](super::Value) trees.

    use super::{Deserialize, Error, Serialize, Value};
    use std::fmt::Write as _;

    /// Serializes `value` as a compact JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &value.to_value());
        out
    }

    /// Parses a JSON string into any [`Deserialize`] type.
    ///
    /// # Errors
    ///
    /// [`Error`] on malformed JSON or a shape mismatch.
    pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, Error> {
        T::from_value(&parse(s)?)
    }

    /// Parses a JSON string into a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// [`Error`] on malformed JSON or trailing input.
    pub fn parse(s: &str) -> Result<Value, Error> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::new(format!("trailing input at byte {pos}")));
        }
        Ok(v)
    }

    pub(crate) fn write_value(out: &mut String, v: &Value) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(x) => {
                let _ = write!(out, "{x}");
            }
            Value::I64(x) => {
                let _ = write!(out, "{x}");
            }
            Value::F64(x) => {
                if x.is_finite() {
                    // Keep integral floats distinguishable from integers so
                    // round-trips preserve the f64 type.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Seq(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_value(out, item);
                }
                out.push(']');
            }
            Value::Map(entries) => {
                out.push('{');
                for (i, (k, val)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    write_value(out, val);
                }
                out.push('}');
            }
        }
    }

    pub(crate) fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {pos}",
                c as char
            )))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
            Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("expected `,` or `]` at byte {pos}"))),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut entries = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    expect(bytes, pos, b':')?;
                    let val = parse_value(bytes, pos)?;
                    entries.push((key, val));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("expected `,` or `}}` at byte {pos}"))),
                    }
                }
            }
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {pos}")))
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(Error::new(format!("expected string at byte {pos}")));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&b) = bytes.get(*pos) {
            match b {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    *pos += 1;
                }
                _ => {
                    // Advance by one UTF-8 code point.
                    let s = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("unterminated string"))?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
        Err(Error::new("unterminated string"))
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = bytes.get(*pos) {
            match b {
                b'0'..=b'9' => *pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    *pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("expected number at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("bad float `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|x| Value::I64(-x))
                .map_err(|_| Error::new(format!("bad integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("bad integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let v: u64 = json::from_str(&json::to_string(&42u64)).unwrap();
        assert_eq!(v, 42);
        let f: f64 = json::from_str(&json::to_string(&2.5f64)).unwrap();
        assert!((f - 2.5).abs() < 1e-12);
        let s: String = json::from_str(&json::to_string("he\"llo\n")).unwrap();
        assert_eq!(s, "he\"llo\n");
        let o: Option<u32> = json::from_str(&json::to_string(&None::<u32>)).unwrap();
        assert_eq!(o, None);
        let xs: Vec<(u32, String)> =
            json::from_str(&json::to_string(&vec![(1u32, "a".to_string())])).unwrap();
        assert_eq!(xs, vec![(1, "a".to_string())]);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let s = json::to_string(&3.0f64);
        assert_eq!(s, "3.0");
        let back: f64 = json::from_str(&s).unwrap();
        assert_eq!(back, 3.0);
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(json::parse("1 2").is_err());
        assert!(json::parse("[1,").is_err());
        assert!(json::parse("\"open").is_err());
    }

    #[test]
    fn nested_values_parse() {
        let v = json::parse(r#"{"a": [1, -2, 3.5, null, true], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(
            v.field("b").unwrap().field("c").unwrap(),
            &Value::Str("d".into())
        );
        assert_eq!(v.field("a").unwrap().as_seq(5).unwrap()[1], Value::I64(-2));
    }
}
