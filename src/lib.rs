//! # delta-coloring
//!
//! A from-scratch Rust reproduction of *Towards Optimal Distributed
//! Δ-Coloring* (Jakob & Maus, PODC 2025): deterministic and randomized
//! LOCAL-model algorithms that properly color dense graphs with Δ colors
//! (Brooks' theorem made distributed), together with every substrate they
//! stand on.
//!
//! This crate is the façade: it re-exports the workspace members so
//! downstream users can depend on one crate.
//!
//! | module | contents |
//! |---|---|
//! | [`graphs`] | graph type, text I/O, generators (incl. the paper's hard/easy dense families and sparse+dense mixtures), coloring validators |
//! | [`local`] | synchronous LOCAL-model simulators (state-exchange, per-port messages, CONGEST metering) and round ledger |
//! | [`decomposition`] | almost-clique decomposition (Lemma 2) |
//! | [`subroutines`] | Linial coloring + color reduction, (deg+1)-list coloring, MIS, ruling sets, maximal matching, degree splitting, network decomposition, CONGEST toolbox |
//! | [`grabbing`] | multihypergraphs and hyperedge grabbing (Lemma 5; three solvers) |
//! | [`coloring`] | the Δ-coloring pipelines (Theorems 1 and 2), the sparse+dense extension, figure renderers |
//! | [`reference`] | baselines: sequential Brooks, Δ+1, global stalling, greedy jamming |
//!
//! A CLI ships as `delta-color` (generate instances, color edge-list
//! files); see `docs/ALGORITHM.md` for a guided tour of the pipeline.
//!
//! # Quickstart
//!
//! ```
//! use delta_coloring::graphs::generators::{hard_cliques, HardCliqueParams};
//! use delta_coloring::coloring::{color_deterministic, Config};
//!
//! // A dense graph made of 34 hard cliques with Δ = 16.
//! let inst = hard_cliques(&HardCliqueParams {
//!     cliques: 34, delta: 16, external_per_vertex: 1, seed: 1,
//! })?;
//! let report = color_deterministic(&inst.graph, &Config::for_delta(16))?;
//! delta_coloring::graphs::coloring::verify_delta_coloring(&inst.graph, &report.coloring)?;
//! println!("Δ-colored {} vertices in {} LOCAL rounds", inst.graph.n(), report.rounds());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use acd as decomposition;
pub use baselines as reference;
pub use delta_core as coloring;
pub use graphgen as graphs;
pub use hypergraph as grabbing;
pub use localsim as local;
pub use primitives as subroutines;
