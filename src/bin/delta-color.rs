//! Command-line Δ-coloring tool.
//!
//! ```text
//! delta-color gen --cliques 68 --delta 16 --seed 1 > graph.txt
//! delta-color color graph.txt                  # deterministic (Theorem 1)
//! delta-color color graph.txt --randomized 7   # randomized (Theorem 2)
//! delta-color color graph.txt --general 7      # sparse+dense extension
//! delta-color color graph.txt --profile        # per-phase profile table
//! delta-color color graph.txt --metrics-out m.json  # metrics snapshot
//! delta-color color graph.txt --trace-out t.jsonl   # structured trace
//! delta-color color graph.txt --faults seed=7,drop=0.01   # fault injection
//! delta-color color graph.txt --threads 4      # worker pool width
//! delta-color color graph.txt --checkpoint-dir ckpt   # phase snapshots
//! delta-color color graph.txt --resume ckpt/checkpoint-06-pre-shattering.json
//! delta-color replay bundles/bundle-after-post-shattering.json
//! ```
//!
//! `color` reads the edge-list format (see `graphgen::io`), writes the
//! coloring (`vertex color` per line) to stdout and the round ledger to
//! stderr. `--trace-out` streams every telemetry event as one JSON object
//! per line (schema in `docs/OBSERVABILITY.md`); `--profile` prints a
//! per-phase breakdown — rounds, share of total, wall-clock, messages —
//! reconstructed from the same event stream, plus the worker-pool
//! utilization table (busy/idle/merge per worker) and latency histograms
//! from the metrics hub. `--metrics-out PATH` writes the full versioned
//! metrics snapshot (counters, watermarks, histograms, worker lanes) as
//! JSON. With `--bundle-dir`, a bounded flight recorder (default 512
//! events, `--flight-capacity N`) rides along and its tail is embedded
//! into any captured repro bundle; `replay` prints it back.
//!
//! Supervisor options (see `docs/RECOVERY.md`): `--checkpoint-dir DIR`
//! snapshots after every phase; `--resume SNAPSHOT` continues a killed run
//! bit-identically; `--stop-after PHASE` suspends at a boundary;
//! `--bundle-dir DIR` captures failures as repro bundles; `--degrade`
//! contains component panics/budget overruns by falling back to the
//! Brooks baseline; `--component-round-budget N` and
//! `--component-wall-budget-ms N` bound component solves;
//! `--chaos-panic I,J` / `--chaos-skip I,J` inject supervisor-level
//! failures for testing. `replay <bundle>` re-executes a repro bundle and
//! reports whether the recorded failure reproduced.
//!
//! Sharded mode (see `docs/DISTRIBUTED.md`): `shard-color <file>
//! --shards N` partitions the graph across `N` worker *processes* (this
//! binary re-invoked as `shard-serve`, connected over loopback TCP) and
//! runs a wire algorithm (`--algo greedy|rand:S|countdown|floodmax:T`)
//! actually distributed — bit-identical to `--shards 0`, the
//! single-process reference, even after `--chaos-kill S@R` SIGKILLs a
//! worker mid-run and it resumes from a checkpoint.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use delta_coloring::coloring::{
    color_sparse_dense_probed, drive_deterministic, drive_randomized, load_bundle, load_snapshot,
    replay_bundle, run_shard_case, run_wire_coloring, save_bundle, shard_bundle, validate_coloring,
    ChaosPlan, Config, DegradedComponent, DistributedConfig, FailureReport, PhaseCursor,
    PipelineKind, RandConfig, RunOutcome, ShardRunSpec, Supervisor,
};
use delta_coloring::graphs::coloring::verify_delta_coloring;
use delta_coloring::graphs::generators::{gnp, hard_cliques, HardCliqueParams};
use delta_coloring::graphs::io;
use delta_coloring::local::{
    set_default_threads, ChaosKill, Event, FanoutSink, FaultPlan, FlightRecorder, JsonlSink,
    MetricsHub, NetFaultPlan, Probe, RecordingSink, Sink, WireAlgo, WorkerBackend,
};

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_index_list(key: &str, spec: &str) -> Result<Vec<usize>, String> {
    spec.split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|e| format!("invalid {key} entry `{s}`: {e}"))
        })
        .collect()
}

/// Parses a `--chaos-kill` spec: `SHARD@ROUND` entries, comma-separated
/// (`1@2,0@5` kills shard 1 after round 2 and shard 0 after round 5).
fn parse_chaos_kills(spec: &str) -> Result<Vec<ChaosKill>, String> {
    spec.split(',')
        .map(|s| {
            let entry = s.trim();
            let (shard, round) = entry
                .split_once('@')
                .ok_or_else(|| format!("invalid --chaos-kill entry `{entry}`: expected S@R"))?;
            Ok(ChaosKill {
                shard: shard
                    .parse()
                    .map_err(|e| format!("invalid --chaos-kill shard `{shard}`: {e}"))?,
                after_round: round
                    .parse()
                    .map_err(|e| format!("invalid --chaos-kill round `{round}`: {e}"))?,
            })
        })
        .collect()
}

/// Builds the [`Supervisor`] from CLI flags; `None` when no supervisor
/// flag was given (the run then takes the plain, unsupervised path).
fn supervisor_from_args(args: &[String]) -> Result<Option<Supervisor>, String> {
    let mut sup = Supervisor::passive();
    let mut any = false;
    if let Some(dir) = arg_value(args, "--checkpoint-dir") {
        sup.checkpoint_dir = Some(PathBuf::from(dir));
        any = true;
    }
    if let Some(dir) = arg_value(args, "--bundle-dir") {
        sup.bundle_dir = Some(PathBuf::from(dir));
        any = true;
    }
    if let Some(phase) = arg_value(args, "--stop-after") {
        sup.stop_after = Some(phase.parse::<PhaseCursor>()?);
        any = true;
    }
    if let Some(n) = arg_value(args, "--component-round-budget") {
        sup.component_round_budget = Some(
            n.parse()
                .map_err(|e| format!("invalid --component-round-budget value `{n}`: {e}"))?,
        );
        any = true;
    }
    if let Some(n) = arg_value(args, "--component-wall-budget-ms") {
        sup.component_wall_budget_ms = Some(
            n.parse()
                .map_err(|e| format!("invalid --component-wall-budget-ms value `{n}`: {e}"))?,
        );
        any = true;
    }
    if args.iter().any(|a| a == "--degrade") {
        sup.degrade = true;
        any = true;
    }
    let mut chaos = ChaosPlan::default();
    if let Some(spec) = arg_value(args, "--chaos-panic") {
        chaos.panic_components = parse_index_list("--chaos-panic", &spec)?;
    }
    if let Some(spec) = arg_value(args, "--chaos-skip") {
        chaos.skip_components = parse_index_list("--chaos-skip", &spec)?;
    }
    if !chaos.is_empty() {
        sup.chaos = chaos;
        any = true;
    }
    Ok(any.then_some(sup))
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            let cliques = arg_value(&args, "--cliques").map_or(Ok(68), |v| v.parse())?;
            let delta = arg_value(&args, "--delta").map_or(Ok(16), |v| v.parse())?;
            let seed = arg_value(&args, "--seed").map_or(Ok(1), |v| v.parse())?;
            let inst = hard_cliques(&HardCliqueParams {
                cliques,
                delta,
                external_per_vertex: 1,
                seed,
            })?;
            print!("{}", io::write_edge_list(&inst.graph));
            eprintln!(
                "generated {} vertices / {} edges (Δ = {delta}, {cliques} hard cliques)",
                inst.graph.n(),
                inst.graph.m()
            );
            Ok(())
        }
        Some("color") => {
            let path = args.get(1).filter(|p| !p.starts_with("--")).ok_or(
                "usage: delta-color color <file> [--randomized SEED | --general SEED] \
                 [--faults SPEC] [--threads K] [--trace-out PATH] [--profile] \
                 [--metrics-out PATH] [--flight-capacity N] \
                 [--checkpoint-dir DIR] [--resume SNAPSHOT] [--stop-after PHASE] \
                 [--bundle-dir DIR] [--degrade] [--component-round-budget N] \
                 [--component-wall-budget-ms N] [--chaos-panic I,J] [--chaos-skip I,J]",
            )?;
            if let Some(k) = arg_value(&args, "--threads") {
                let k: usize = k
                    .parse()
                    .map_err(|e| format!("invalid --threads value `{k}`: {e}"))?;
                // Overrides LOCALSIM_THREADS for executor stepping and the
                // pipeline component pool. Every result is bit-identical at
                // any thread count; this only changes wall-clock.
                set_default_threads(k);
            }
            let g = io::read_edge_list(path)
                .map_err(|e| format!("cannot read graph file `{path}`: {e}"))?;
            let delta = g.max_degree();
            eprintln!("read {} vertices / {} edges, Δ = {delta}", g.n(), g.m());

            // Assemble the probe: a JSONL trace file, an in-memory
            // recording for --profile, a bounded flight recorder when
            // repro bundles are being captured — any combination. I/O
            // failures surface through the CLI error path (nonzero exit,
            // message naming the file) — never a panic.
            let profile = args.iter().any(|a| a == "--profile");
            let metrics_out = arg_value(&args, "--metrics-out");
            let hub = (profile || metrics_out.is_some()).then(|| Arc::new(MetricsHub::new()));
            let recording = profile.then(|| Arc::new(RecordingSink::new()));
            let flight_capacity: usize = arg_value(&args, "--flight-capacity")
                .map_or(Ok(512), |v| v.parse())
                .map_err(|e| format!("invalid --flight-capacity value: {e}"))?;
            let flight = arg_value(&args, "--bundle-dir")
                .is_some()
                .then(|| Arc::new(FlightRecorder::new(flight_capacity)));
            let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
            if let Some(trace_path) = arg_value(&args, "--trace-out") {
                let sink = JsonlSink::create(&trace_path)
                    .map_err(|e| format!("cannot open trace file `{trace_path}`: {e}"))?;
                sinks.push(Arc::new(sink));
                eprintln!("tracing to {trace_path}");
            }
            if let Some(rec) = &recording {
                sinks.push(rec.clone());
            }
            if let Some(f) = &flight {
                sinks.push(f.clone());
            }
            let mut probe = match sinks.as_slice() {
                [] => Probe::disabled(),
                [only] => Probe::new(only.clone()),
                _ => Probe::from_sink(FanoutSink::new(sinks)),
            };
            if let Some(hub) = &hub {
                probe = probe.with_metrics(hub.clone());
            }

            let faults: Option<FaultPlan> = arg_value(&args, "--faults")
                .map(|spec| {
                    spec.parse()
                        .map_err(|e| format!("invalid --faults spec `{spec}`: {e}"))
                })
                .transpose()?;
            let mut sup = supervisor_from_args(&args)?.unwrap_or_default();
            if let Some(f) = &flight {
                sup.flight = Some(f.clone());
            }
            let resume = arg_value(&args, "--resume")
                .map(|p| load_snapshot(std::path::Path::new(&p)))
                .transpose()?;

            let (coloring, ledger) = if let Some(snap) = resume {
                // Resume: pipeline, config, and fault plan all come from
                // the snapshot — only supervisor policy and the probe are
                // taken from this invocation.
                eprintln!("resuming after phase `{}`", snap.cursor);
                match snap.pipeline {
                    PipelineKind::Randomized => {
                        let rand = snap
                            .rand
                            .clone()
                            .ok_or("snapshot missing randomized state")?;
                        let plan = snap.faults.clone();
                        let outcome = drive_randomized(
                            &g,
                            &rand.config,
                            plan.as_ref(),
                            &probe,
                            &sup,
                            Some(snap),
                        )?;
                        let Some(report) = finish(outcome) else {
                            return Ok(());
                        };
                        let report = report?;
                        (report.coloring, report.ledger)
                    }
                    PipelineKind::Deterministic => {
                        let det = snap
                            .det
                            .clone()
                            .ok_or("snapshot missing deterministic state")?;
                        let outcome =
                            drive_deterministic(&g, &det.config, &probe, &sup, Some(snap))?;
                        let Some(report) = finish(outcome) else {
                            return Ok(());
                        };
                        let report = report?;
                        (report.coloring, report.ledger)
                    }
                    // Sharded runs checkpoint through their own files
                    // (shard-checkpoint-*.json), never phase snapshots.
                    PipelineKind::Shard => {
                        return Err("snapshot belongs to the sharded runtime; \
                                    shard runs resume from their own checkpoints"
                            .into())
                    }
                }
            } else if faults.is_some() || arg_value(&args, "--randomized").is_some() {
                // Fault injection runs the randomized pipeline (the only
                // one with a recovery loop); --randomized picks the
                // pipeline seed, defaulting to the plan seed.
                let seed = match (arg_value(&args, "--randomized"), &faults) {
                    (Some(s), _) => s.parse()?,
                    (None, Some(plan)) => plan.seed,
                    (None, None) => unreachable!("branch requires --faults or --randomized"),
                };
                let config = RandConfig::for_delta(delta, seed);
                let outcome = drive_randomized(&g, &config, faults.as_ref(), &probe, &sup, None)?;
                let Some(report) = finish(outcome) else {
                    return Ok(());
                };
                let report = report?;
                if faults.is_some() {
                    let validation = validate_coloring(&g, &report.coloring, delta as u32);
                    if !validation.is_ok() {
                        return Err(format!("post-run validation failed: {validation}").into());
                    }
                    eprintln!(
                        "faults: {} retries across {} of {} components, {} vertices struck, \
                         {} recovery rounds; validation: {}",
                        report.recovery.retries,
                        report.recovery.components_hit,
                        report.shatter.components,
                        report.recovery.struck_vertices,
                        report.recovery.recovery_rounds,
                        validation.summary()
                    );
                }
                (report.coloring, report.ledger)
            } else if let Some(seed) = arg_value(&args, "--general") {
                let config = RandConfig::for_delta(delta, seed.parse()?);
                let report = color_sparse_dense_probed(&g, &config, &probe)?;
                (report.coloring, report.ledger)
            } else {
                let outcome =
                    drive_deterministic(&g, &Config::for_delta(delta), &probe, &sup, None)?;
                let Some(report) = finish(outcome) else {
                    return Ok(());
                };
                let report = report?;
                (report.coloring, report.ledger)
            };
            drop(probe); // flush the trace file before reporting
            verify_delta_coloring(&g, &coloring)?;
            eprintln!("{ledger}");
            // Write the metrics snapshot before the utilization render,
            // which registers (empty) histograms it probes for.
            if let (Some(hub), Some(path)) = (&hub, &metrics_out) {
                let json = serde::json::to_string(&hub.snapshot_value());
                std::fs::write(path, json + "\n")
                    .map_err(|e| format!("cannot write metrics file `{path}`: {e}"))?;
                eprintln!("metrics written to {path}");
            }
            if let Some(rec) = &recording {
                eprintln!("{}", ledger.render_table());
                eprint!("{}", render_profile(&rec.events(), ledger.total()));
            }
            if let (Some(hub), true) = (&hub, profile) {
                eprint!("{}", render_utilization(hub));
            }
            print!("{}", io::write_coloring(&coloring));
            Ok(())
        }
        Some("shard-serve") => {
            // A worker shard: dial the coordinator and serve rounds until
            // a Shutdown frame (or the coordinator's death) ends the run.
            // Spawned by `shard-color`'s process backend; the coordinator
            // appends the address as the final argument.
            let addr = arg_value(&args, "--connect").ok_or(
                "usage: delta-color shard-serve --connect HOST:PORT [--read-timeout-ms N]",
            )?;
            // The read timeout bounds how long an orphaned worker (its
            // coordinator dead or wedged without closing the socket)
            // lingers before exiting with a clear error. 0 disables it.
            let timeout = match arg_value(&args, "--read-timeout-ms") {
                Some(ms) => Duration::from_millis(
                    ms.parse()
                        .map_err(|e| format!("invalid --read-timeout-ms value `{ms}`: {e}"))?,
                ),
                None => delta_coloring::local::shard::DEFAULT_READ_TIMEOUT,
            };
            delta_coloring::local::shard::serve_connect_with(&addr, timeout)?;
            Ok(())
        }
        Some("shard-color") => {
            let path = args.get(1).filter(|p| !p.starts_with("--")).ok_or(
                "usage: delta-color shard-color <file> [--shards N] \
                 [--algo greedy|rand:S|countdown|floodmax:T] [--seed S] [--faults SPEC] \
                 [--max-rounds M] [--checkpoint-every K] [--checkpoint-dir DIR] \
                 [--chaos-kill S@R,...] [--chaos-net SPEC] [--barrier-timeout-ms N] \
                 [--max-respawns N] [--trace-out PATH] \
                 [--metrics-out PATH]\n  (--shards 0 runs the single-process \
                 reference executor)",
            )?;
            let g = io::read_edge_list(path)
                .map_err(|e| format!("cannot read graph file `{path}`: {e}"))?;
            eprintln!(
                "read {} vertices / {} edges, Δ = {}",
                g.n(),
                g.m(),
                g.max_degree()
            );
            let algo: WireAlgo = match (arg_value(&args, "--algo"), arg_value(&args, "--seed")) {
                (Some(spec), _) => spec.parse()?,
                (None, Some(s)) => WireAlgo::Rand {
                    seed: s
                        .parse()
                        .map_err(|e| format!("invalid --seed `{s}`: {e}"))?,
                },
                (None, None) => WireAlgo::Greedy,
            };
            let mut cfg = DistributedConfig::for_algo(algo);
            if let Some(n) = arg_value(&args, "--shards") {
                cfg.shards = n
                    .parse()
                    .map_err(|e| format!("invalid --shards value `{n}`: {e}"))?;
            }
            cfg.faults = arg_value(&args, "--faults")
                .map(|spec| {
                    spec.parse::<FaultPlan>()
                        .map_err(|e| format!("invalid --faults spec `{spec}`: {e}"))
                })
                .transpose()?;
            if let Some(m) = arg_value(&args, "--max-rounds") {
                cfg.max_rounds = m
                    .parse()
                    .map_err(|e| format!("invalid --max-rounds value `{m}`: {e}"))?;
            }
            if let Some(k) = arg_value(&args, "--checkpoint-every") {
                cfg.checkpoint_every = k
                    .parse()
                    .map_err(|e| format!("invalid --checkpoint-every value `{k}`: {e}"))?;
            }
            if let Some(n) = arg_value(&args, "--max-respawns") {
                cfg.max_respawns = n
                    .parse()
                    .map_err(|e| format!("invalid --max-respawns value `{n}`: {e}"))?;
            }
            if let Some(spec) = arg_value(&args, "--chaos-kill") {
                cfg.chaos_kills = parse_chaos_kills(&spec)?;
            }
            if let Some(spec) = arg_value(&args, "--chaos-net") {
                cfg.net_faults = Some(
                    spec.parse::<NetFaultPlan>()
                        .map_err(|e| format!("invalid --chaos-net spec `{spec}`: {e}"))?,
                );
            }
            if let Some(ms) = arg_value(&args, "--barrier-timeout-ms") {
                cfg.liveness.barrier_timeout =
                    Some(Duration::from_millis(ms.parse().map_err(|e| {
                        format!("invalid --barrier-timeout-ms value `{ms}`: {e}")
                    })?));
            }
            // Workers are real OS processes: this same binary, re-invoked
            // in shard-serve mode. A killed worker (--chaos-kill sends a
            // real SIGKILL) is respawned and restored from the latest
            // checkpoint, bit-identically.
            cfg.backend = WorkerBackend::Process {
                program: std::env::current_exe()
                    .map_err(|e| format!("cannot locate own executable: {e}"))?,
                args: vec!["shard-serve".to_string(), "--connect".to_string()],
            };
            let mut sup = Supervisor::passive();
            if let Some(dir) = arg_value(&args, "--checkpoint-dir") {
                sup.checkpoint_dir = Some(PathBuf::from(dir));
            }
            let metrics_out = arg_value(&args, "--metrics-out");
            let hub = metrics_out.is_some().then(|| Arc::new(MetricsHub::new()));
            let mut probe = match arg_value(&args, "--trace-out") {
                Some(trace_path) => {
                    let sink = JsonlSink::create(&trace_path)
                        .map_err(|e| format!("cannot open trace file `{trace_path}`: {e}"))?;
                    eprintln!("tracing to {trace_path}");
                    Probe::from_sink(sink)
                }
                None => Probe::disabled(),
            };
            if let Some(hub) = &hub {
                probe = probe.with_metrics(hub.clone());
            }
            let report = run_wire_coloring(&g, &cfg, &sup, probe)?;
            if let (Some(hub), Some(path)) = (&hub, &metrics_out) {
                let json = serde::json::to_string(&hub.snapshot_value());
                std::fs::write(path, json + "\n")
                    .map_err(|e| format!("cannot write metrics file `{path}`: {e}"))?;
                eprintln!("metrics written to {path}");
            }
            match report.colors_used {
                Some(colors) => eprintln!(
                    "{} shard(s): {} rounds, {colors} colors (palette Δ+1 = {})",
                    cfg.shards,
                    report.rounds,
                    g.max_degree() + 1
                ),
                None => eprintln!("{} shard(s): {} rounds", cfg.shards, report.rounds),
            }
            if let Some(t) = &report.traffic {
                eprintln!(
                    "wire: {} B init, {} B/round steady-state, {} ghost update(s) sent, \
                     {} suppressed",
                    t.init_bytes,
                    t.round_bytes(report.rounds),
                    t.ghost_updates,
                    t.ghost_suppressed
                );
                if t.adopted_ranges > 0 {
                    eprintln!(
                        "degraded: {} shard range(s) adopted in-process after \
                         exhausting their respawn budget",
                        t.adopted_ranges
                    );
                }
            }
            let mut out = String::new();
            for (v, o) in report.outputs.iter().enumerate() {
                out.push_str(&format!("{v} {o}\n"));
            }
            print!("{out}");
            Ok(())
        }
        Some("soak") => {
            // Randomized chaos campaign over the sharded runtime: each
            // iteration derives a graph, a simulated-fault plan, a wire
            // chaos plan, and a kill from one case seed, runs the sharded
            // case against the single-process reference, and captures any
            // divergence as a replayable repro bundle (which is replayed
            // on the spot to confirm it reproduces).
            let seconds: Option<u64> = arg_value(&args, "--seconds")
                .map(|v| {
                    v.parse()
                        .map_err(|e| format!("invalid --seconds value `{v}`: {e}"))
                })
                .transpose()?;
            let iterations: u64 = arg_value(&args, "--iterations")
                .map(|v| {
                    v.parse()
                        .map_err(|e| format!("invalid --iterations value `{v}`: {e}"))
                })
                .transpose()?
                .unwrap_or(if seconds.is_some() { u64::MAX } else { 20 });
            let shards: usize = arg_value(&args, "--shards").map_or(Ok(3), |v| v.parse())?;
            let algo: WireAlgo = arg_value(&args, "--algo").map_or(Ok(WireAlgo::Greedy), |v| {
                v.parse()
                    .map_err(|e| format!("invalid --algo spec `{v}`: {e}"))
            })?;
            let seed0: u64 = arg_value(&args, "--seed").map_or(Ok(1), |v| v.parse())?;
            let max_rounds: u64 =
                arg_value(&args, "--max-rounds").map_or(Ok(10_000), |v| v.parse())?;
            let bundle_dir = PathBuf::from(
                arg_value(&args, "--bundle-dir").unwrap_or_else(|| "soak-bundles".to_string()),
            );
            // The splitmix64 finalizer: one case seed fans out into every
            // chaos decision below, so `--seed` reproduces the campaign.
            let mix = |mut x: u64| {
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            let start = Instant::now();
            let (mut ran, mut failures, mut unreproduced) = (0u64, 0u64, 0u64);
            for i in 0..iterations {
                if let Some(s) = seconds {
                    if start.elapsed() >= Duration::from_secs(s) {
                        break;
                    }
                }
                let cs = mix(seed0 ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let n = 24 + (cs % 33) as usize;
                let g = gnp(n, 0.15, cs);
                // Simulated faults: jitter is safe for every wire algo;
                // message drops only for greedy (rand requires reliable
                // delivery — see docs/DISTRIBUTED.md).
                let drop_p = if matches!(algo, WireAlgo::Greedy) {
                    0.02 * ((cs >> 8) % 4) as f64
                } else {
                    0.0
                };
                let jitter = (cs >> 16) % 3;
                let fault_spec = format!("seed={cs},drop={drop_p},jitter={jitter}");
                let faults: FaultPlan = fault_spec
                    .parse()
                    .map_err(|e| format!("internal fault spec `{fault_spec}`: {e}"))?;
                let mut net = NetFaultPlan {
                    seed: cs,
                    delay_p: 0.02,
                    dup_p: 0.05,
                    corrupt_p: 0.002,
                    ..NetFaultPlan::default()
                };
                let mut spec = ShardRunSpec::new(shards, &algo);
                spec.max_rounds = max_rounds;
                spec.max_respawns = 6;
                spec.kills = vec![((cs >> 32) % shards as u64, 1 + (cs >> 24) % 3)];
                if i % 3 == 0 {
                    net.resets.push(((cs >> 40) % shards as u64, 2));
                }
                if i % 5 == 4 {
                    // A hung worker: detection needs a barrier deadline.
                    net.hangs.push(((cs >> 48) % shards as u64, 3));
                    spec.barrier_timeout_ms = Some(750);
                    spec.heartbeat_ms = Some(250);
                }
                spec.net = Some(net);
                if let Some(verdict) = run_shard_case(&g, &spec, Some(&faults)) {
                    failures += 1;
                    let bundle = shard_bundle(
                        &g,
                        &spec,
                        Some(&faults),
                        verdict.clone(),
                        Some(format!("soak-{i:03}")),
                    );
                    let path = save_bundle(&bundle_dir, &bundle)?;
                    eprintln!(
                        "soak case {i}: FAILED — {verdict}\n  bundle saved to {} \
                         (replay with: delta-color replay)",
                        path.display()
                    );
                    let rep = replay_bundle(&path, &Probe::disabled())?;
                    if rep.reproduced {
                        eprintln!("  replay: failure reproduced");
                    } else {
                        unreproduced += 1;
                        eprintln!(
                            "  replay: NOT reproduced (observed: {})",
                            rep.observed_error.as_deref().unwrap_or("run was clean")
                        );
                    }
                }
                ran += 1;
            }
            eprintln!(
                "soak: {ran} case(s) in {:.1}s, {failures} failure(s), {unreproduced} unreproduced",
                start.elapsed().as_secs_f64()
            );
            if failures > 0 {
                Err(format!("soak campaign found {failures} diverging case(s)").into())
            } else {
                Ok(())
            }
        }
        Some("replay") => {
            let path = args
                .get(1)
                .filter(|p| !p.starts_with("--"))
                .ok_or("usage: delta-color replay <bundle.json>")?;
            let bundle = load_bundle(std::path::Path::new(path))?;
            if !bundle.flight.is_empty() {
                eprintln!(
                    "flight recorder: last {} event(s) before capture:",
                    bundle.flight.len()
                );
                for event in &bundle.flight {
                    eprintln!("  {}", serde::json::to_string(event));
                }
            }
            let report = replay_bundle(std::path::Path::new(path), &Probe::disabled())?;
            eprintln!("recorded error:      {}", report.recorded_error);
            match &report.observed_error {
                Some(e) => eprintln!("observed error:      {e}"),
                None => eprintln!("observed error:      (run completed without error)"),
            }
            eprintln!("recorded violations: {}", report.recorded_violations.len());
            eprintln!("observed violations: {}", report.observed_violations.len());
            if report.reproduced {
                eprintln!("replay: failure reproduced");
                Ok(())
            } else {
                Err("replay did not reproduce the recorded failure".into())
            }
        }
        _ => {
            eprintln!(
                "usage:\n  delta-color gen [--cliques N] [--delta D] [--seed S]\n  \
                 delta-color color <file> [--randomized SEED | --general SEED] \
                 [--faults seed=S,drop=P,jitter=J,crash=N@R+...] [--threads K] \
                 [--trace-out PATH] [--profile] [--metrics-out PATH] \
                 [--flight-capacity N]\n    supervisor: [--checkpoint-dir DIR] \
                 [--resume SNAPSHOT] [--stop-after PHASE] [--bundle-dir DIR] [--degrade] \
                 [--component-round-budget N] [--component-wall-budget-ms N] \
                 [--chaos-panic I,J] [--chaos-skip I,J]\n  \
                 delta-color shard-color <file> [--shards N] [--algo SPEC] [--seed S] \
                 [--faults SPEC] [--max-rounds M] [--checkpoint-every K] \
                 [--checkpoint-dir DIR] [--chaos-kill S@R,...] [--chaos-net SPEC] \
                 [--barrier-timeout-ms N] [--max-respawns N] \
                 [--trace-out PATH] [--metrics-out PATH]\n  \
                 delta-color shard-serve --connect HOST:PORT [--read-timeout-ms N]\n  \
                 delta-color soak [--iterations N | --seconds S] [--shards N] [--algo SPEC] \
                 [--seed S] [--max-rounds M] [--bundle-dir DIR]\n  \
                 delta-color replay <bundle.json>"
            );
            Err("unknown command".into())
        }
    }
}

/// Folds a supervised run outcome into its report. `Complete` prints any
/// degraded components and yields the report; `Suspended` prints the
/// resume hint and yields `None` (the caller exits cleanly); `Failed`
/// yields the rendered failure as an error.
fn finish<R>(outcome: RunOutcome<R>) -> Option<Result<R, Box<dyn std::error::Error>>> {
    match outcome {
        RunOutcome::Complete { report, degraded } => {
            report_degraded(&degraded);
            Some(Ok(report))
        }
        RunOutcome::Suspended { cursor, snapshot } => {
            eprintln!(
                "suspended after phase `{cursor}`; resume with --resume {}",
                snapshot.display()
            );
            None
        }
        RunOutcome::Failed(f) => Some(Err(render_failure(&f).into())),
    }
}

fn report_degraded(degraded: &[DegradedComponent]) {
    for d in degraded {
        eprintln!(
            "degraded: component {} fell back to the Brooks baseline \
             ({}; charged {} rounds)",
            d.index, d.reason, d.rounds
        );
    }
}

fn render_failure(f: &FailureReport) -> String {
    report_degraded(&f.degraded);
    let mut msg = format!("run failed: {}", f.error);
    if let Some(cursor) = &f.cursor {
        msg.push_str(&format!(" (last completed phase: {cursor})"));
    }
    if !f.violations.is_empty() {
        msg.push_str(&format!("; {} violation(s):", f.violations.len()));
        for v in f.violations.iter().take(5) {
            msg.push_str(&format!("\n  {v}"));
        }
        if f.violations.len() > 5 {
            msg.push_str(&format!("\n  … and {} more", f.violations.len() - 5));
        }
    }
    if let Some(bundle) = &f.bundle {
        msg.push_str(&format!(
            "\nrepro bundle saved to {} (replay with: delta-color replay)",
            bundle.display()
        ));
    }
    msg
}

/// Renders the worker-pool utilization table and the latency histograms
/// collected by the metrics hub: one row per worker lane (busy/idle/merge
/// wall-clock and shares, units executed, units stolen beyond the fair
/// share), then count/p50/p95/p99/max for every populated histogram.
fn render_utilization(hub: &MetricsHub) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let lanes = hub.worker_lanes();
    if !lanes.is_empty() {
        let _ = writeln!(
            out,
            "{:>6}  {:>10}  {:>10}  {:>10}  {:>6}  {:>8}  {:>7}",
            "worker", "busy ms", "idle ms", "merge ms", "busy%", "units", "steals"
        );
        for lane in &lanes {
            let total = lane.busy_ns + lane.idle_ns + lane.merge_ns;
            let busy_pct = if total == 0 {
                0.0
            } else {
                100.0 * lane.busy_ns as f64 / total as f64
            };
            let _ = writeln!(
                out,
                "{:>6}  {:>10.3}  {:>10.3}  {:>10.3}  {busy_pct:>5.1}%  {:>8}  {:>7}",
                lane.worker,
                lane.busy_ns as f64 / 1e6,
                lane.idle_ns as f64 / 1e6,
                lane.merge_ns as f64 / 1e6,
                lane.units,
                lane.steals,
            );
        }
    }
    let hists = [
        "pool.call_ns",
        "exec.round_ns",
        "exec.segment_ns",
        "msg.round_ns",
        "supervisor.checkpoint_write_ns",
        "supervisor.resume_restore_ns",
    ];
    let populated: Vec<_> = hists
        .iter()
        .map(|name| (name, hub.histogram(name)))
        .filter(|(_, h)| h.count() > 0)
        .collect();
    if !populated.is_empty() {
        let _ = writeln!(
            out,
            "{:30}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}",
            "histogram", "count", "p50 ms", "p95 ms", "p99 ms", "max ms"
        );
        for (name, h) in populated {
            let ms = |v: u64| v as f64 / 1e6;
            let _ = writeln!(
                out,
                "{name:30}  {:>8}  {:>10.3}  {:>10.3}  {:>10.3}  {:>10.3}",
                h.count(),
                ms(h.quantile(0.50)),
                ms(h.quantile(0.95)),
                ms(h.quantile(0.99)),
                ms(h.max()),
            );
        }
    }
    out
}

/// Renders the per-span profile: rounds, share of the ledger total,
/// wall-clock, and messages. Messages are attributed to every span open
/// when the executor emitted its per-round snapshot.
fn render_profile(events: &[Event], total_rounds: u64) -> String {
    use std::fmt::Write as _;

    // Replay the stream: count messages into all currently open spans.
    let mut open: Vec<(String, u64)> = Vec::new(); // (path, messages so far)
    let mut closed: Vec<(String, u64, u64, u64)> = Vec::new(); // path, rounds, wall_ns, msgs
    for event in events {
        match event {
            Event::SpanEnter { path } => open.push((path.clone(), 0)),
            Event::SpanExit {
                path,
                rounds,
                wall_ns,
                ..
            } => {
                let msgs = open
                    .iter()
                    .rposition(|(p, _)| p == path)
                    .map_or(0, |i| open.remove(i).1);
                closed.push((path.clone(), *rounds, *wall_ns, msgs));
            }
            Event::Round { counters, .. } => {
                let sent: i64 = counters
                    .iter()
                    .filter(|(name, _)| name == "messages_sent")
                    .map(|&(_, v)| v)
                    .sum();
                for (_, msgs) in &mut open {
                    *msgs += sent.max(0) as u64;
                }
            }
            Event::CongestRound { messages, .. } => {
                for (_, msgs) in &mut open {
                    *msgs += messages;
                }
            }
            _ => {}
        }
    }

    let width = closed
        .iter()
        .map(|(p, ..)| p.len())
        .max()
        .unwrap_or(5)
        .max(5);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:width$}  {:>8}  {:>6}  {:>10}  {:>12}",
        "span", "rounds", "%", "wall ms", "messages"
    );
    for (path, rounds, wall_ns, msgs) in &closed {
        let pct = if total_rounds == 0 {
            0.0
        } else {
            100.0 * *rounds as f64 / total_rounds as f64
        };
        let _ = writeln!(
            out,
            "{path:width$}  {rounds:>8}  {pct:>5.1}%  {:>10.3}  {msgs:>12}",
            *wall_ns as f64 / 1e6,
        );
    }
    out
}
