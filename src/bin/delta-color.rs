//! Command-line Δ-coloring tool.
//!
//! ```text
//! delta-color gen --cliques 68 --delta 16 --seed 1 > graph.txt
//! delta-color color graph.txt                  # deterministic (Theorem 1)
//! delta-color color graph.txt --randomized 7   # randomized (Theorem 2)
//! delta-color color graph.txt --general 7      # sparse+dense extension
//! ```
//!
//! `color` reads the edge-list format (see `graphgen::io`), writes the
//! coloring (`vertex color` per line) to stdout and the round ledger to
//! stderr.

use delta_coloring::coloring::{
    color_deterministic, color_randomized, color_sparse_dense, Config, RandConfig,
};
use delta_coloring::graphs::coloring::verify_delta_coloring;
use delta_coloring::graphs::generators::{hard_cliques, HardCliqueParams};
use delta_coloring::graphs::io;

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).cloned()
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            let cliques = arg_value(&args, "--cliques").map_or(Ok(68), |v| v.parse())?;
            let delta = arg_value(&args, "--delta").map_or(Ok(16), |v| v.parse())?;
            let seed = arg_value(&args, "--seed").map_or(Ok(1), |v| v.parse())?;
            let inst = hard_cliques(&HardCliqueParams {
                cliques,
                delta,
                external_per_vertex: 1,
                seed,
            })?;
            print!("{}", io::write_edge_list(&inst.graph));
            eprintln!(
                "generated {} vertices / {} edges (Δ = {delta}, {cliques} hard cliques)",
                inst.graph.n(),
                inst.graph.m()
            );
            Ok(())
        }
        Some("color") => {
            let path = args
                .get(1)
                .ok_or("usage: delta-color color <file> [--randomized SEED | --general SEED]")?;
            let g = io::read_edge_list(path)?;
            let delta = g.max_degree();
            eprintln!("read {} vertices / {} edges, Δ = {delta}", g.n(), g.m());
            let (coloring, ledger) = if let Some(seed) = arg_value(&args, "--randomized") {
                let report = color_randomized(&g, &RandConfig::for_delta(delta, seed.parse()?))?;
                (report.coloring, report.ledger)
            } else if let Some(seed) = arg_value(&args, "--general") {
                let report = color_sparse_dense(&g, &RandConfig::for_delta(delta, seed.parse()?))?;
                (report.coloring, report.ledger)
            } else {
                let report = color_deterministic(&g, &Config::for_delta(delta))?;
                (report.coloring, report.ledger)
            };
            verify_delta_coloring(&g, &coloring)?;
            eprintln!("{ledger}");
            print!("{}", io::write_coloring(&coloring));
            Ok(())
        }
        _ => {
            eprintln!(
                "usage:\n  delta-color gen [--cliques N] [--delta D] [--seed S]\n  \
                 delta-color color <file> [--randomized SEED | --general SEED]"
            );
            Err("unknown command".into())
        }
    }
}
