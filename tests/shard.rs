//! Multi-process shard recovery suite, driven through the real CLI:
//! `shard-color --shards 4` spawns four `shard-serve` worker *processes*
//! over loopback TCP, `--chaos-kill S@R` SIGKILLs one of them (no
//! graceful handoff), and the stitched run must be bit-identical —
//! stdout coloring and JSONL trace — to the `--shards 0` single-process
//! reference. Kills are injected at *every* checkpoint boundary of the
//! run and at a mid-interval round, on clean and faulted plans: the
//! process analogue of `crates/core/tests/supervisor.rs`'s
//! kill-and-resume checks (and of `crates/localsim/tests/shard.rs`,
//! which covers the same protocol with thread-hosted workers).

use std::path::{Path, PathBuf};
use std::process::Command;

use delta_coloring::graphs::{generators, io};

const BIN: &str = env!("CARGO_BIN_EXE_delta-color");
const FAULT_SPEC: &str = "seed=7,drop=0.05,jitter=2";

struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> TestDir {
        let dir = std::env::temp_dir().join(format!("shard-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TestDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs `shard-color` and returns `(stdout, stderr)`; panics on failure.
fn shard_color(graph: &Path, trace: &Path, extra: &[&str]) -> (String, String) {
    let out = Command::new(BIN)
        .arg("shard-color")
        .arg(graph)
        .arg("--trace-out")
        .arg(trace)
        .args(extra)
        .output()
        .expect("spawn delta-color");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "shard-color {extra:?} failed:\n{stderr}"
    );
    (String::from_utf8_lossy(&out.stdout).into_owned(), stderr)
}

/// Extracts the round count from the `N shard(s): R rounds...` line.
fn rounds_from_stderr(stderr: &str) -> u64 {
    stderr
        .lines()
        .find_map(|line| {
            let (head, _) = line.split_once(" rounds")?;
            let (_, r) = head.rsplit_once(' ')?;
            r.parse().ok()
        })
        .unwrap_or_else(|| panic!("no round count in stderr:\n{stderr}"))
}

/// The full matrix for one graph × algorithm × plan: reference run,
/// no-kill 4-shard run, then a SIGKILL at every checkpoint boundary and
/// one mid-interval round — all bit-identical in stdout and trace.
fn assert_kill_matrix(tag: &str, algo: &str, faults: Option<&str>) {
    let dir = TestDir::new(tag);
    let graph_path = dir.path("graph.txt");
    std::fs::write(&graph_path, io::write_edge_list(&generators::cycle(16))).unwrap();
    let mut base: Vec<&str> = vec!["--algo", algo, "--checkpoint-every", "2"];
    if let Some(spec) = faults {
        base.extend(["--faults", spec]);
    }

    let ref_trace = dir.path("ref.jsonl");
    let mut args = base.clone();
    args.extend(["--shards", "0"]);
    let (want_stdout, ref_stderr) = shard_color(&graph_path, &ref_trace, &args);
    let want_trace = std::fs::read_to_string(&ref_trace).unwrap();
    let rounds = rounds_from_stderr(&ref_stderr);
    assert!(rounds >= 4, "{tag}: run too short to exercise checkpoints");

    let no_kill_trace = dir.path("shards4.jsonl");
    let mut args = base.clone();
    args.extend(["--shards", "4"]);
    let (got_stdout, _) = shard_color(&graph_path, &no_kill_trace, &args);
    assert_eq!(got_stdout, want_stdout, "{tag}: 4-shard stdout diverged");
    assert_eq!(
        std::fs::read_to_string(&no_kill_trace).unwrap(),
        want_trace,
        "{tag}: 4-shard trace diverged"
    );

    // Every checkpoint boundary (0, 2, 4, …) plus mid-interval round 3.
    let mut kill_rounds: Vec<u64> = (0..rounds).step_by(2).collect();
    kill_rounds.push(3);
    for (i, after_round) in kill_rounds.into_iter().enumerate() {
        let shard = i % 4;
        let kill = format!("{shard}@{after_round}");
        let trace = dir.path(&format!("kill-{after_round}-{shard}.jsonl"));
        let mut args = base.clone();
        args.extend(["--shards", "4", "--chaos-kill", &kill]);
        let (got_stdout, _) = shard_color(&graph_path, &trace, &args);
        assert_eq!(
            got_stdout, want_stdout,
            "{tag}: stdout diverged after SIGKILL of shard {shard} at round {after_round}"
        );
        assert_eq!(
            std::fs::read_to_string(&trace).unwrap(),
            want_trace,
            "{tag}: trace diverged after SIGKILL of shard {shard} at round {after_round}"
        );
    }
}

#[test]
fn sigkill_at_every_checkpoint_boundary_is_invisible_clean() {
    assert_kill_matrix("clean", "rand:9", None);
}

#[test]
fn sigkill_at_every_checkpoint_boundary_is_invisible_faulted() {
    assert_kill_matrix("faulted", "rand:9", Some(FAULT_SPEC));
}

#[test]
fn sigkill_during_greedy_run_is_invisible() {
    assert_kill_matrix("greedy", "greedy", None);
}

#[test]
fn chaos_net_run_with_process_workers_is_invisible() {
    // Wire-level chaos against *real* worker processes: delayed,
    // duplicated and corrupted frames plus one cold connection reset
    // and one SIGKILL, all on the same run. Output and trace must still
    // match the single-process reference bit for bit.
    let dir = TestDir::new("chaosnet");
    let graph_path = dir.path("graph.txt");
    std::fs::write(&graph_path, io::write_edge_list(&generators::cycle(16))).unwrap();
    let base: Vec<&str> = vec!["--algo", "greedy", "--checkpoint-every", "2"];

    let ref_trace = dir.path("ref.jsonl");
    let mut args = base.clone();
    args.extend(["--shards", "0"]);
    let (want_stdout, _) = shard_color(&graph_path, &ref_trace, &args);
    let want_trace = std::fs::read_to_string(&ref_trace).unwrap();

    let trace = dir.path("chaos.jsonl");
    let mut args = base.clone();
    args.extend([
        "--shards",
        "4",
        "--chaos-net",
        "seed=7,delay=0.05,dup=0.1,corrupt=0.005,reset=1@2",
        "--chaos-kill",
        "2@3",
        "--max-respawns",
        "6",
    ]);
    let (got_stdout, _) = shard_color(&graph_path, &trace, &args);
    assert_eq!(got_stdout, want_stdout, "chaos-net stdout diverged");
    assert_eq!(
        std::fs::read_to_string(&trace).unwrap(),
        want_trace,
        "chaos-net trace diverged"
    );
}

#[test]
fn hung_worker_is_detected_and_replaced_through_the_cli() {
    // `hang=S@R` mutes the shard without killing it: only the barrier
    // deadline can notice. The run must recover and stay bit-identical.
    let dir = TestDir::new("hang");
    let graph_path = dir.path("graph.txt");
    std::fs::write(&graph_path, io::write_edge_list(&generators::cycle(16))).unwrap();
    let base: Vec<&str> = vec!["--algo", "greedy", "--checkpoint-every", "2"];

    let ref_trace = dir.path("ref.jsonl");
    let mut args = base.clone();
    args.extend(["--shards", "0"]);
    let (want_stdout, _) = shard_color(&graph_path, &ref_trace, &args);
    let want_trace = std::fs::read_to_string(&ref_trace).unwrap();

    let trace = dir.path("hang.jsonl");
    let mut args = base.clone();
    args.extend([
        "--shards",
        "3",
        "--chaos-net",
        "hang=1@3",
        "--barrier-timeout-ms",
        "750",
    ]);
    let (got_stdout, _) = shard_color(&graph_path, &trace, &args);
    assert_eq!(got_stdout, want_stdout, "hang-recovery stdout diverged");
    assert_eq!(
        std::fs::read_to_string(&trace).unwrap(),
        want_trace,
        "hang-recovery trace diverged"
    );
}

#[test]
fn exhausted_respawn_budget_degrades_instead_of_aborting() {
    // --max-respawns 0 plus a kill: the shard's range must be adopted
    // in-process (reported on stderr and as a Degraded trace event) and
    // the coloring must still match the reference.
    let dir = TestDir::new("degrade");
    let graph_path = dir.path("graph.txt");
    std::fs::write(&graph_path, io::write_edge_list(&generators::cycle(16))).unwrap();
    let base: Vec<&str> = vec!["--algo", "greedy", "--checkpoint-every", "2"];

    let ref_trace = dir.path("ref.jsonl");
    let mut args = base.clone();
    args.extend(["--shards", "0"]);
    let (want_stdout, _) = shard_color(&graph_path, &ref_trace, &args);

    let trace = dir.path("degraded.jsonl");
    let metrics = dir.path("metrics.json");
    let metrics_arg = metrics.to_str().unwrap().to_string();
    let mut args = base.clone();
    args.extend([
        "--shards",
        "3",
        "--chaos-kill",
        "2@2",
        "--max-respawns",
        "0",
        "--metrics-out",
        &metrics_arg,
    ]);
    let (got_stdout, stderr) = shard_color(&graph_path, &trace, &args);
    assert_eq!(got_stdout, want_stdout, "degraded stdout diverged");
    assert!(
        stderr.contains("degraded:"),
        "stderr should report the adoption:\n{stderr}"
    );
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert!(
        trace_text.contains("\"type\":\"degraded\""),
        "trace should carry the Degraded event:\n{trace_text}"
    );
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        metrics_text.contains("shard.adopted_ranges"),
        "metrics snapshot should carry the adoption counter:\n{metrics_text}"
    );
}

#[test]
fn bad_chaos_net_spec_names_the_offending_key() {
    let dir = TestDir::new("badspec");
    let graph_path = dir.path("graph.txt");
    std::fs::write(&graph_path, io::write_edge_list(&generators::path(8))).unwrap();
    let out = Command::new(BIN)
        .arg("shard-color")
        .arg(&graph_path)
        .args(["--shards", "2", "--chaos-net", "seed=7,dup=1.5"])
        .output()
        .expect("spawn delta-color");
    assert!(!out.status.success(), "bogus --chaos-net spec must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("dup"),
        "error should name the offending key:\n{stderr}"
    );
}

#[test]
fn soak_campaign_runs_clean_through_the_cli() {
    let dir = TestDir::new("soak");
    let bundles = dir.path("bundles");
    let out = Command::new(BIN)
        .arg("soak")
        .args([
            "--iterations",
            "2",
            "--shards",
            "2",
            "--seed",
            "3",
            "--bundle-dir",
            bundles.to_str().unwrap(),
        ])
        .output()
        .expect("spawn delta-color");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "soak failed:\n{stderr}");
    assert!(
        stderr.contains("0 failure(s)"),
        "soak summary missing:\n{stderr}"
    );
}

#[test]
fn checkpoint_dir_receives_shard_checkpoints_through_the_cli() {
    let dir = TestDir::new("ckptdir");
    let graph_path = dir.path("graph.txt");
    std::fs::write(&graph_path, io::write_edge_list(&generators::path(12))).unwrap();
    let ckpt_dir = dir.path("ckpts");
    let trace = dir.path("trace.jsonl");
    let ckpt_arg = ckpt_dir.to_str().unwrap().to_string();
    shard_color(
        &graph_path,
        &trace,
        &[
            "--shards",
            "2",
            "--algo",
            "greedy",
            "--checkpoint-every",
            "2",
            "--checkpoint-dir",
            &ckpt_arg,
        ],
    );
    assert!(
        ckpt_dir.join("shard-checkpoint-0000.json").exists(),
        "implicit round-0 checkpoint missing"
    );
    assert!(
        ckpt_dir.join("shard-checkpoint-0002.json").exists(),
        "round-2 checkpoint missing"
    );
}
