//! Telemetry integration tests: probes must change nothing about a run
//! (NullSink equivalence), traces must be deterministic for seeded runs
//! (RecordingSink reproducibility), and the event stream must cover every
//! executed simulator round.

use std::sync::Arc;

use delta_coloring::coloring::{
    color_deterministic, color_deterministic_probed, color_randomized, color_randomized_probed,
    Config, RandConfig,
};
use delta_coloring::graphs::generators::{self, HardCliqueParams};
use delta_coloring::local::{ChargeKind, Event, NullSink, Probe, RecordingSink, EXEC_SCOPE};

fn hard(cliques: usize, delta: usize, seed: u64) -> generators::HardCliqueInstance {
    generators::hard_cliques(&HardCliqueParams {
        cliques,
        delta,
        external_per_vertex: 1,
        seed,
    })
    .unwrap()
}

#[test]
fn null_sink_run_matches_probe_free_run() {
    let inst = hard(34, 16, 42);
    let bare = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
    let probed = color_deterministic_probed(
        &inst.graph,
        &Config::for_delta(16),
        &Probe::from_sink(NullSink),
    )
    .unwrap();
    assert_eq!(
        bare.coloring, probed.coloring,
        "coloring must be unchanged by the probe"
    );
    assert_eq!(
        bare.ledger, probed.ledger,
        "round accounting must be unchanged by the probe"
    );
}

#[test]
fn null_sink_randomized_run_matches_probe_free_run() {
    let inst = hard(40, 16, 43);
    let config = RandConfig::for_delta(16, 7);
    let bare = color_randomized(&inst.graph, &config).unwrap();
    let probed =
        color_randomized_probed(&inst.graph, &config, &Probe::from_sink(NullSink)).unwrap();
    assert_eq!(bare.coloring, probed.coloring);
    assert_eq!(bare.ledger, probed.ledger);
}

#[test]
fn recording_sink_trace_is_deterministic_across_reruns() {
    let inst = hard(40, 16, 44);
    let config = RandConfig::for_delta(16, 11);
    let run = || {
        let sink = Arc::new(RecordingSink::new());
        color_randomized_probed(&inst.graph, &config, &Probe::new(sink.clone())).unwrap();
        sink.normalized()
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "same-seed runs must emit identical normalized traces"
    );
}

#[test]
fn trace_covers_every_executed_round() {
    // An E1-style hard instance. Every executor-backed phase charges its
    // simulator rounds one-to-one (no dilation), and the executor emits
    // one Round event per simulated round — so the per-round events must
    // at least cover those charges.
    let inst = hard(34, 16, 45);
    let sink = Arc::new(RecordingSink::new());
    let report = color_deterministic_probed(
        &inst.graph,
        &Config::for_delta(16),
        &Probe::new(sink.clone()),
    )
    .unwrap();
    let l = &report.ledger;
    // "maximal matching" and the list-coloring "instance" phases charge
    // their simulator rounds one-to-one; the splitting/pair phases charge
    // dilated virtual rounds, so they are excluded from the lower bound.
    let executor_backed = l.total_for("maximal matching") + l.total_for("instance");
    assert!(
        executor_backed > 0,
        "the pipeline must have run executor-backed phases"
    );
    let per_round = sink.rounds_seen(EXEC_SCOPE);
    assert!(
        per_round >= executor_backed,
        "{per_round} per-round events cannot cover {executor_backed} executed rounds"
    );

    // Every ledger entry surfaces as a Charge event with matching rounds.
    let charged: u64 = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Charge { rounds, .. } => Some(*rounds),
            _ => None,
        })
        .sum();
    assert_eq!(
        charged,
        l.total(),
        "charge events must reproduce the ledger total"
    );

    // Spans cover the whole pipeline: their charged rounds sum to the
    // ledger total (the --profile invariant).
    let span_rounds: u64 = sink.span_exits().iter().map(|(_, r, _)| *r).sum();
    assert_eq!(
        span_rounds,
        l.total(),
        "pipeline spans must account for every round"
    );
}

#[test]
fn charge_kinds_distinguish_virtual_phases() {
    let inst = hard(34, 16, 46);
    let sink = Arc::new(RecordingSink::new());
    color_deterministic_probed(
        &inst.graph,
        &Config::for_delta(16),
        &Probe::new(sink.clone()),
    )
    .unwrap();
    let kinds: Vec<ChargeKind> = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Charge { kind, .. } => Some(*kind),
            _ => None,
        })
        .collect();
    assert!(kinds.contains(&ChargeKind::Real));
    assert!(kinds.contains(&ChargeKind::Constant));
    assert!(
        kinds.contains(&ChargeKind::Virtual),
        "pair coloring runs on a virtual graph"
    );
}
