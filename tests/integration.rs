//! Cross-crate integration tests: generator → ACD → pipelines → validator.

use delta_coloring::coloring::{
    color_deterministic, color_randomized, Config, DeltaColoringError, HegAlgo, MatchingAlgo,
    RandConfig,
};
use delta_coloring::decomposition::{compute_acd, verify_acd, AcdParams};
use delta_coloring::graphs::coloring::verify_delta_coloring;
use delta_coloring::graphs::generators::{
    self, BlueprintKind, EasyCliqueParams, HardCliqueParams, LoopholeKind, MixedParams,
};
use delta_coloring::reference::brooks_sequential;

fn hard_params(cliques: usize, delta: usize, seed: u64) -> HardCliqueParams {
    HardCliqueParams {
        cliques,
        delta,
        external_per_vertex: 1,
        seed,
    }
}

#[test]
fn end_to_end_det_pipeline_many_seeds() {
    for seed in 0..6 {
        let inst = generators::hard_cliques(&hard_params(34, 16, 100 + seed)).unwrap();
        generators::verify_hard_instance(&inst).unwrap();
        let acd = compute_acd(&inst.graph, &AcdParams::for_delta(16));
        verify_acd(&inst.graph, &acd).unwrap();
        assert!(acd.is_dense());
        let report = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
    }
}

#[test]
fn end_to_end_rand_pipeline_many_seeds() {
    let inst = generators::hard_cliques(&hard_params(60, 16, 200)).unwrap();
    for seed in 0..6 {
        let report = color_randomized(&inst.graph, &RandConfig::for_delta(16, seed)).unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
    }
}

#[test]
fn det_and_rand_agree_with_brooks_on_solvability() {
    // Everything our pipelines color, the sequential Brooks oracle colors;
    // both agree the instance is Δ-colorable.
    let inst = generators::mixed_dense(&MixedParams {
        base: hard_params(34, 16, 300),
        easy_low_degree: 2,
        easy_four_cycle: 1,
    })
    .unwrap();
    let oracle = brooks_sequential(&inst.graph).unwrap();
    verify_delta_coloring(&inst.graph, &oracle).unwrap();
    let det = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
    verify_delta_coloring(&inst.graph, &det.coloring).unwrap();
    let rand = color_randomized(&inst.graph, &RandConfig::for_delta(16, 3)).unwrap();
    verify_delta_coloring(&inst.graph, &rand.coloring).unwrap();
}

#[test]
fn circulant_instances_color_with_both_pipelines() {
    let inst = generators::hard_cliques_with_blueprint(
        &hard_params(80, 16, 400),
        BlueprintKind::Circulant,
    )
    .unwrap();
    let det = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
    verify_delta_coloring(&inst.graph, &det.coloring).unwrap();
    let rand = color_randomized(&inst.graph, &RandConfig::for_delta(16, 5)).unwrap();
    verify_delta_coloring(&inst.graph, &rand.coloring).unwrap();
}

#[test]
fn clique_ring_easy_path_colors() {
    let g = generators::clique_ring(24, 16);
    let report = color_deterministic(&g, &Config::for_delta(16)).unwrap();
    verify_delta_coloring(&g, &report.coloring).unwrap();
    // Every clique is easy here: the hard machinery is idle.
    assert_eq!(report.stats.hard, 0);
    assert!(report.stats.easy.colored == g.n());
}

#[test]
fn ext2_instances_color() {
    let inst = generators::hard_cliques(&HardCliqueParams {
        cliques: 320,
        delta: 16,
        external_per_vertex: 2,
        seed: 500,
    })
    .unwrap();
    let report = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
    verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
}

#[test]
fn easy_instances_both_loophole_kinds() {
    for kind in [LoopholeKind::LowDegree, LoopholeKind::FourCycle] {
        let inst = generators::easy_cliques(&EasyCliqueParams {
            base: hard_params(34, 16, 600),
            easy: 4,
            kind,
        })
        .unwrap();
        let report = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
    }
}

#[test]
fn paper_parameters_at_paper_scale() {
    // Δ = 64 with ε = 1/63 and K = 28: the regime where the paper's exact
    // constants are proved; enforce them.
    let inst = generators::hard_cliques(&hard_params(128, 64, 700)).unwrap();
    let report = color_deterministic(&inst.graph, &Config::paper()).unwrap();
    verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
    assert!(report.stats.phase1.min_outgoing >= 28, "Lemma 12");
    // Lemma 11's components: the rank bound r_H <= 2εΔ and the per-sub-
    // clique proposal count δ_H >= ⌊(1-ε)Δ/28⌋. (The full δ_H > 1.1·r_H
    // margin needs Δ in the thousands for the paper's constants to close;
    // feasibility — what the pipeline needs — is checked by the HEG solver
    // succeeding at all.)
    let eps = 1.0 / 63.0;
    assert!(
        report.stats.phase1.r_h as f64 <= 2.0 * eps * 64.0 + 1.0,
        "Lemma 11 rank bound"
    );
    assert!(
        report.stats.phase1.delta_h >= ((1.0 - eps) * 64.0 / 28.0).floor() as usize,
        "Lemma 11 proposal count: δ_H = {}",
        report.stats.phase1.delta_h
    );
    assert!(report.stats.phase4.gv_max_degree <= 62, "Lemma 16");
}

#[test]
fn error_paths_are_reported() {
    // Sparse graph.
    let g = generators::random_regular(60, 6, 1);
    assert!(matches!(
        color_deterministic(&g, &Config::for_delta(6)),
        Err(DeltaColoringError::NotDense { .. })
    ));
    // K_{Δ+1}.
    let g = generators::complete(10);
    assert!(matches!(
        color_deterministic(&g, &Config::for_delta(9)),
        Err(DeltaColoringError::ContainsMaxClique)
    ));
}

#[test]
fn alternative_subroutine_matrix() {
    let inst = generators::hard_cliques(&hard_params(34, 16, 800)).unwrap();
    for matching in [MatchingAlgo::DetDirect, MatchingAlgo::Rand(1)] {
        for heg in [
            HegAlgo::Augmenting,
            HegAlgo::TokenWalk(2),
            HegAlgo::Sequential,
        ] {
            let config = Config {
                matching,
                heg,
                ..Config::for_delta(16)
            };
            let report = color_deterministic(&inst.graph, &config).unwrap();
            verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
        }
    }
}

#[test]
fn round_ledger_totals_are_consistent() {
    let inst = generators::hard_cliques(&hard_params(34, 16, 900)).unwrap();
    let report = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
    let total: u64 = report.ledger.entries().iter().map(|e| e.rounds).sum();
    assert_eq!(total, report.ledger.total());
    assert_eq!(total, report.rounds());
    assert!(report.ledger.total_for("phase1") > 0);
}

/// Scaled-down variant of [`paper_scale_stress`] that runs in the default
/// suite (and CI): same Δ = 64 paper parameters and assertions, 4× fewer
/// cliques (128 is the bipartite blueprint's minimum for Δ = 64) so it
/// finishes in seconds.
#[test]
fn paper_scale_stress_scaled_down() {
    let inst = generators::hard_cliques(&hard_params(128, 64, 7777)).unwrap();
    let det = color_deterministic(&inst.graph, &Config::paper()).unwrap();
    verify_delta_coloring(&inst.graph, &det.coloring).unwrap();
    let rand = color_randomized(
        &inst.graph,
        &RandConfig {
            base: Config::paper(),
            ..RandConfig::for_delta(64, 3)
        },
    )
    .unwrap();
    verify_delta_coloring(&inst.graph, &rand.coloring).unwrap();
}

/// Paper-scale stress: Δ = 64 with paper parameters through both
/// pipelines. Slow; run with `cargo test -- --ignored`.
#[test]
#[ignore = "paper-scale stress test (~minutes)"]
fn paper_scale_stress() {
    let inst = generators::hard_cliques(&hard_params(512, 64, 7777)).unwrap();
    let det = color_deterministic(&inst.graph, &Config::paper()).unwrap();
    verify_delta_coloring(&inst.graph, &det.coloring).unwrap();
    let rand = color_randomized(
        &inst.graph,
        &RandConfig {
            base: Config::paper(),
            ..RandConfig::for_delta(64, 3)
        },
    )
    .unwrap();
    verify_delta_coloring(&inst.graph, &rand.coloring).unwrap();
}
