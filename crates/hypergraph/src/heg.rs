//! Solvers for the hyperedge grabbing problem.

use std::collections::VecDeque;
use std::fmt;

use graphgen::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Hypergraph, Timed};

/// Why a HEG solve failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HegError {
    /// No saturating assignment exists (Hall's condition violated).
    Infeasible,
    /// The solver exceeded its round budget.
    RoundLimitExceeded { limit: u64 },
}

impl fmt::Display for HegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HegError::Infeasible => write!(f, "no saturating hyperedge assignment exists"),
            HegError::RoundLimitExceeded { limit } => {
                write!(f, "HEG solver exceeded its {limit}-round budget")
            }
        }
    }
}

impl std::error::Error for HegError {}

/// Verifies a HEG solution: every vertex grabs an incident hyperedge and no
/// hyperedge is grabbed twice.
pub fn verify_heg(h: &Hypergraph, grab: &[u32]) -> bool {
    if grab.len() != h.n() {
        return false;
    }
    let mut owner = vec![false; h.edge_count()];
    for (v, &e) in grab.iter().enumerate() {
        if e as usize >= h.edge_count() || !h.incident(v as u32).contains(&e) {
            return false;
        }
        if owner[e as usize] {
            return false;
        }
        owner[e as usize] = true;
    }
    true
}

/// Exact centralized solver: Kuhn's augmenting-path bipartite matching,
/// saturating every vertex. Ground-truth oracle for tests and a fallback.
///
/// # Errors
///
/// Returns [`HegError::Infeasible`] if no saturating assignment exists.
pub fn heg_sequential(h: &Hypergraph) -> Result<Vec<u32>, HegError> {
    let mut owner: Vec<Option<u32>> = vec![None; h.edge_count()];
    let mut grab: Vec<Option<u32>> = vec![None; h.n()];
    for v in 0..h.n() as u32 {
        let mut visited = vec![false; h.edge_count()];
        if !augment(h, v, &mut owner, &mut grab, &mut visited) {
            return Err(HegError::Infeasible);
        }
    }
    Ok(grab
        .into_iter()
        .map(|g| g.expect("all saturated"))
        .collect())
}

fn augment(
    h: &Hypergraph,
    v: u32,
    owner: &mut [Option<u32>],
    grab: &mut [Option<u32>],
    visited: &mut [bool],
) -> bool {
    for &e in h.incident(v) {
        if visited[e as usize] {
            continue;
        }
        visited[e as usize] = true;
        let prev = owner[e as usize];
        let free = match prev {
            None => true,
            Some(u) => augment(h, u, owner, grab, visited),
        };
        if free {
            owner[e as usize] = Some(v);
            grab[v as usize] = Some(e);
            return true;
        }
    }
    false
}

/// Deterministic solver: phases of parallel, conflict-free shortest
/// augmenting paths.
///
/// # Examples
///
/// ```
/// use hypergraph::{heg_augmenting, verify_heg};
/// let h = hypergraph::generators::random_hypergraph(100, 6, 4, 1)?;
/// let out = heg_augmenting(&h)?;
/// assert!(verify_heg(&h, &out.value));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// In each phase every unsaturated vertex runs a BFS through the incidence
/// structure (vertex → incident hyperedge → current owner → …) to the
/// nearest free hyperedge. A conflict-free subset of the found paths (no
/// shared hyperedge or vertex) is selected greedily by root id — the
/// distributed analogue floods each candidate path and keeps locally
/// minimal roots — and all selected paths augment simultaneously.
///
/// Because every vertex set expands by `δ/r > 1`, a free hyperedge exists
/// within `O(log_{δ/r} n)` BFS layers, so phases are shallow; the measured
/// rounds charge `3·depth + 2` per phase (BFS out, confirm back, apply).
///
/// # Errors
///
/// [`HegError::Infeasible`] when some vertex has no augmenting path.
pub fn heg_augmenting(h: &Hypergraph) -> Result<Timed<Vec<u32>>, HegError> {
    let mut owner: Vec<Option<u32>> = vec![None; h.edge_count()];
    let mut grab: Vec<Option<u32>> = vec![None; h.n()];
    let mut rounds = 0u64;
    let mut unsaturated: Vec<u32> = (0..h.n() as u32).collect();
    while !unsaturated.is_empty() {
        // BFS from every unsaturated vertex to the nearest free hyperedge.
        let mut paths: Vec<(u32, Vec<(u32, u32)>)> = Vec::new(); // (root, [(vertex, edge)...])
        let mut deepest = 0usize;
        for &root in &unsaturated {
            let Some(path) = shortest_augmenting_path(h, root, &owner) else {
                return Err(HegError::Infeasible);
            };
            deepest = deepest.max(path.len());
            paths.push((root, path));
        }
        // Greedy conflict-free selection by root id.
        paths.sort_unstable_by_key(|&(root, _)| root);
        let mut edge_used = vec![false; h.edge_count()];
        let mut vertex_used = vec![false; h.n()];
        let mut applied_any = false;
        for (_, path) in &paths {
            let conflict = path
                .iter()
                .any(|&(v, e)| vertex_used[v as usize] || edge_used[e as usize]);
            if conflict {
                continue;
            }
            for &(v, e) in path {
                vertex_used[v as usize] = true;
                edge_used[e as usize] = true;
                owner[e as usize] = Some(v);
                grab[v as usize] = Some(e);
            }
            applied_any = true;
        }
        assert!(
            applied_any,
            "the minimum-id root's path is always conflict-free"
        );
        rounds += 3 * deepest as u64 + 2;
        unsaturated.retain(|&v| grab[v as usize].is_none());
    }
    Ok(Timed::new(
        grab.into_iter().map(|g| g.expect("saturated")).collect(),
        rounds,
    ))
}

/// Shortest augmenting path from `root` as a list of (vertex, edge)
/// reassignments ending at a free hyperedge. `None` if unreachable.
fn shortest_augmenting_path(
    h: &Hypergraph,
    root: u32,
    owner: &[Option<u32>],
) -> Option<Vec<(u32, u32)>> {
    // BFS over vertices; parent edge per vertex.
    let mut parent: Vec<Option<(u32, u32)>> = vec![None; h.n()]; // (prev vertex, via edge)
    let mut seen_edge = vec![false; h.edge_count()];
    let mut seen_vertex = vec![false; h.n()];
    seen_vertex[root as usize] = true;
    let mut queue = VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        for &e in h.incident(v) {
            if seen_edge[e as usize] {
                continue;
            }
            seen_edge[e as usize] = true;
            match owner[e as usize] {
                None => {
                    // Free edge found: reconstruct alternating path.
                    let mut path = vec![(v, e)];
                    let mut cur = v;
                    while let Some((prev, via)) = parent[cur as usize] {
                        path.push((prev, via));
                        cur = prev;
                    }
                    path.reverse();
                    return Some(path);
                }
                Some(u) => {
                    if !seen_vertex[u as usize] {
                        seen_vertex[u as usize] = true;
                        parent[u as usize] = Some((v, e));
                        queue.push_back(u);
                    }
                }
            }
        }
    }
    None
}

/// Deterministic solver: Hopcroft–Karp style *blocking phases*.
///
/// Each phase builds one global BFS layering of the incidence structure
/// from **all** unsaturated vertices at once (cost: the layering depth),
/// then augments along a maximal set of vertex- and edge-disjoint shortest
/// paths found by a layered DFS (cost: another depth's worth of rounds).
/// Against [`heg_augmenting`]'s per-root BFS, the phase structure
/// guarantees the shortest augmenting-path length strictly increases per
/// phase, bounding the phase count by the final path length — on expanding
/// instances `O(log_{δ/r} n)` phases of `O(log_{δ/r} n)` depth.
///
/// # Examples
///
/// ```
/// use hypergraph::{heg_blocking, verify_heg};
/// let h = hypergraph::generators::random_hypergraph(100, 6, 4, 2)?;
/// let out = heg_blocking(&h)?;
/// assert!(verify_heg(&h, &out.value));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// [`HegError::Infeasible`] when some vertex has no augmenting path.
pub fn heg_blocking(h: &Hypergraph) -> Result<Timed<Vec<u32>>, HegError> {
    let mut owner: Vec<Option<u32>> = vec![None; h.edge_count()];
    let mut grab: Vec<Option<u32>> = vec![None; h.n()];
    let mut rounds = 0u64;
    loop {
        let unsaturated: Vec<u32> = (0..h.n() as u32)
            .filter(|&v| grab[v as usize].is_none())
            .collect();
        if unsaturated.is_empty() {
            break;
        }
        // Global BFS layering: vertex levels from all roots simultaneously.
        let mut level: Vec<u32> = vec![u32::MAX; h.n()];
        let mut frontier: Vec<u32> = unsaturated.clone();
        for &v in &frontier {
            level[v as usize] = 0;
        }
        let mut free_level: Option<u32> = None;
        let mut depth = 0u32;
        while !frontier.is_empty() && free_level.is_none() {
            let mut next = Vec::new();
            for &v in &frontier {
                for &e in h.incident(v) {
                    match owner[e as usize] {
                        None => free_level = Some(depth),
                        Some(u) => {
                            if level[u as usize] == u32::MAX {
                                level[u as usize] = depth + 1;
                                next.push(u);
                            }
                        }
                    }
                }
            }
            depth += 1;
            frontier = next;
        }
        rounds += u64::from(depth) + 1;
        let Some(limit) = free_level else {
            return Err(HegError::Infeasible);
        };
        // Layered DFS: augment along disjoint shortest paths only.
        rounds += u64::from(limit) * 2 + 2;
        let mut edge_used = vec![false; h.edge_count()];
        let mut augmented = false;
        for &root in &unsaturated {
            if grab[root as usize].is_some() {
                continue;
            }
            let mut path = Vec::new();
            if layered_dfs(
                h,
                root,
                limit,
                &level,
                &mut edge_used,
                &owner,
                &grab,
                &mut path,
            ) {
                for &(v, e) in &path {
                    owner[e as usize] = Some(v);
                    grab[v as usize] = Some(e);
                }
                augmented = true;
            }
        }
        if !augmented {
            // The layering found a free edge, so at least one shortest
            // path must exist and be applied.
            return Err(HegError::Infeasible);
        }
    }
    Ok(Timed::new(
        grab.into_iter().map(|g| g.expect("saturated")).collect(),
        rounds,
    ))
}

/// DFS restricted to strictly level-increasing steps and unused edges;
/// writes the (vertex, edge) reassignments into `path`.
#[allow(clippy::too_many_arguments)]
fn layered_dfs(
    h: &Hypergraph,
    v: u32,
    budget: u32,
    level: &[u32],
    edge_used: &mut [bool],
    owner: &[Option<u32>],
    grab: &[Option<u32>],
    path: &mut Vec<(u32, u32)>,
) -> bool {
    for &e in h.incident(v) {
        if edge_used[e as usize] {
            continue;
        }
        match owner[e as usize] {
            None => {
                edge_used[e as usize] = true;
                path.push((v, e));
                return true;
            }
            Some(u) => {
                if budget == 0
                    || grab[u as usize] != Some(e)
                    || level[u as usize] != level[v as usize] + 1
                {
                    continue;
                }
                edge_used[e as usize] = true;
                if layered_dfs(h, u, budget - 1, level, edge_used, owner, grab, path) {
                    path.push((v, e));
                    return true;
                }
            }
        }
    }
    false
}

/// Randomized solver: deficiency-token walk.
///
/// Every unsaturated vertex proposes to a uniformly random incident
/// hyperedge each iteration. The smallest-id proposer on each hyperedge
/// wins; if the hyperedge was owned, the previous owner is displaced and
/// becomes unsaturated (the deficiency token moves). With expansion
/// `δ/r > 1` a constant fraction of hyperedges is free at all times, so
/// each token hits a free hyperedge after `O(log n)` steps w.h.p.
/// Two rounds are charged per iteration (propose, resolve).
///
/// # Errors
///
/// [`HegError::RoundLimitExceeded`] if the walk does not converge within
/// the budget (`200·(log₂ n + 4)` rounds), which w.h.p. does not happen on
/// instances with `δ > r`.
pub fn heg_token_walk(h: &Hypergraph, seed: u64) -> Result<Timed<Vec<u32>>, HegError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut owner: Vec<Option<u32>> = vec![None; h.edge_count()];
    let mut grab: Vec<Option<u32>> = vec![None; h.n()];
    let mut unsaturated: Vec<u32> = (0..h.n() as u32).collect();
    let budget = 200 * ((usize::BITS - h.n().leading_zeros()) as u64 + 4);
    let mut rounds = 0u64;
    while !unsaturated.is_empty() {
        if rounds >= budget {
            return Err(HegError::RoundLimitExceeded { limit: budget });
        }
        rounds += 2;
        // Propose.
        let mut proposals: Vec<(u32, u32)> = unsaturated
            .iter()
            .map(|&v| {
                let inc = h.incident(v);
                (h.incident(v)[rng.gen_range(0..inc.len())], v)
            })
            .collect();
        // Resolve: smallest proposer id per edge wins.
        proposals.sort_unstable();
        let mut displaced = Vec::new();
        let mut next_unsaturated = Vec::new();
        let mut last_edge = u32::MAX;
        for &(e, v) in &proposals {
            if e == last_edge {
                next_unsaturated.push(v); // lost the race this round
                continue;
            }
            last_edge = e;
            if let Some(prev) = owner[e as usize] {
                displaced.push(prev);
                grab[prev as usize] = None;
            }
            owner[e as usize] = Some(v);
            grab[v as usize] = Some(e);
        }
        next_unsaturated.extend(displaced);
        unsaturated = next_unsaturated;
    }
    Ok(Timed::new(
        grab.into_iter().map(|g| g.expect("saturated")).collect(),
        rounds,
    ))
}

/// An edge orientation: for each edge of the source graph (in `edges()`
/// order), `true` means oriented from the smaller to the larger endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Orientation {
    /// The graph's edges (with `u < v`).
    pub edges: Vec<(NodeId, NodeId)>,
    /// Direction per edge: `true` = `u → v`, `false` = `v → u`.
    pub forward: Vec<bool>,
}

impl Orientation {
    /// Out-degree of every vertex.
    pub fn out_degrees(&self, n: usize) -> Vec<usize> {
        let mut out = vec![0usize; n];
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            if self.forward[i] {
                out[u.index()] += 1;
            } else {
                out[v.index()] += 1;
            }
        }
        out
    }
}

/// Sinkless orientation of a graph with minimum degree ≥ 3, via HEG on the
/// rank-2 hypergraph whose hyperedges are the graph's edges (the paper's
/// §1.1 reduction). Every vertex ends with at least one outgoing edge.
///
/// # Errors
///
/// Propagates HEG errors; `Infeasible` cannot occur when `min degree ≥ 3`.
///
/// # Panics
///
/// Panics if some vertex has degree < 3.
pub fn sinkless_orientation(g: &Graph, seed: Option<u64>) -> Result<Timed<Orientation>, HegError> {
    assert!(
        g.vertices().all(|v| g.degree(v) >= 3),
        "sinkless orientation requires minimum degree 3"
    );
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let hyper = Hypergraph::new(g.n(), edges.iter().map(|&(u, v)| vec![u.0, v.0]).collect())
        .expect("graph edges form a valid hypergraph");
    let solved = match seed {
        Some(s) => heg_token_walk(&hyper, s)?,
        None => heg_augmenting(&hyper)?,
    };
    let grab = solved.value;
    let mut forward = vec![false; edges.len()];
    for (i, &(u, _v)) in edges.iter().enumerate() {
        // The grabbing vertex points the edge outward from itself; edges
        // nobody grabbed orient from the smaller endpoint by convention.
        let grabbed_by_u = grab[u.index()] == i as u32;
        forward[i] = grabbed_by_u || grab[edges[i].1.index()] != i as u32;
    }
    Ok(Timed::new(Orientation { edges, forward }, solved.rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_hypergraph;

    fn small() -> Hypergraph {
        // 3 vertices, 4 edges, rank 2, min degree 2.
        Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![0, 1]]).unwrap()
    }

    #[test]
    fn sequential_solves_small() {
        let h = small();
        let grab = heg_sequential(&h).unwrap();
        assert!(verify_heg(&h, &grab));
    }

    #[test]
    fn sequential_detects_infeasible() {
        // Two vertices, one shared edge: only one can grab it.
        let h = Hypergraph::new(2, vec![vec![0, 1]]).unwrap();
        assert_eq!(heg_sequential(&h), Err(HegError::Infeasible));
    }

    #[test]
    fn augmenting_solves_small() {
        let h = small();
        let out = heg_augmenting(&h).unwrap();
        assert!(verify_heg(&h, &out.value));
    }

    #[test]
    fn blocking_solves_small() {
        let h = small();
        let out = heg_blocking(&h).unwrap();
        assert!(verify_heg(&h, &out.value));
    }

    #[test]
    fn blocking_detects_infeasible() {
        let h = Hypergraph::new(2, vec![vec![0, 1]]).unwrap();
        assert!(matches!(heg_blocking(&h), Err(HegError::Infeasible)));
    }

    #[test]
    fn blocking_agrees_on_random_instances() {
        for seed in 0..5 {
            let h = random_hypergraph(300, 6, 4, 100 + seed).unwrap();
            let out = heg_blocking(&h).unwrap();
            assert!(verify_heg(&h, &out.value), "seed {seed}");
        }
    }

    #[test]
    fn token_walk_solves_small() {
        let h = small();
        let out = heg_token_walk(&h, 7).unwrap();
        assert!(verify_heg(&h, &out.value));
    }

    #[test]
    fn solvers_agree_on_random_instances() {
        for seed in 0..5 {
            let h = random_hypergraph(200, 6, 4, seed).unwrap();
            assert!(h.min_degree() >= 6, "generator respects min degree");
            assert!(h.rank() <= 4);
            let a = heg_augmenting(&h).unwrap();
            assert!(verify_heg(&h, &a.value), "augmenting seed {seed}");
            let t = heg_token_walk(&h, seed).unwrap();
            assert!(verify_heg(&h, &t.value), "token walk seed {seed}");
            let s = heg_sequential(&h).unwrap();
            assert!(verify_heg(&h, &s), "sequential seed {seed}");
        }
    }

    #[test]
    fn verify_rejects_bad_solutions() {
        let h = small();
        assert!(!verify_heg(&h, &[0, 0, 1])); // edge 0 grabbed twice
        assert!(!verify_heg(&h, &[1, 0, 2])); // vertex 0 not on edge 1
        assert!(!verify_heg(&h, &[0, 1])); // wrong length
        assert!(verify_heg(&h, &[0, 3, 1])); // distinct incident edges
    }

    #[test]
    fn augmenting_rounds_scale_with_log_margin() {
        // Higher expansion margin => shallower phases.
        let tight = random_hypergraph(800, 5, 4, 1).unwrap(); // δ/r = 1.25
        let roomy = random_hypergraph(800, 12, 3, 1).unwrap(); // δ/r = 4
        let rt = heg_augmenting(&tight).unwrap().rounds;
        let rr = heg_augmenting(&roomy).unwrap().rounds;
        assert!(rr <= rt, "roomy {rr} should not exceed tight {rt}");
    }

    #[test]
    fn sinkless_orientation_on_regular_graph() {
        let g = graphgen::generators::random_regular(60, 4, 3);
        for seed in [None, Some(5)] {
            let out = sinkless_orientation(&g, seed).unwrap();
            let outdeg = out.value.out_degrees(g.n());
            assert!(
                outdeg.iter().all(|&d| d >= 1),
                "someone is a sink: {outdeg:?}"
            );
        }
    }

    #[test]
    fn sinkless_orientation_on_clique() {
        let g = graphgen::generators::complete(8);
        let out = sinkless_orientation(&g, None).unwrap();
        assert!(out.value.out_degrees(8).iter().all(|&d| d >= 1));
    }
}
