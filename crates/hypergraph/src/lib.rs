//! Multihypergraphs and the hyperedge grabbing problem (HEG).
//!
//! Given a multihypergraph with maximum rank `r` (largest hyperedge) and
//! minimum degree `δ > r`, the **hyperedge grabbing problem** asks every
//! vertex to *grab* one of its incident hyperedges such that no hyperedge
//! is grabbed by more than one vertex. It is equivalent to hypergraph
//! sinkless orientation and is the engine of the paper's balanced-matching
//! phase (Lemma 5, citing [BMN+25], promises a deterministic
//! `O(log_{δ/r} n)`-round algorithm when `δ > r`).
//!
//! This crate provides
//!
//! * [`Hypergraph`] — the incidence structure with validation,
//! * [`heg_sequential`] — an exact centralized solver (bipartite matching
//!   saturating all vertices), used as the ground-truth oracle,
//! * [`heg_augmenting`] — a deterministic distributed-style solver: phases
//!   of parallel shortest augmenting paths; the expansion `δ/r > 1`
//!   guarantees `O(log_{δ/r} n)`-length paths always exist,
//! * [`heg_blocking`] — a deterministic Hopcroft–Karp-style solver:
//!   blocking phases of disjoint shortest augmenting paths,
//! * [`heg_token_walk`] — a randomized solver in the spirit of sinkless-
//!   orientation algorithms: deficiency tokens walk through steals until
//!   they hit a free hyperedge,
//! * [`sinkless_orientation`] — graph sinkless orientation as the rank-2
//!   special case.
//!
//! See DESIGN.md for how these substitute for the (pseudocode-free)
//! algorithm of [BMN+25] while preserving the behaviour the pipeline needs.

mod heg;
mod structure;

pub mod generators;

pub use heg::{
    heg_augmenting, heg_blocking, heg_sequential, heg_token_walk, sinkless_orientation, verify_heg,
    HegError, Orientation,
};
pub use structure::{Hypergraph, HypergraphError};

/// A solver result together with the LOCAL-style rounds it consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timed<T> {
    /// The computed result.
    pub value: T,
    /// Measured rounds (see the solver docs for the exact accounting).
    pub rounds: u64,
}

impl<T> Timed<T> {
    /// Wraps a result with its round count.
    pub fn new(value: T, rounds: u64) -> Self {
        Timed { value, rounds }
    }
}
