//! Random hypergraph generation for tests and the E4 scaling benchmark.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{Hypergraph, HypergraphError};

/// Generates a random multihypergraph with **every** vertex of degree
/// exactly `degree` and every hyperedge of rank at most `rank`.
///
/// Construction: `n·degree` vertex stubs are dealt into hyperedges of
/// `rank` slots; duplicate members within a hyperedge are repaired by
/// swapping stubs between hyperedges.
///
/// The expansion margin is `degree / rank`; choose `degree > rank` to get
/// feasible HEG instances (Lemma 5's precondition).
///
/// # Errors
///
/// Returns an error if the repair loop fails (pathological parameters,
/// e.g. `rank > n`).
pub fn random_hypergraph(
    n: usize,
    degree: usize,
    rank: usize,
    seed: u64,
) -> Result<Hypergraph, HypergraphError> {
    assert!(rank >= 1 && degree >= 1);
    assert!(rank <= n, "rank cannot exceed the vertex count");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stubs: Vec<u32> = (0..n as u32)
        .flat_map(|v| std::iter::repeat_n(v, degree))
        .collect();
    'attempt: for _ in 0..50 {
        stubs.shuffle(&mut rng);
        let mut edges: Vec<Vec<u32>> = stubs.chunks(rank).map(<[u32]>::to_vec).collect();
        // Repair duplicate members by swapping with random other edges.
        for _ in 0..(20 * n * degree + 1000) {
            let mut bad = None;
            'scan: for (i, e) in edges.iter().enumerate() {
                for (a, &x) in e.iter().enumerate() {
                    if e[a + 1..].contains(&x) {
                        bad = Some((i, a));
                        break 'scan;
                    }
                }
            }
            let Some((i, a)) = bad else {
                return Hypergraph::new(n, edges);
            };
            let j = rng.gen_range(0..edges.len());
            if i == j {
                continue;
            }
            let b = rng.gen_range(0..edges[j].len());
            let tmp = edges[i][a];
            edges[i][a] = edges[j][b];
            edges[j][b] = tmp;
        }
        continue 'attempt;
    }
    // Give up with a structured error by abusing EmptyEdge? No: panic is
    // honest here — parameters that fail 50 restarts are programmer error.
    panic!("failed to generate a simple random hypergraph (n={n}, degree={degree}, rank={rank})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_degree_and_rank() {
        let h = random_hypergraph(100, 7, 5, 3).unwrap();
        assert_eq!(h.min_degree(), 7);
        assert!(h.rank() <= 5);
        for v in 0..100 {
            assert_eq!(h.degree(v), 7);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_hypergraph(50, 4, 3, 9).unwrap();
        let b = random_hypergraph(50, 4, 3, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rank_one_hypergraph() {
        let h = random_hypergraph(10, 2, 1, 0).unwrap();
        assert_eq!(h.rank(), 1);
        assert_eq!(h.edge_count(), 20);
    }
}
