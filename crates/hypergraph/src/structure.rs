//! The multihypergraph incidence structure.

use std::fmt;

/// Errors constructing a [`Hypergraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HypergraphError {
    /// A hyperedge member is `>= n`.
    MemberOutOfRange { edge: usize, member: u32, n: usize },
    /// A hyperedge lists the same vertex twice.
    DuplicateMember { edge: usize, member: u32 },
    /// A hyperedge is empty.
    EmptyEdge(usize),
}

impl fmt::Display for HypergraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HypergraphError::MemberOutOfRange { edge, member, n } => {
                write!(
                    f,
                    "hyperedge {edge} contains vertex {member} outside 0..{n}"
                )
            }
            HypergraphError::DuplicateMember { edge, member } => {
                write!(f, "hyperedge {edge} lists vertex {member} twice")
            }
            HypergraphError::EmptyEdge(e) => write!(f, "hyperedge {e} is empty"),
        }
    }
}

impl std::error::Error for HypergraphError {}

/// An immutable multihypergraph: `n` vertices and a list of hyperedges.
///
/// Distinct hyperedges may have identical member sets (multi-edges); within
/// one hyperedge members are distinct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    n: usize,
    edges: Vec<Vec<u32>>,
    incident: Vec<Vec<u32>>,
}

impl Hypergraph {
    /// Builds a hypergraph, validating every hyperedge.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range members, duplicate members inside
    /// one hyperedge, or empty hyperedges.
    pub fn new(n: usize, edges: Vec<Vec<u32>>) -> Result<Self, HypergraphError> {
        let mut incident: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            if e.is_empty() {
                return Err(HypergraphError::EmptyEdge(i));
            }
            let mut sorted = e.clone();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                if w[0] == w[1] {
                    return Err(HypergraphError::DuplicateMember {
                        edge: i,
                        member: w[0],
                    });
                }
            }
            for &m in e {
                if m as usize >= n {
                    return Err(HypergraphError::MemberOutOfRange {
                        edge: i,
                        member: m,
                        n,
                    });
                }
                incident[m as usize].push(i as u32);
            }
        }
        Ok(Hypergraph { n, edges, incident })
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of hyperedges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Members of hyperedge `e`.
    pub fn edge(&self, e: u32) -> &[u32] {
        &self.edges[e as usize]
    }

    /// Hyperedges incident to vertex `v`.
    pub fn incident(&self, v: u32) -> &[u32] {
        &self.incident[v as usize]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.incident[v as usize].len()
    }

    /// Maximum rank (largest hyperedge size); 0 if there are no edges.
    pub fn rank(&self) -> usize {
        self.edges.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum vertex degree; 0 for an empty vertex set is reported as 0.
    pub fn min_degree(&self) -> usize {
        self.incident.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// The expansion margin `δ / r` as a float (∞ if there are no edges).
    pub fn expansion(&self) -> f64 {
        let r = self.rank();
        if r == 0 {
            f64::INFINITY
        } else {
            self.min_degree() as f64 / r as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let h = Hypergraph::new(4, vec![vec![0, 1, 2], vec![2, 3], vec![0, 3]]).unwrap();
        assert_eq!(h.n(), 4);
        assert_eq!(h.edge_count(), 3);
        assert_eq!(h.rank(), 3);
        assert_eq!(h.min_degree(), 1); // vertex 1 only lies on the first edge
        assert_eq!(h.incident(2), &[0, 1]);
        assert_eq!(h.degree(0), 2);
    }

    #[test]
    fn multi_edges_allowed() {
        let h = Hypergraph::new(2, vec![vec![0, 1], vec![0, 1]]).unwrap();
        assert_eq!(h.edge_count(), 2);
        assert_eq!(h.degree(0), 2);
    }

    #[test]
    fn rejects_bad_edges() {
        assert!(matches!(
            Hypergraph::new(2, vec![vec![0, 5]]),
            Err(HypergraphError::MemberOutOfRange { .. })
        ));
        assert!(matches!(
            Hypergraph::new(2, vec![vec![0, 0]]),
            Err(HypergraphError::DuplicateMember { .. })
        ));
        assert!(matches!(
            Hypergraph::new(2, vec![vec![]]),
            Err(HypergraphError::EmptyEdge(0))
        ));
    }

    #[test]
    fn expansion_margin() {
        let h = Hypergraph::new(2, vec![vec![0, 1], vec![0, 1], vec![0, 1]]).unwrap();
        assert!((h.expansion() - 1.5).abs() < 1e-9);
    }
}
