//! Property-based tests for hyperedge grabbing.

use hypergraph::generators::random_hypergraph;
use hypergraph::{
    heg_augmenting, heg_blocking, heg_sequential, heg_token_walk, sinkless_orientation, verify_heg,
    Hypergraph,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On random instances with expansion > 1 every solver succeeds and
    /// verifies.
    #[test]
    fn solvers_succeed_with_expansion(
        n in 20usize..300, d in 3usize..9, r_gap in 1usize..3, seed in 0u64..100
    ) {
        let r = d - r_gap;
        prop_assume!(r >= 1);
        let h = random_hypergraph(n, d, r, seed).unwrap();
        let s = heg_sequential(&h).unwrap();
        prop_assert!(verify_heg(&h, &s));
        let a = heg_augmenting(&h).unwrap();
        prop_assert!(verify_heg(&h, &a.value));
        let b = heg_blocking(&h).unwrap();
        prop_assert!(verify_heg(&h, &b.value));
        let t = heg_token_walk(&h, seed).unwrap();
        prop_assert!(verify_heg(&h, &t.value));
    }

    /// The solvers agree on feasibility with the sequential oracle on
    /// arbitrary tiny hypergraphs (feasible or not).
    #[test]
    fn feasibility_agreement(
        n in 2usize..8,
        edges in proptest::collection::vec(
            proptest::collection::btree_set(0u32..8, 1..4), 1..12
        )
    ) {
        let edges: Vec<Vec<u32>> = edges
            .into_iter()
            .map(|e| e.into_iter().filter(|&v| (v as usize) < n).collect::<Vec<_>>())
            .filter(|e: &Vec<u32>| !e.is_empty())
            .collect();
        prop_assume!(!edges.is_empty());
        // Every vertex must be covered for the HEG question to make sense.
        let mut covered = vec![false; n];
        for e in &edges {
            for &v in e {
                covered[v as usize] = true;
            }
        }
        prop_assume!(covered.iter().all(|&c| c));
        let h = Hypergraph::new(n, edges).unwrap();
        let oracle_feasible = heg_sequential(&h).is_ok();
        let aug = heg_augmenting(&h);
        prop_assert_eq!(aug.is_ok(), oracle_feasible);
        if let Ok(t) = aug {
            prop_assert!(verify_heg(&h, &t.value));
        }
        let blocking = heg_blocking(&h);
        prop_assert_eq!(blocking.is_ok(), oracle_feasible);
        if let Ok(t) = blocking {
            prop_assert!(verify_heg(&h, &t.value));
        }
    }

    /// Sinkless orientation on graphs with min degree ≥ 3 never leaves a
    /// sink, with either solver.
    #[test]
    fn sinkless_no_sinks(n_half in 10usize..60, d in 3usize..6, seed in 0u64..50) {
        let g = graphgen::generators::random_regular(2 * n_half, d, seed);
        for s in [None, Some(seed)] {
            let out = sinkless_orientation(&g, s).unwrap();
            prop_assert!(out.value.out_degrees(g.n()).iter().all(|&x| x >= 1));
        }
    }

    /// A grabbed solution perturbed to grab the same edge twice is rejected.
    #[test]
    fn verifier_catches_double_grab(n in 20usize..100, seed in 0u64..50) {
        let h = random_hypergraph(n, 6, 4, seed).unwrap();
        let mut grab = heg_sequential(&h).unwrap();
        prop_assert!(verify_heg(&h, &grab));
        // Corrupt: point vertex 1 at vertex 0's edge (if incident).
        grab[1] = grab[0];
        prop_assert!(!verify_heg(&h, &grab));
    }
}
