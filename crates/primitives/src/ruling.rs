//! `(2, r)`-ruling sets.
//!
//! A `(2, r)`-ruling set is a set `S` that is independent in `G` (pairwise
//! distance ≥ 2) and dominating within distance `r` (every vertex is within
//! `r` hops of `S`). The paper's Lemma 19 computes these in
//! `O(Δ^{2/(r+2)} + log* n)` rounds; we substitute the standard reduction
//! to MIS on the `r`-th graph power, whose output guarantees are identical
//! (in fact stronger: pairwise distance ≥ r + 1) and whose LOCAL cost is
//! the MIS cost with every power-graph round simulated by `r` real rounds.
//! See DESIGN.md for the substitution note.

use graphgen::Graph;
use localsim::{Probe, SimError};

use crate::mis::{mis_deterministic_probed, mis_luby_probed};
use crate::Timed;

/// Which MIS engine drives the ruling-set computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RulingStyle {
    /// Deterministic color-class greedy MIS.
    #[default]
    Deterministic,
    /// Luby's randomized MIS with the given seed.
    Randomized(u64),
}

/// Computes a `(2, r)`-ruling set of `g`.
///
/// # Examples
///
/// ```
/// use primitives::ruling::{is_ruling_set, ruling_set, RulingStyle};
/// let g = graphgen::generators::cycle(60);
/// let out = ruling_set(&g, 3, RulingStyle::Deterministic)?;
/// assert!(is_ruling_set(&g, &out.value, 3));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// Returns the membership vector; the measured rounds already include the
/// factor-`r` dilation of simulating the power graph.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `r == 0` (a `(2, 0)`-ruling set would have to contain every
/// vertex and be independent, which is impossible on any graph with edges).
pub fn ruling_set(g: &Graph, r: usize, style: RulingStyle) -> Result<Timed<Vec<bool>>, SimError> {
    ruling_set_probed(g, r, style, &Probe::disabled())
}

/// [`ruling_set`] with per-round telemetry mirrored to `probe`. Rounds
/// surface as executed on the power graph (one virtual round each); the
/// returned round count carries the factor-`r` dilation as before.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `r == 0`, as in [`ruling_set`].
pub fn ruling_set_probed(
    g: &Graph,
    r: usize,
    style: RulingStyle,
    probe: &Probe,
) -> Result<Timed<Vec<bool>>, SimError> {
    assert!(r >= 1, "ruling radius must be at least 1");
    let (power, dilation) = if r == 1 {
        (None, 1)
    } else {
        (Some(g.power(r)), r as u64)
    };
    let target = power.as_ref().unwrap_or(g);
    let mis = match style {
        RulingStyle::Deterministic => mis_deterministic_probed(target, None, probe)?,
        RulingStyle::Randomized(seed) => mis_luby_probed(target, seed, probe)?,
    };
    Ok(Timed::new(mis.value, mis.rounds * dilation))
}

/// Verifies the `(2, r)`-ruling property.
pub fn is_ruling_set(g: &Graph, in_set: &[bool], r: usize) -> bool {
    // Independence in G.
    for (u, v) in g.edges() {
        if in_set[u.index()] && in_set[v.index()] {
            return false;
        }
    }
    // Domination within r.
    let sources: Vec<_> = g.vertices().filter(|v| in_set[v.index()]).collect();
    if sources.is_empty() {
        return g.n() == 0;
    }
    let dist = g.bfs_distances(&sources);
    dist.iter().all(|&d| d <= r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;

    #[test]
    fn ruling_sets_on_cycle() {
        let g = generators::cycle(60);
        for r in 1..=4 {
            let out = ruling_set(&g, r, RulingStyle::Deterministic).unwrap();
            assert!(is_ruling_set(&g, &out.value, r), "r={r}");
        }
    }

    #[test]
    fn larger_radius_selects_fewer() {
        let g = generators::cycle(120);
        let s1 = ruling_set(&g, 1, RulingStyle::Deterministic).unwrap();
        let s4 = ruling_set(&g, 4, RulingStyle::Deterministic).unwrap();
        let c1 = s1.value.iter().filter(|&&b| b).count();
        let c4 = s4.value.iter().filter(|&&b| b).count();
        assert!(c4 < c1, "c1={c1} c4={c4}");
    }

    #[test]
    fn randomized_style_works() {
        let g = generators::random_regular(150, 5, 4);
        let out = ruling_set(&g, 2, RulingStyle::Randomized(11)).unwrap();
        assert!(is_ruling_set(&g, &out.value, 2));
    }

    #[test]
    fn verifier_rejects_bad_sets() {
        let g = generators::path(5);
        assert!(!is_ruling_set(&g, &[true, true, false, false, false], 5)); // dependent
        assert!(!is_ruling_set(&g, &[true, false, false, false, false], 2)); // far vertex
        assert!(is_ruling_set(&g, &[true, false, false, true, false], 2));
    }
}
