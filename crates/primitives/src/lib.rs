//! Distributed LOCAL-model primitives.
//!
//! This crate implements the classical subroutines that the paper's
//! Δ-coloring pipeline composes (Section 3.8 of the paper lists them with
//! the round complexities `T_MM`, `T_{deg+1}`, `T_SP`, `T_{6-rs}`):
//!
//! * [`linial`] — Linial's iterated color reduction: from unique ids to
//!   `O(Δ²)` colors in `O(log* n)` rounds, and the Kuhn–Wattenhofer
//!   parallel block reduction down to `Δ + 1` colors.
//! * [`list_coloring`] — `(deg+1)`-list coloring by scheduling color
//!   classes of a helper coloring (Lemma 24's role; our implementation
//!   runs in `O(Δ log Δ + log* n)` rounds, between the trivial `O(Δ²)` and
//!   the paper's `O(√(Δ log Δ))` — see DESIGN.md substitutions).
//! * [`mis`] — maximal independent sets: deterministic (color-class greedy)
//!   and randomized (Luby).
//! * [`ruling`] — `(2, r)`-ruling sets via MIS on the `r`-th graph power
//!   run as a virtual graph (Lemma 19's role).
//! * [`matching`] — maximal matching: deterministic (edge-coloring classes
//!   on the line graph) and randomized (Israeli–Itai style proposals).
//! * [`split`] — degree splitting (Lemma 21 / Corollary 22's role): Euler
//!   partition into walks, even-length segment chopping via a ruling set on
//!   the walk structure, and alternating 2-coloring.
//! * [`netdecomp`] — Linial–Saks network decomposition and the
//!   cluster-by-cluster solve driver ([GG24]'s role in the paper's
//!   `Õ(log^{5/3} n)` branch; see DESIGN.md substitutions).
//! * [`congest_coloring`] — a `(Δ+1)`-coloring with `O(log Δ)`-bit
//!   messages, demonstrating the CONGEST metering ([MU21]/[HM24]'s model
//!   in the related work).
//! * [`congest_mis`] — Luby's MIS (`O(log n)`-bit bids) and Israeli–Itai
//!   matching (2-bit messages) on the per-port executor.
//!
//! Every algorithm returns its measured LOCAL round count alongside its
//! output so callers can charge a [`localsim::RoundLedger`].

pub mod bitset;
pub mod congest_coloring;
pub mod congest_mis;
pub mod linial;
pub mod list_coloring;
pub mod matching;
pub mod mis;
pub mod netdecomp;
pub mod ruling;
pub mod split;

/// Output of a primitive: the result plus the LOCAL rounds it took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timed<T> {
    /// The computed result.
    pub value: T,
    /// Measured LOCAL rounds.
    pub rounds: u64,
}

impl<T> Timed<T> {
    /// Wraps a result with its round count.
    pub fn new(value: T, rounds: u64) -> Self {
        Timed { value, rounds }
    }

    /// Maps the value, keeping the round count.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Timed<U> {
        Timed {
            value: f(self.value),
            rounds: self.rounds,
        }
    }
}
