//! A CONGEST-friendly `(Δ+1)`-coloring: randomized color trials whose
//! per-edge messages are `O(log Δ)` bits.
//!
//! The paper's companion results in bandwidth-restricted models ([MU21],
//! [HM24]) motivate demonstrating the bandwidth accounting end to end:
//! this algorithm runs on the per-port [`localsim::MessageExecutor`]
//! through the metering [`localsim::CongestExecutor`], and its messages
//! are single color indices — width `⌈log₂(Δ+2)⌉` bits.
//!
//! Each round every uncolored node draws a uniformly random color from its
//! current free list and broadcasts it; it keeps the color unless a
//! neighbor announced the same color this round or owns it already.
//! `O(log n)` rounds suffice w.h.p. ([Johansson'99]-style analysis).

use graphgen::{Color, Coloring, Graph};
use localsim::{
    broadcast, CongestError, CongestExecutor, MessageProgram, MsgTransition, NodeCtx, Outgoing,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-edge message: a color trial or an adopted color announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialMsg {
    /// "I try this color this round."
    Try(u32),
    /// "I own this color now."
    Own(u32),
}

fn msg_bits(m: &TrialMsg) -> usize {
    // One tag bit plus the color index.
    let c = match m {
        TrialMsg::Try(c) | TrialMsg::Own(c) => *c,
    };
    1 + (32 - c.leading_zeros()) as usize
}

struct TrialProgram {
    seed: u64,
    palette: u32,
}

struct TrialState {
    taken: Vec<bool>,
    trying: Option<u32>,
    rng: StdRng,
}

impl MessageProgram for TrialProgram {
    type State = TrialState;
    type Msg = TrialMsg;
    type Output = Color;

    fn init(&self, ctx: &NodeCtx) -> (TrialState, Vec<Outgoing<TrialMsg>>) {
        let mut state = TrialState {
            taken: vec![false; self.palette as usize],
            trying: None,
            rng: StdRng::seed_from_u64(self.seed ^ ctx.uid.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        };
        let c = draw(&mut state);
        (state, broadcast(ctx.degree(), &TrialMsg::Try(c)))
    }

    fn step(
        &self,
        ctx: &NodeCtx,
        state: &mut TrialState,
        inbox: &[Option<TrialMsg>],
    ) -> MsgTransition<TrialMsg, Color> {
        // Record ownership announcements and collect this round's trials.
        let mine = state.trying.expect("an uncolored node always tries");
        let mut conflict = false;
        for msg in inbox.iter().flatten() {
            match *msg {
                TrialMsg::Own(c) => {
                    state.taken[c as usize] = true;
                    if c == mine {
                        conflict = true;
                    }
                }
                TrialMsg::Try(c) => {
                    if c == mine {
                        conflict = true;
                    }
                }
            }
        }
        if !conflict {
            // Keep the color: announce ownership once, then halt.
            return MsgTransition::HaltAfter(
                broadcast(ctx.degree(), &TrialMsg::Own(mine)),
                Color(mine),
            );
        }
        let c = draw(state);
        MsgTransition::Continue(broadcast(ctx.degree(), &TrialMsg::Try(c)))
    }
}

fn draw(state: &mut TrialState) -> u32 {
    let free: Vec<u32> = (0..state.taken.len() as u32)
        .filter(|&c| !state.taken[c as usize])
        .collect();
    let c = free[state.rng.gen_range(0..free.len())];
    state.trying = Some(c);
    c
}

/// Outcome of [`congest_delta_plus_one`].
#[derive(Debug, Clone)]
pub struct CongestColoring {
    /// The proper `(Δ+1)`-coloring.
    pub coloring: Coloring,
    /// Communication rounds.
    pub rounds: u64,
    /// Largest message observed (bits) — `O(log Δ)` by construction.
    pub max_message_bits: usize,
}

/// Randomized `(Δ+1)`-coloring with `O(log Δ)`-bit messages, metered by the
/// CONGEST executor; `O(log n)` rounds w.h.p.
///
/// # Errors
///
/// Propagates metering/simulator failures (the `⌈log₂(Δ+2)⌉ + 2`-bit budget
/// is satisfied by construction; exceeding the round budget w.h.p. does
/// not happen).
pub fn congest_delta_plus_one(g: &Graph, seed: u64) -> Result<CongestColoring, CongestError> {
    let palette = g.max_degree() as u32 + 1;
    let budget_bits = (32 - palette.leading_zeros()) as usize + 2;
    let ex =
        CongestExecutor::new(g, budget_bits, msg_bits).with_threads(localsim::default_threads());
    let max_rounds = 200 + 40 * (usize::BITS - g.n().leading_zeros()) as u64;
    let run = ex.run(&TrialProgram { seed, palette }, max_rounds)?;
    let coloring = Coloring::from_vec(run.outputs.into_iter().map(Some).collect());
    Ok(CongestColoring {
        coloring,
        rounds: run.rounds,
        max_message_bits: run.max_message_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;

    #[test]
    fn proper_and_narrow_on_families() {
        for (i, g) in [
            generators::cycle(60),
            generators::random_regular(200, 8, 3),
            generators::complete(12),
            generators::hypercube(6),
        ]
        .iter()
        .enumerate()
        {
            let out = congest_delta_plus_one(g, i as u64).unwrap();
            out.coloring
                .check_complete(g, g.max_degree() as u32 + 1)
                .unwrap();
            let budget = (32 - (g.max_degree() as u32 + 1).leading_zeros()) as usize + 2;
            assert!(
                out.max_message_bits <= budget,
                "message width {} exceeds O(log Δ) budget {}",
                out.max_message_bits,
                budget
            );
        }
    }

    #[test]
    fn rounds_logarithmic() {
        let small = congest_delta_plus_one(&generators::random_regular(128, 6, 1), 9)
            .unwrap()
            .rounds;
        let large = congest_delta_plus_one(&generators::random_regular(8192, 6, 1), 9)
            .unwrap()
            .rounds;
        assert!(large <= 4 * small + 40, "{small} -> {large}");
    }

    #[test]
    fn conflict_handling_on_dense_clique() {
        // K_16 forces heavy conflicts: still terminates properly.
        let g = generators::complete(16);
        let out = congest_delta_plus_one(&g, 5).unwrap();
        out.coloring.check_complete(&g, 16).unwrap();
    }
}
