//! Linial's color reduction and the Kuhn–Wattenhofer block reduction.
//!
//! [`linial_coloring`] reduces unique `u64` identifiers to `O(Δ²)` colors
//! in `O(log* n)` communication rounds using cover-free families built from
//! polynomials over `GF(q)` ([Lin92]). [`delta_plus_one_coloring`] then
//! applies the Kuhn–Wattenhofer parallel block reduction to reach `Δ + 1`
//! colors in `O(Δ log Δ)` further rounds.

use graphgen::{Color, Coloring, Graph};
use localsim::{Executor, LocalAlgorithm, NodeCtx, Probe, SimError, Transition};

use crate::Timed;

/// Smallest prime `>= lo`.
fn next_prime(lo: u64) -> u64 {
    let mut q = lo.max(2);
    loop {
        if is_prime(q) {
            return q;
        }
        q += 1;
    }
}

fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    if x.is_multiple_of(2) {
        return x == 2;
    }
    let mut d = 3;
    while d * d <= x {
        if x.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// Number of base-`q` digits needed for values `< m` (at least 1).
fn digits(q: u64, m: u128) -> usize {
    let mut e = 1usize;
    let mut pow = q as u128;
    while pow < m {
        pow *= q as u128;
        e += 1;
    }
    e
}

/// One Linial reduction step: target field size and polynomial degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LinialStep {
    q: u64,
    degree: usize,
}

/// Precomputes the deterministic schedule of reduction steps from color
/// space `m0` with maximum degree `delta`. Every node derives the same
/// schedule from the globally known `n` and `Δ`.
fn linial_schedule(delta: usize, m0: u128) -> Vec<LinialStep> {
    let mut schedule = Vec::new();
    let mut m = m0;
    loop {
        // Smallest prime q with q > Δ · (digits(q, m) - 1); the polynomial
        // degree d = digits - 1 shrinks as q grows, so scanning upward finds
        // the first feasible q.
        let mut q = next_prime(delta as u64 + 2);
        let step = loop {
            let d = digits(q, m).saturating_sub(1).max(1);
            if q > (delta as u64) * (d as u64) {
                break LinialStep { q, degree: d };
            }
            q = next_prime(q + 1);
        };
        let new_m = (step.q as u128) * (step.q as u128);
        if new_m >= m {
            break;
        }
        schedule.push(step);
        m = new_m;
    }
    schedule
}

/// Evaluates the polynomial with base-`q` digits of `c` as coefficients.
fn poly_eval(c: u64, q: u64, degree: usize, x: u64) -> u64 {
    let mut acc: u128 = 0;
    let mut rem = c;
    let mut xp: u128 = 1;
    for _ in 0..=degree {
        let coeff = rem % q;
        rem /= q;
        acc = (acc + coeff as u128 * xp) % q as u128;
        xp = (xp * x as u128) % q as u128;
    }
    acc as u64
}

struct LinialAlgo {
    schedule: Vec<LinialStep>,
}

impl LocalAlgorithm for LinialAlgo {
    type State = u64;
    type Output = u64;

    fn init(&self, ctx: &NodeCtx) -> u64 {
        ctx.uid
    }

    fn step(&self, ctx: &NodeCtx, state: &u64, nbrs: &[u64]) -> Transition<u64, u64> {
        let Some(&LinialStep { q, degree }) = self.schedule.get(ctx.round as usize - 1) else {
            return Transition::Halt(*state);
        };
        // Choose x with p_self(x) != p_nbr(x) for every neighbor: at most
        // Δ·degree < q values of x are ruled out, so one always exists.
        let mut chosen = None;
        'xs: for x in 0..q {
            let own = poly_eval(*state, q, degree, x);
            for &cn in nbrs {
                if cn != *state && poly_eval(cn, q, degree, x) == own {
                    continue 'xs;
                }
            }
            chosen = Some(x * q + own);
            break;
        }
        let next = chosen.expect("Linial step always has a conflict-free evaluation point");
        if ctx.round as usize == self.schedule.len() {
            Transition::Halt(next)
        } else {
            Transition::Continue(next)
        }
    }
}

/// Reduces unique ids to `O(Δ²)` colors in `O(log* n)` rounds.
///
/// Returns the per-node colors and the size of the final color space.
///
/// # Errors
///
/// Propagates simulator errors (round budget, bad uid vectors).
pub fn linial_coloring(
    g: &Graph,
    uids: Option<Vec<u64>>,
) -> Result<Timed<(Vec<u64>, u64)>, SimError> {
    linial_coloring_probed(g, uids, &Probe::disabled())
}

/// [`linial_coloring`] with per-round telemetry mirrored to `probe`.
///
/// # Errors
///
/// Propagates simulator errors (round budget, bad uid vectors).
pub fn linial_coloring_probed(
    g: &Graph,
    uids: Option<Vec<u64>>,
    probe: &Probe,
) -> Result<Timed<(Vec<u64>, u64)>, SimError> {
    let delta = g.max_degree();
    if delta == 0 {
        return Ok(Timed::new((vec![0; g.n()], 1), 0));
    }
    let m0 = match &uids {
        Some(u) => u.iter().copied().max().unwrap_or(0) as u128 + 1,
        None => g.n() as u128,
    };
    let schedule = linial_schedule(delta, m0);
    let space = schedule.last().map_or(m0 as u64, |s| s.q * s.q);
    let ex = match uids {
        Some(u) => Executor::with_uids(g, u)?,
        None => Executor::new(g),
    }
    .with_threads(localsim::default_threads())
    .with_probe(probe.clone());
    if schedule.is_empty() {
        // Ids already fit the target space; zero communication needed.
        let run = ex.run(&LinialAlgo { schedule }, 1)?;
        return Ok(Timed::new((run.outputs, space), 0));
    }
    let rounds_needed = schedule.len() as u64 + 1;
    let run = ex.run(&LinialAlgo { schedule }, rounds_needed)?;
    Ok(Timed::new((run.outputs, space), run.rounds))
}

/// One round of the Kuhn–Wattenhofer reduction schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KwRound {
    /// Nodes whose color is `≡ class (mod modulus)` recolor to the smallest
    /// free color in their block's first `width` slots.
    Sweep {
        modulus: u64,
        class: u64,
        width: u64,
    },
    /// Local compaction `c -> (c / modulus) * width + (c % modulus)`.
    Remap { modulus: u64, width: u64 },
}

fn kw_schedule(mut k: u64, t: u64) -> Vec<KwRound> {
    let mut rounds = Vec::new();
    while k > 2 * t {
        let two_t = 2 * t;
        for j in (t..two_t).rev() {
            rounds.push(KwRound::Sweep {
                modulus: two_t,
                class: j,
                width: t,
            });
        }
        rounds.push(KwRound::Remap {
            modulus: two_t,
            width: t,
        });
        k = k.div_ceil(two_t) * t;
    }
    for j in (t..k).rev() {
        rounds.push(KwRound::Sweep {
            modulus: u64::MAX,
            class: j,
            width: t,
        });
    }
    rounds
}

struct KwAlgo {
    rounds: Vec<KwRound>,
    /// Initial proper coloring (KW needs properness, not uniqueness, so it
    /// cannot ride on the executor's uid mechanism).
    init_colors: Vec<u64>,
}

impl LocalAlgorithm for KwAlgo {
    type State = u64;
    type Output = u64;

    fn init(&self, ctx: &NodeCtx) -> u64 {
        self.init_colors[ctx.node.index()]
    }

    fn step(&self, ctx: &NodeCtx, state: &u64, nbrs: &[u64]) -> Transition<u64, u64> {
        let idx = ctx.round as usize - 1;
        let Some(&round) = self.rounds.get(idx) else {
            return Transition::Halt(*state);
        };
        let mut c = *state;
        match round {
            KwRound::Sweep {
                modulus,
                class,
                width,
            } => {
                let in_class = if modulus == u64::MAX {
                    c == class
                } else {
                    c % modulus == class
                };
                if in_class {
                    let base = if modulus == u64::MAX {
                        0
                    } else {
                        (c / modulus) * modulus
                    };
                    // Blocked bitmap: widths are t = Δ+1, so the mask
                    // lives entirely in the bitset's inline words and the
                    // pick is a couple of `trailing_ones`, not a byte scan.
                    let mut taken = crate::bitset::ColorBitset::new(width as usize);
                    for &nc in nbrs {
                        if nc >= base && nc < base + width {
                            taken.mark((nc - base) as usize);
                        }
                    }
                    let slot = taken
                        .first_clear()
                        .expect("at most Δ neighbors cannot fill Δ+1 slots");
                    c = base + slot as u64;
                }
            }
            KwRound::Remap { modulus, width } => {
                c = (c / modulus) * width + (c % modulus);
            }
        }
        if idx + 1 == self.rounds.len() {
            Transition::Halt(c)
        } else {
            Transition::Continue(c)
        }
    }
}

/// Reduces a proper coloring with colors `< space` to colors `< target`
/// via the Kuhn–Wattenhofer parallel block reduction, in
/// `O(target · log(space/target))` rounds.
///
/// `target` must be at least `Δ + 1`.
///
/// # Examples
///
/// ```
/// use graphgen::NodeId;
/// let g = graphgen::generators::cycle(50);
/// // A wasteful proper coloring: color = vertex index.
/// let start: Vec<u64> = (0..50).collect();
/// let out = primitives::linial::reduce_coloring(&g, start, 50, 3)?;
/// for (u, v) in g.edges() {
///     assert_ne!(out.value[u.index()], out.value[v.index()]);
/// }
/// assert!(out.value.iter().all(|&c| c < 3));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `target <= Δ`, if a color is `>= space`, or if the input
/// coloring is not proper (detected during the sweep).
pub fn reduce_coloring(
    g: &Graph,
    colors: Vec<u64>,
    space: u64,
    target: u64,
) -> Result<Timed<Vec<u64>>, SimError> {
    reduce_coloring_probed(g, colors, space, target, &Probe::disabled())
}

/// [`reduce_coloring`] with per-round telemetry mirrored to `probe`.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Same conditions as [`reduce_coloring`].
pub fn reduce_coloring_probed(
    g: &Graph,
    colors: Vec<u64>,
    space: u64,
    target: u64,
    probe: &Probe,
) -> Result<Timed<Vec<u64>>, SimError> {
    assert!(
        target > g.max_degree() as u64,
        "target palette must exceed Δ"
    );
    assert!(
        colors.iter().all(|&c| c < space),
        "colors must lie below the declared space"
    );
    if space <= target {
        return Ok(Timed::new(colors, 0));
    }
    let rounds = kw_schedule(space, target);
    let budget = rounds.len() as u64 + 1;
    let algo = KwAlgo {
        rounds,
        init_colors: colors,
    };
    let run = Executor::new(g)
        .with_threads(localsim::default_threads())
        .with_probe(probe.clone())
        .run(&algo, budget)?;
    Ok(Timed::new(run.outputs, run.rounds))
}

/// Computes a proper coloring with `Δ + 1` colors in
/// `O(Δ log Δ + log* n)` rounds (Linial followed by Kuhn–Wattenhofer).
///
/// # Examples
///
/// ```
/// let g = graphgen::generators::cycle(100);
/// let out = primitives::linial::delta_plus_one_coloring(&g, None)?;
/// out.value.check_complete(&g, 3)?; // Δ = 2: three colors suffice
/// assert!(out.rounds < 40, "flat in n up to log*");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Propagates simulator errors.
pub fn delta_plus_one_coloring(
    g: &Graph,
    uids: Option<Vec<u64>>,
) -> Result<Timed<Coloring>, SimError> {
    delta_plus_one_coloring_probed(g, uids, &Probe::disabled())
}

/// [`delta_plus_one_coloring`] with per-round telemetry mirrored to
/// `probe`: every executor round (Linial steps and KW sweeps alike)
/// surfaces as a `round` event.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn delta_plus_one_coloring_probed(
    g: &Graph,
    uids: Option<Vec<u64>>,
    probe: &Probe,
) -> Result<Timed<Coloring>, SimError> {
    let delta = g.max_degree() as u64;
    let linial = linial_coloring_probed(g, uids, probe)?;
    let (colors, space) = linial.value;
    let t = delta + 1;
    if space <= t {
        let coloring = Coloring::from_vec(colors.iter().map(|&c| Some(Color(c as u32))).collect());
        return Ok(Timed::new(coloring, linial.rounds));
    }
    let rounds = kw_schedule(space, t);
    let budget = rounds.len() as u64 + 1;
    let algo = KwAlgo {
        rounds,
        init_colors: colors,
    };
    let run = Executor::new(g)
        .with_threads(localsim::default_threads())
        .with_probe(probe.clone())
        .run(&algo, budget)?;
    let coloring = Coloring::from_vec(run.outputs.iter().map(|&c| Some(Color(c as u32))).collect());
    Ok(Timed::new(coloring, linial.rounds + run.rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;

    #[test]
    fn primes() {
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(8), 11);
        assert!(is_prime(97));
        assert!(!is_prime(91));
    }

    #[test]
    fn digit_count() {
        assert_eq!(digits(10, 1000), 3);
        assert_eq!(digits(10, 1001), 4);
        assert_eq!(digits(2, 2), 1);
    }

    #[test]
    fn schedule_shrinks_fast() {
        let s = linial_schedule(4, 1u128 << 64);
        assert!(
            s.len() <= 6,
            "log* schedule should be tiny, got {}",
            s.len()
        );
        let last = s.last().unwrap();
        assert!(last.q * last.q <= 32 * 32);
    }

    #[test]
    fn linial_on_cycle_is_proper() {
        let g = generators::cycle(101);
        let out = linial_coloring(&g, None).unwrap();
        let (colors, space) = out.value;
        for (u, v) in g.edges() {
            assert_ne!(colors[u.index()], colors[v.index()]);
        }
        assert!(colors.iter().all(|&c| c < space));
        assert!(space <= 1000);
        assert!(out.rounds <= 6);
    }

    #[test]
    fn delta_plus_one_on_various() {
        for g in [
            generators::cycle(64),
            generators::complete(9),
            generators::hypercube(5),
            generators::random_regular(120, 6, 3),
        ] {
            let t = g.max_degree() as u32 + 1;
            let out = delta_plus_one_coloring(&g, None).unwrap();
            out.value.check_complete(&g, t).unwrap();
        }
    }

    #[test]
    fn rounds_grow_mildly_with_n() {
        let r1 = delta_plus_one_coloring(&generators::cycle(64), None)
            .unwrap()
            .rounds;
        let r2 = delta_plus_one_coloring(&generators::cycle(4096), None)
            .unwrap()
            .rounds;
        // log*-style growth: going from 64 to 4096 nodes adds at most a
        // couple of rounds.
        assert!(r2 <= r1 + 4, "r1={r1} r2={r2}");
    }
}
