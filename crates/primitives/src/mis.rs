//! Maximal independent sets: deterministic color-class greedy and Luby's
//! randomized algorithm.

use graphgen::Graph;
use localsim::{Executor, LocalAlgorithm, NodeCtx, Probe, SimError, Transition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::linial::delta_plus_one_coloring_probed;
use crate::Timed;

/// Verifies that `in_set` is an independent dominating (maximal
/// independent) set of `g`.
pub fn is_mis(g: &Graph, in_set: &[bool]) -> bool {
    for v in g.vertices() {
        let covered = in_set[v.index()] || g.neighbors(v).iter().any(|&w| in_set[w.index()]);
        if !covered {
            return false;
        }
        if in_set[v.index()] && g.neighbors(v).iter().any(|&w| in_set[w.index()]) {
            return false;
        }
    }
    true
}

struct ClassGreedyMis {
    schedule: Vec<u32>,
    classes: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MisState {
    Undecided,
    In,
    Out,
}

impl LocalAlgorithm for ClassGreedyMis {
    type State = MisState;
    type Output = bool;

    fn init(&self, _ctx: &NodeCtx) -> MisState {
        MisState::Undecided
    }

    fn step(
        &self,
        ctx: &NodeCtx,
        state: &MisState,
        nbrs: &[MisState],
    ) -> Transition<MisState, bool> {
        match state {
            MisState::In => return Transition::Halt(true),
            MisState::Out => return Transition::Halt(false),
            MisState::Undecided => {}
        }
        if nbrs.contains(&MisState::In) {
            return if ctx.round >= u64::from(self.classes) {
                Transition::Halt(false)
            } else {
                Transition::Continue(MisState::Out)
            };
        }
        let my_class = self.schedule[ctx.node.index()];
        if ctx.round - 1 == u64::from(my_class) {
            // My class's turn and no neighbor joined: join.
            if ctx.round >= u64::from(self.classes) {
                Transition::Halt(true)
            } else {
                Transition::Continue(MisState::In)
            }
        } else {
            Transition::Continue(MisState::Undecided)
        }
    }
}

/// Deterministic MIS by sweeping the classes of a `(Δ+1)`-coloring;
/// `O(Δ log Δ + log* n)` rounds in total.
///
/// # Examples
///
/// ```
/// let g = graphgen::generators::hypercube(5);
/// let out = primitives::mis::mis_deterministic(&g, None)?;
/// assert!(primitives::mis::is_mis(&g, &out.value));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Propagates simulator errors.
pub fn mis_deterministic(g: &Graph, uids: Option<Vec<u64>>) -> Result<Timed<Vec<bool>>, SimError> {
    mis_deterministic_probed(g, uids, &Probe::disabled())
}

/// [`mis_deterministic`] with per-round telemetry mirrored to `probe`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn mis_deterministic_probed(
    g: &Graph,
    uids: Option<Vec<u64>>,
    probe: &Probe,
) -> Result<Timed<Vec<bool>>, SimError> {
    if g.n() == 0 {
        return Ok(Timed::new(Vec::new(), 0));
    }
    let helper = delta_plus_one_coloring_probed(g, uids, probe)?;
    let classes = g.max_degree() as u32 + 1;
    let schedule: Vec<u32> = g
        .vertices()
        .map(|v| helper.value.get(v).expect("complete coloring").0)
        .collect();
    let algo = ClassGreedyMis { schedule, classes };
    let run = Executor::new(g)
        .with_threads(localsim::default_threads())
        .with_probe(probe.clone())
        .run(&algo, u64::from(classes) + 2)?;
    Ok(Timed::new(run.outputs, helper.rounds + run.rounds))
}

/// Luby's algorithm: per-iteration random priorities; local maxima join.
struct LubyMis {
    seed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LubyState {
    /// Carrying this iteration's priority and the node's uid (for exact
    /// tie-breaking even under custom identifier assignments).
    Bid(u64, u64),
    /// Joined the MIS this iteration (announcing).
    Joining,
    In,
    Out,
}

fn priority(seed: u64, uid: u64, iteration: u64) -> u64 {
    // Deterministic per (seed, node, iteration): local randomness each node
    // could draw privately.
    let mut rng = StdRng::seed_from_u64(
        seed ^ uid.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ iteration.wrapping_mul(0xD1B5_4A32_D192_ED03),
    );
    rng.gen()
}

impl LocalAlgorithm for LubyMis {
    type State = LubyState;
    type Output = bool;

    fn init(&self, ctx: &NodeCtx) -> LubyState {
        LubyState::Bid(priority(self.seed, ctx.uid, 0), ctx.uid)
    }

    fn step(
        &self,
        ctx: &NodeCtx,
        state: &LubyState,
        nbrs: &[LubyState],
    ) -> Transition<LubyState, bool> {
        match *state {
            LubyState::In => Transition::Halt(true),
            LubyState::Out => Transition::Halt(false),
            LubyState::Joining => Transition::Continue(LubyState::In),
            LubyState::Bid(p, uid) => {
                if nbrs
                    .iter()
                    .any(|s| matches!(s, LubyState::Joining | LubyState::In))
                {
                    return Transition::Continue(LubyState::Out);
                }
                // Odd rounds: decide by comparing priorities (uid breaks ties).
                if ctx.round % 2 == 1 {
                    let me = (p, uid);
                    let beaten = nbrs
                        .iter()
                        .any(|s| matches!(s, LubyState::Bid(q, qu) if (*q, *qu) > me));
                    if !beaten {
                        return Transition::Continue(LubyState::Joining);
                    }
                    Transition::Continue(LubyState::Bid(p, uid))
                } else {
                    // Even rounds: redraw for the next iteration.
                    Transition::Continue(LubyState::Bid(
                        priority(self.seed, ctx.uid, ctx.round / 2),
                        uid,
                    ))
                }
            }
        }
    }
}

/// Luby's randomized MIS; `O(log n)` rounds with high probability.
///
/// # Errors
///
/// Propagates simulator errors (including exceeding the generous
/// `64 + 16·log₂ n` round budget, which w.h.p. never happens).
pub fn mis_luby(g: &Graph, seed: u64) -> Result<Timed<Vec<bool>>, SimError> {
    mis_luby_probed(g, seed, &Probe::disabled())
}

/// [`mis_luby`] with per-round telemetry mirrored to `probe`.
///
/// # Errors
///
/// Propagates simulator errors (including exceeding the generous
/// `64 + 16·log₂ n` round budget, which w.h.p. never happens).
pub fn mis_luby_probed(g: &Graph, seed: u64, probe: &Probe) -> Result<Timed<Vec<bool>>, SimError> {
    if g.n() == 0 {
        return Ok(Timed::new(Vec::new(), 0));
    }
    let budget = 64 + 16 * (usize::BITS - g.n().leading_zeros()) as u64;
    let run = Executor::new(g)
        .with_threads(localsim::default_threads())
        .with_probe(probe.clone())
        .run(&LubyMis { seed }, budget)?;
    Ok(Timed::new(run.outputs, run.rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;

    #[test]
    fn deterministic_mis_valid_on_families() {
        for g in [
            generators::cycle(31),
            generators::complete(8),
            generators::hypercube(5),
            generators::random_regular(100, 5, 1),
            generators::star(12),
        ] {
            let out = mis_deterministic(&g, None).unwrap();
            assert!(is_mis(&g, &out.value), "invalid MIS");
        }
    }

    #[test]
    fn luby_mis_valid_on_families() {
        for (i, g) in [
            generators::cycle(64),
            generators::random_regular(200, 6, 2),
            generators::gnp(80, 0.1, 3),
        ]
        .iter()
        .enumerate()
        {
            let out = mis_luby(g, i as u64).unwrap();
            assert!(is_mis(g, &out.value), "invalid Luby MIS");
        }
    }

    #[test]
    fn complete_graph_has_single_winner() {
        let g = generators::complete(10);
        let out = mis_deterministic(&g, None).unwrap();
        assert_eq!(out.value.iter().filter(|&&b| b).count(), 1);
        let out = mis_luby(&g, 5).unwrap();
        assert_eq!(out.value.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn empty_and_isolated() {
        let g = Graph::from_edges(3, []).unwrap();
        let out = mis_deterministic(&g, None).unwrap();
        assert_eq!(out.value, vec![true, true, true]);
    }

    #[test]
    fn luby_rounds_scale_logarithmically() {
        let small = mis_luby(&generators::random_regular(64, 4, 9), 1)
            .unwrap()
            .rounds;
        let large = mis_luby(&generators::random_regular(4096, 4, 9), 1)
            .unwrap()
            .rounds;
        assert!(large <= small * 4 + 30, "small={small} large={large}");
    }

    #[test]
    fn is_mis_rejects_bad_sets() {
        let g = generators::path(3);
        assert!(!is_mis(&g, &[false, false, false])); // not dominating
        assert!(!is_mis(&g, &[true, true, false])); // not independent
        assert!(is_mis(&g, &[true, false, true]));
        assert!(is_mis(&g, &[false, true, false]));
    }
}
