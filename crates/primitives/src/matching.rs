//! Maximal matching: deterministic (edge-coloring class sweep on the line
//! graph) and randomized (Israeli–Itai style proposal rounds).

use graphgen::{Graph, NodeId};
use localsim::{Executor, LocalAlgorithm, NodeCtx, Probe, SimError, Transition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::linial::delta_plus_one_coloring_probed;
use crate::Timed;

/// A matching as a set of edges (each with `u < v`), plus per-node partner
/// lookup.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Matching {
    /// Matched edges with `u < v`.
    pub edges: Vec<(NodeId, NodeId)>,
    /// `partner[v]` is `v`'s match, if any.
    pub partner: Vec<Option<NodeId>>,
}

impl Matching {
    /// Builds a matching from explicit vertex pairs.
    ///
    /// # Panics
    ///
    /// Panics if the pairs share endpoints.
    pub fn from_pairs(n: usize, pairs: &[(NodeId, NodeId)]) -> Self {
        Self::from_edges(n, pairs.to_vec())
    }

    fn from_edges(n: usize, edges: Vec<(NodeId, NodeId)>) -> Self {
        let mut partner = vec![None; n];
        for &(u, v) in &edges {
            assert!(partner[u.index()].is_none() && partner[v.index()].is_none());
            partner[u.index()] = Some(v);
            partner[v.index()] = Some(u);
        }
        Matching { edges, partner }
    }

    /// Whether this is a maximal matching of `g`: no two matched edges share
    /// an endpoint, and every edge of `g` touches a matched vertex.
    pub fn is_maximal(&self, g: &Graph) -> bool {
        for &(u, v) in &self.edges {
            if !g.has_edge(u, v) {
                return false;
            }
        }
        g.edges()
            .all(|(u, v)| self.partner[u.index()].is_some() || self.partner[v.index()].is_some())
    }
}

/// The line graph of `g`: one vertex per edge, adjacency = shared endpoint.
/// Returns the line graph and the edge list indexing its vertices.
pub fn line_graph(g: &Graph) -> (Graph, Vec<(NodeId, NodeId)>) {
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); g.n()];
    for (i, &(u, v)) in edges.iter().enumerate() {
        incident[u.index()].push(i as u32);
        incident[v.index()].push(i as u32);
    }
    let mut ledges = Vec::new();
    for inc in &incident {
        for (a, &i) in inc.iter().enumerate() {
            for &j in &inc[a + 1..] {
                ledges.push((i.min(j), i.max(j)));
            }
        }
    }
    ledges.sort_unstable();
    ledges.dedup();
    let lg = Graph::from_edges(edges.len(), ledges).expect("line graph is valid");
    (lg, edges)
}

struct ClassSweepMatching {
    /// Edge color class per line-graph vertex (edge of `g`).
    schedule: Vec<u32>,
    classes: u32,
}

/// Line-graph node state: whether this edge has joined the matching, or is
/// blocked by an adjacent joined edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeState {
    Undecided,
    In,
    Out,
}

impl LocalAlgorithm for ClassSweepMatching {
    type State = EdgeState;
    type Output = bool;

    fn init(&self, _ctx: &NodeCtx) -> EdgeState {
        EdgeState::Undecided
    }

    fn step(
        &self,
        ctx: &NodeCtx,
        state: &EdgeState,
        nbrs: &[EdgeState],
    ) -> Transition<EdgeState, bool> {
        match state {
            EdgeState::In => return Transition::Halt(true),
            EdgeState::Out => return Transition::Halt(false),
            EdgeState::Undecided => {}
        }
        if nbrs.contains(&EdgeState::In) {
            return if ctx.round >= u64::from(self.classes) {
                Transition::Halt(false)
            } else {
                Transition::Continue(EdgeState::Out)
            };
        }
        if ctx.round - 1 == u64::from(self.schedule[ctx.node.index()]) {
            if ctx.round >= u64::from(self.classes) {
                Transition::Halt(true)
            } else {
                Transition::Continue(EdgeState::In)
            }
        } else {
            Transition::Continue(EdgeState::Undecided)
        }
    }
}

/// Deterministic maximal matching via an edge coloring (a vertex coloring
/// of the line graph) whose classes are swept greedily;
/// `O(Δ log Δ + log* n)` rounds. Rounds on the line graph cost one real
/// round each (edge-incident messages).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn maximal_matching_det(g: &Graph) -> Result<Timed<Matching>, SimError> {
    maximal_matching_det_probed(g, &Probe::disabled())
}

/// [`maximal_matching_det`] with per-round telemetry mirrored to `probe`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn maximal_matching_det_probed(g: &Graph, probe: &Probe) -> Result<Timed<Matching>, SimError> {
    let (lg, edges) = line_graph(g);
    if edges.is_empty() {
        return Ok(Timed::new(Matching::from_edges(g.n(), Vec::new()), 0));
    }
    let helper = delta_plus_one_coloring_probed(&lg, None, probe)?;
    let classes = lg.max_degree() as u32 + 1;
    let schedule: Vec<u32> = lg
        .vertices()
        .map(|v| helper.value.get(v).expect("complete coloring").0)
        .collect();
    let algo = ClassSweepMatching { schedule, classes };
    let run = Executor::new(&lg)
        .with_threads(localsim::default_threads())
        .with_probe(probe.clone())
        .run(&algo, u64::from(classes) + 2)?;
    let chosen: Vec<(NodeId, NodeId)> = run
        .outputs
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b)
        .map(|(i, _)| edges[i])
        .collect();
    Ok(Timed::new(
        Matching::from_edges(g.n(), chosen),
        helper.rounds + run.rounds,
    ))
}

/// Deterministic class-scheduled proposal matching (no line graph).
///
/// Sweeps the classes of a `(Δ+1)`-vertex coloring; in its class slot every
/// unmatched vertex proposes to its smallest-uid unmatched neighbor, and
/// targets accept their smallest-uid proposer. A vertex can be rejected at
/// most `Δ` times in total (each rejection matches one of its neighbors),
/// so at most `Δ + 2` sweeps run: `O(Δ²)` rounds worst case, a handful of
/// sweeps in practice, and — unlike the line-graph algorithm — only
/// `O(n + m)` memory.
struct ClassProposalMatching {
    schedule: Vec<u32>,
    classes: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FreeInfo {
    uid: u64,
    proposal: Option<NodeId>,
    accepted: Option<NodeId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DetState {
    Free(FreeInfo),
    Matched(NodeId),
}

impl LocalAlgorithm for ClassProposalMatching {
    type State = DetState;
    type Output = Option<NodeId>;

    fn init(&self, ctx: &NodeCtx) -> DetState {
        DetState::Free(FreeInfo {
            uid: ctx.uid,
            proposal: None,
            accepted: None,
        })
    }

    fn step(
        &self,
        ctx: &NodeCtx,
        state: &DetState,
        nbrs: &[DetState],
    ) -> Transition<DetState, Option<NodeId>> {
        let DetState::Free(info) = state else {
            let DetState::Matched(p) = state else {
                unreachable!()
            };
            return Transition::Halt(Some(*p));
        };
        let phase = (ctx.round - 1) % 3;
        let slot = ((ctx.round - 1) / 3) % u64::from(self.classes);
        match phase {
            0 => {
                // Propose (only my class's slot).
                let free_nbrs: Vec<(u64, NodeId)> = ctx
                    .neighbors
                    .iter()
                    .zip(nbrs)
                    .filter_map(|(&w, s)| match s {
                        DetState::Free(fi) => Some((fi.uid, w)),
                        DetState::Matched(_) => None,
                    })
                    .collect();
                if free_nbrs.is_empty() {
                    return Transition::Halt(None);
                }
                let proposal = if u64::from(self.schedule[ctx.node.index()]) == slot {
                    Some(free_nbrs.iter().min().expect("nonempty").1)
                } else {
                    None
                };
                Transition::Continue(DetState::Free(FreeInfo {
                    proposal,
                    accepted: None,
                    ..*info
                }))
            }
            1 => {
                // Accept smallest-uid proposer (proposers skip accepting).
                if info.proposal.is_some() {
                    return Transition::Continue(*state);
                }
                let best = ctx
                    .neighbors
                    .iter()
                    .zip(nbrs)
                    .filter_map(|(&w, s)| match s {
                        DetState::Free(fi) if fi.proposal == Some(ctx.node) => Some((fi.uid, w)),
                        _ => None,
                    })
                    .min()
                    .map(|(_, w)| w);
                Transition::Continue(DetState::Free(FreeInfo {
                    accepted: best,
                    ..*info
                }))
            }
            _ => {
                // Confirm.
                if let Some(t) = info.proposal {
                    let ts = ctx
                        .neighbors
                        .iter()
                        .position(|&w| w == t)
                        .map(|i| nbrs[i])
                        .expect("target is a neighbor");
                    if matches!(ts, DetState::Free(fi) if fi.accepted == Some(ctx.node)) {
                        return Transition::Continue(DetState::Matched(t));
                    }
                }
                if let Some(a) = info.accepted {
                    return Transition::Continue(DetState::Matched(a));
                }
                Transition::Continue(DetState::Free(FreeInfo {
                    proposal: None,
                    accepted: None,
                    ..*info
                }))
            }
        }
    }
}

/// Deterministic maximal matching without materializing the line graph;
/// `O(Δ² + log* n)` rounds worst case, `O(n + m)` memory. Preferred by the
/// Δ-coloring pipeline at scale.
///
/// # Examples
///
/// ```
/// let g = graphgen::generators::random_regular(64, 6, 1);
/// let out = primitives::matching::maximal_matching_det_direct(&g)?;
/// assert!(out.value.is_maximal(&g));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Propagates simulator errors.
pub fn maximal_matching_det_direct(g: &Graph) -> Result<Timed<Matching>, SimError> {
    maximal_matching_det_direct_probed(g, &Probe::disabled())
}

/// [`maximal_matching_det_direct`] with per-round telemetry mirrored to
/// `probe`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn maximal_matching_det_direct_probed(
    g: &Graph,
    probe: &Probe,
) -> Result<Timed<Matching>, SimError> {
    if g.n() == 0 || g.m() == 0 {
        return Ok(Timed::new(Matching::from_edges(g.n(), Vec::new()), 0));
    }
    let helper = delta_plus_one_coloring_probed(g, None, probe)?;
    let classes = g.max_degree() as u32 + 1;
    let schedule: Vec<u32> = g
        .vertices()
        .map(|v| helper.value.get(v).expect("complete coloring").0)
        .collect();
    let budget = 3 * u64::from(classes) * (g.max_degree() as u64 + 3) + 10;
    let run = Executor::new(g)
        .with_threads(localsim::default_threads())
        .with_probe(probe.clone())
        .run(&ClassProposalMatching { schedule, classes }, budget)?;
    let mut edges = Vec::new();
    for v in g.vertices() {
        if let Some(p) = run.outputs[v.index()] {
            assert_eq!(
                run.outputs[p.index()],
                Some(v),
                "matching must be symmetric"
            );
            if v < p {
                edges.push((v, p));
            }
        }
    }
    Ok(Timed::new(
        Matching::from_edges(g.n(), edges),
        helper.rounds + run.rounds,
    ))
}

/// Israeli–Itai style randomized matching.
struct ProposalMatching {
    seed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    /// Free; fields meaningful per sub-round. `proposal` is the neighbor
    /// proposed to in this iteration (if a proposer).
    Free {
        proposal: Option<NodeId>,
        accepted: Option<NodeId>,
    },
    Matched(NodeId),
}

fn coin(seed: u64, uid: u64, round: u64) -> StdRng {
    StdRng::seed_from_u64(
        seed ^ uid.wrapping_mul(0xA076_1D64_78BD_642F) ^ round.wrapping_mul(0xE703_7ED1_A0B4_28DB),
    )
}

impl LocalAlgorithm for ProposalMatching {
    type State = NodeState;
    type Output = Option<NodeId>;

    fn init(&self, _ctx: &NodeCtx) -> NodeState {
        NodeState::Free {
            proposal: None,
            accepted: None,
        }
    }

    fn step(
        &self,
        ctx: &NodeCtx,
        state: &NodeState,
        nbrs: &[NodeState],
    ) -> Transition<NodeState, Option<NodeId>> {
        if let NodeState::Matched(p) = state {
            return Transition::Halt(Some(*p));
        }
        let free_neighbors: Vec<NodeId> = ctx
            .neighbors
            .iter()
            .zip(nbrs)
            .filter(|(_, s)| matches!(s, NodeState::Free { .. }))
            .map(|(&w, _)| w)
            .collect();
        // Sub-round within the 3-round iteration.
        match (ctx.round - 1) % 3 {
            0 => {
                // Propose: with a fair coin, pick a random free neighbor.
                if free_neighbors.is_empty() {
                    return Transition::Halt(None); // maximality reached locally
                }
                let mut rng = coin(self.seed, ctx.uid, ctx.round);
                let proposal = if rng.gen_bool(0.5) {
                    Some(free_neighbors[rng.gen_range(0..free_neighbors.len())])
                } else {
                    None
                };
                Transition::Continue(NodeState::Free {
                    proposal,
                    accepted: None,
                })
            }
            1 => {
                // Accept: non-proposers take the smallest-id proposer.
                let me = ctx.node;
                let i_proposed = matches!(
                    state,
                    NodeState::Free {
                        proposal: Some(_),
                        ..
                    }
                );
                if i_proposed {
                    return Transition::Continue(*state);
                }
                let best = ctx
                    .neighbors
                    .iter()
                    .zip(nbrs)
                    .filter(
                        |(_, s)| matches!(s, NodeState::Free { proposal: Some(t), .. } if *t == me),
                    )
                    .map(|(&w, _)| w)
                    .min();
                Transition::Continue(NodeState::Free {
                    proposal: None,
                    accepted: best,
                })
            }
            _ => {
                // Confirm: proposer matches iff its target accepted it;
                // acceptor matches its accepted proposer.
                if let NodeState::Free {
                    proposal: Some(t), ..
                } = state
                {
                    let target_state = ctx
                        .neighbors
                        .iter()
                        .position(|&w| w == *t)
                        .map(|i| nbrs[i])
                        .expect("proposal target is a neighbor");
                    if matches!(target_state, NodeState::Free { accepted: Some(a), .. } if a == ctx.node)
                    {
                        return Transition::Continue(NodeState::Matched(*t));
                    }
                    return Transition::Continue(NodeState::Free {
                        proposal: None,
                        accepted: None,
                    });
                }
                if let NodeState::Free {
                    accepted: Some(a), ..
                } = state
                {
                    return Transition::Continue(NodeState::Matched(*a));
                }
                Transition::Continue(NodeState::Free {
                    proposal: None,
                    accepted: None,
                })
            }
        }
    }
}

/// Randomized maximal matching in `O(log n)` rounds w.h.p.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn maximal_matching_rand(g: &Graph, seed: u64) -> Result<Timed<Matching>, SimError> {
    maximal_matching_rand_probed(g, seed, &Probe::disabled())
}

/// [`maximal_matching_rand`] with per-round telemetry mirrored to `probe`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn maximal_matching_rand_probed(
    g: &Graph,
    seed: u64,
    probe: &Probe,
) -> Result<Timed<Matching>, SimError> {
    if g.n() == 0 {
        return Ok(Timed::new(Matching::default(), 0));
    }
    let budget = 200 + 60 * (usize::BITS - g.n().leading_zeros()) as u64;
    let run = Executor::new(g)
        .with_threads(localsim::default_threads())
        .with_probe(probe.clone())
        .run(&ProposalMatching { seed }, budget)?;
    let mut edges = Vec::new();
    for v in g.vertices() {
        if let Some(p) = run.outputs[v.index()] {
            assert_eq!(
                run.outputs[p.index()],
                Some(v),
                "matching must be symmetric"
            );
            if v < p {
                edges.push((v, p));
            }
        }
    }
    Ok(Timed::new(Matching::from_edges(g.n(), edges), run.rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;

    #[test]
    fn line_graph_of_triangle_is_triangle() {
        let g = generators::complete(3);
        let (lg, edges) = line_graph(&g);
        assert_eq!(lg.n(), 3);
        assert_eq!(lg.m(), 3);
        assert_eq!(edges.len(), 3);
    }

    #[test]
    fn det_matching_maximal_on_families() {
        for g in [
            generators::cycle(21),
            generators::complete(7),
            generators::hypercube(4),
            generators::random_regular(80, 5, 6),
            generators::star(9),
        ] {
            let out = maximal_matching_det(&g).unwrap();
            assert!(out.value.is_maximal(&g));
        }
    }

    #[test]
    fn rand_matching_maximal_on_families() {
        for (i, g) in [
            generators::cycle(50),
            generators::random_regular(120, 4, 8),
            generators::gnp(60, 0.15, 2),
        ]
        .iter()
        .enumerate()
        {
            let out = maximal_matching_rand(g, 100 + i as u64).unwrap();
            assert!(out.value.is_maximal(g), "seed {i}");
        }
    }

    #[test]
    fn single_edge_matches() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let out = maximal_matching_det(&g).unwrap();
        assert_eq!(out.value.edges, vec![(NodeId(0), NodeId(1))]);
        let out = maximal_matching_rand(&g, 3).unwrap();
        assert_eq!(out.value.edges, vec![(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn empty_graph_empty_matching() {
        let g = Graph::from_edges(4, []).unwrap();
        assert!(maximal_matching_det(&g).unwrap().value.edges.is_empty());
    }

    #[test]
    fn maximality_checker_rejects() {
        let g = generators::path(4);
        let m = Matching::from_edges(4, vec![(NodeId(0), NodeId(1))]);
        assert!(!m.is_maximal(&g)); // edge (2,3) uncovered
        let m = Matching::from_edges(4, vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))]);
        assert!(m.is_maximal(&g));
    }
}
