//! Distributed `(deg + 1)`-list coloring.
//!
//! Given a subgraph `H` in which every vertex `v` holds a palette of at
//! least `deg_H(v) + 1` colors, a proper coloring from the palettes always
//! exists and can be computed greedily. Distributedly we first compute a
//! helper `(Δ_H + 1)`-coloring of `H` (Linial + Kuhn–Wattenhofer, see
//! [`crate::linial`]) and then sweep its color classes: when a class is
//! scheduled, each of its members picks the smallest palette color unused
//! by already-colored neighbors — at that moment at most `deg_H(v)` colors
//! are blocked, so a palette color is always free.
//!
//! This plays the role of the paper's `T_{deg+1}` subroutine (Lemma 24);
//! our round complexity is `O(Δ_H log Δ_H + log* n)`.

use graphgen::{Color, Coloring, Graph, NodeId};
use localsim::{Executor, LocalAlgorithm, NodeCtx, Probe, SimError, Transition};

use crate::linial::delta_plus_one_coloring_probed;
use crate::Timed;

/// Errors from list-coloring instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListColoringError {
    /// A vertex's palette is smaller than its degree plus one.
    PaletteTooSmall {
        node: NodeId,
        palette: usize,
        degree: usize,
    },
    /// Simulator failure.
    Sim(SimError),
}

impl std::fmt::Display for ListColoringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListColoringError::PaletteTooSmall {
                node,
                palette,
                degree,
            } => write!(
                f,
                "vertex {node} has a palette of {palette} colors but degree {degree}"
            ),
            ListColoringError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ListColoringError {}

impl From<SimError> for ListColoringError {
    fn from(e: SimError) -> Self {
        ListColoringError::Sim(e)
    }
}

struct SweepAlgo {
    schedule: Vec<u32>,        // helper color per node
    palettes: Vec<Vec<Color>>, // palette per node
    /// Per node: `(color value, palette index)` sorted by color, so a
    /// neighbor's color maps to the palette slots it blocks in
    /// `O(log |palette|)` instead of a linear `contains` per candidate.
    palette_luts: Vec<Vec<(u32, u32)>>,
    classes: u32, // number of helper classes
}

/// State: `None` while waiting, `Some(color)` once colored.
impl LocalAlgorithm for SweepAlgo {
    type State = Option<Color>;
    type Output = Color;

    fn init(&self, _ctx: &NodeCtx) -> Option<Color> {
        None
    }

    fn step(
        &self,
        ctx: &NodeCtx,
        state: &Option<Color>,
        nbrs: &[Option<Color>],
    ) -> Transition<Option<Color>, Color> {
        if let Some(c) = state {
            return Transition::Halt(*c);
        }
        let my_class = self.schedule[ctx.node.index()];
        if ctx.round - 1 == my_class as u64 {
            // Mark the palette slots blocked by colored neighbors in a
            // bitset over palette *indices* (inline words for the
            // deg+1-sized palettes this pipeline builds), then take the
            // first clear slot — the same first-free-in-palette-order
            // color the old `find(!contains)` scan picked, without the
            // O(|palette| · deg) rescans.
            let palette = &self.palettes[ctx.node.index()];
            let lut = &self.palette_luts[ctx.node.index()];
            let mut taken = crate::bitset::ColorBitset::new(palette.len());
            for nc in nbrs.iter().flatten() {
                // Mark every slot holding this color (palettes may
                // repeat a color; all its copies are equally blocked).
                let lo = lut.partition_point(|&(c, _)| c < nc.0);
                for &(c, idx) in &lut[lo..] {
                    if c != nc.0 {
                        break;
                    }
                    taken.mark(idx as usize);
                }
            }
            let c = taken
                .first_clear()
                .map(|slot| palette[slot])
                .expect("deg+1 palette always has a free color at schedule time");
            if my_class + 1 == self.classes {
                Transition::Halt(c)
            } else {
                Transition::Continue(Some(c))
            }
        } else if ctx.round > u64::from(my_class) {
            // Already acted in an earlier round (colored) — unreachable
            // because colored nodes return above — or class passed without
            // us (impossible). Keep waiting defensively.
            Transition::Continue(*state)
        } else {
            Transition::Continue(None)
        }
    }
}

/// Colors every vertex of `h` from its palette, properly, in
/// `O(Δ_H log Δ_H + log* n)` rounds.
///
/// # Examples
///
/// ```
/// use graphgen::Color;
/// let g = graphgen::generators::cycle(12);
/// // Odd palettes only — (deg+1)-list coloring handles arbitrary lists.
/// let palettes: Vec<Vec<Color>> =
///     (0..12).map(|_| vec![Color(1), Color(3), Color(5)]).collect();
/// let out = primitives::list_coloring::deg_plus_one_list_color(&g, &palettes, None)?;
/// assert!(g.vertices().all(|v| out.value.get(v).unwrap().0 % 2 == 1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// `palettes[v]` is the allowed color list of vertex `v`; it must contain
/// at least `deg_h(v) + 1` colors. `uids` optionally installs symmetry-
/// breaking identifiers (e.g. inherited from an enclosing graph).
///
/// # Errors
///
/// Returns [`ListColoringError::PaletteTooSmall`] if some palette is too
/// small, or a wrapped simulator error.
pub fn deg_plus_one_list_color(
    h: &Graph,
    palettes: &[Vec<Color>],
    uids: Option<Vec<u64>>,
) -> Result<Timed<Coloring>, ListColoringError> {
    deg_plus_one_list_color_probed(h, palettes, uids, &Probe::disabled())
}

/// [`deg_plus_one_list_color`] with per-round telemetry mirrored to
/// `probe`.
///
/// # Errors
///
/// Same as [`deg_plus_one_list_color`].
pub fn deg_plus_one_list_color_probed(
    h: &Graph,
    palettes: &[Vec<Color>],
    uids: Option<Vec<u64>>,
    probe: &Probe,
) -> Result<Timed<Coloring>, ListColoringError> {
    assert_eq!(palettes.len(), h.n(), "one palette per vertex");
    for v in h.vertices() {
        if palettes[v.index()].len() < h.degree(v) + 1 {
            return Err(ListColoringError::PaletteTooSmall {
                node: v,
                palette: palettes[v.index()].len(),
                degree: h.degree(v),
            });
        }
    }
    if h.n() == 0 {
        return Ok(Timed::new(Coloring::empty(0), 0));
    }
    let helper = delta_plus_one_coloring_probed(h, uids, probe)?;
    let classes = h.max_degree() as u32 + 1;
    let schedule: Vec<u32> = h
        .vertices()
        .map(|v| helper.value.get(v).expect("helper coloring is complete").0)
        .collect();
    let palette_luts = palettes
        .iter()
        .map(|p| {
            let mut lut: Vec<(u32, u32)> =
                p.iter().enumerate().map(|(i, c)| (c.0, i as u32)).collect();
            lut.sort_unstable();
            lut
        })
        .collect();
    let algo = SweepAlgo {
        schedule,
        palettes: palettes.to_vec(),
        palette_luts,
        classes,
    };
    let run = Executor::new(h)
        .with_threads(localsim::default_threads())
        .with_probe(probe.clone())
        .run(&algo, u64::from(classes) + 1)?;
    let coloring = Coloring::from_vec(run.outputs.into_iter().map(Some).collect());
    Ok(Timed::new(coloring, helper.rounds + run.rounds))
}

/// Convenience: a `(deg+1)`-list coloring instance on the subgraph of `g`
/// induced by `active`, with palettes given per active vertex.
///
/// Returns the chosen color per active vertex (in `active` order) — the
/// caller merges them into its global partial coloring.
///
/// # Errors
///
/// Same as [`deg_plus_one_list_color`].
pub fn deg_plus_one_list_color_subset(
    g: &Graph,
    active: &[NodeId],
    palettes: &[Vec<Color>],
    uids: Option<Vec<u64>>,
) -> Result<Timed<Vec<(NodeId, Color)>>, ListColoringError> {
    deg_plus_one_list_color_subset_probed(g, active, palettes, uids, &Probe::disabled())
}

/// [`deg_plus_one_list_color_subset`] with per-round telemetry mirrored to
/// `probe`.
///
/// # Errors
///
/// Same as [`deg_plus_one_list_color`].
pub fn deg_plus_one_list_color_subset_probed(
    g: &Graph,
    active: &[NodeId],
    palettes: &[Vec<Color>],
    uids: Option<Vec<u64>>,
    probe: &Probe,
) -> Result<Timed<Vec<(NodeId, Color)>>, ListColoringError> {
    let (h, back) = g.induced(active);
    let out = deg_plus_one_list_color_probed(&h, palettes, uids, probe)?;
    let assignment = back
        .iter()
        .enumerate()
        .map(|(i, &orig)| {
            (
                orig,
                out.value
                    .get(NodeId::from(i))
                    .expect("list coloring is complete"),
            )
        })
        .collect();
    Ok(Timed::new(assignment, out.rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;

    fn full_palettes(h: &Graph, k: u32) -> Vec<Vec<Color>> {
        (0..h.n()).map(|_| (0..k).map(Color).collect()).collect()
    }

    #[test]
    fn colors_cycle_with_three() {
        let g = generators::cycle(30);
        let out = deg_plus_one_list_color(&g, &full_palettes(&g, 3), None).unwrap();
        out.value.check_complete(&g, 3).unwrap();
    }

    #[test]
    fn respects_restricted_palettes() {
        // A path where middle vertices may only use {5, 6}.
        let g = generators::path(10);
        let palettes: Vec<Vec<Color>> = (0..10)
            .map(|_| vec![Color(5), Color(6), Color(9)])
            .collect();
        let out = deg_plus_one_list_color(&g, &palettes, None).unwrap();
        for v in g.vertices() {
            let c = out.value.get(v).unwrap();
            assert!([5, 6, 9].contains(&c.0));
        }
        out.value.check_partial(&g, 10).unwrap();
    }

    #[test]
    fn rejects_small_palette() {
        let g = generators::path(3);
        let mut palettes = full_palettes(&g, 3);
        palettes[1] = vec![Color(0), Color(1)]; // degree 2 needs 3 colors
        assert!(matches!(
            deg_plus_one_list_color(&g, &palettes, None),
            Err(ListColoringError::PaletteTooSmall { .. })
        ));
    }

    #[test]
    fn subset_instance_on_clique_interior() {
        let g = generators::complete(6);
        let active: Vec<_> = (0..4).map(graphgen::NodeId::from).collect();
        // Induced K4 needs 4 colors.
        let palettes: Vec<Vec<Color>> = (0..4).map(|_| (0..4).map(Color).collect()).collect();
        let out = deg_plus_one_list_color_subset(&g, &active, &palettes, None).unwrap();
        let mut seen = std::collections::HashSet::new();
        for (_, c) in out.value {
            assert!(seen.insert(c), "clique vertices must all differ");
        }
    }

    #[test]
    fn distinct_palettes_heterogeneous_degrees() {
        let g = generators::star(8);
        let mut palettes = vec![vec![Color(0)]; 9];
        palettes[0] = (0..9).map(Color).collect(); // center degree 8
        for p in palettes.iter_mut().skip(1) {
            *p = vec![Color(1), Color(2)];
        }
        let out = deg_plus_one_list_color(&g, &palettes, None).unwrap();
        out.value.check_partial(&g, 10).unwrap();
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []).unwrap();
        let out = deg_plus_one_list_color(&g, &[], None).unwrap();
        assert_eq!(out.rounds, 0);
    }
}
