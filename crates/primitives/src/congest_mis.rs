//! CONGEST implementations of Luby's MIS and Israeli–Itai matching.
//!
//! The state-exchange implementations in [`crate::mis`] and
//! [`crate::matching`] are convenient but broadcast whole states. These
//! per-port versions send only what the algorithms actually need —
//! `O(log n)`-bit priorities and constant-size status flags — and run
//! through the metering [`localsim::CongestExecutor`], demonstrating that
//! the classic symmetry-breaking toolbox is CONGEST-compatible (the model
//! of the paper's companion works [MU21, HM24]).

use graphgen::{Graph, NodeId};
use localsim::{
    broadcast, CongestError, CongestExecutor, MessageProgram, MsgTransition, NodeCtx, Outgoing,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-edge message of the CONGEST MIS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisMsg {
    /// This round's priority.
    Bid(u64),
    /// "I joined the MIS."
    Joined,
    /// "I am out (a neighbor joined)."
    Retired,
}

fn mis_msg_bits(m: &MisMsg) -> usize {
    match m {
        MisMsg::Bid(p) => 2 + (64 - p.leading_zeros()) as usize,
        MisMsg::Joined | MisMsg::Retired => 2,
    }
}

struct LubyCongest {
    seed: u64,
    /// Priorities are drawn modulo this bound, keeping messages narrow
    /// (`O(log n)` bits suffice w.h.p. for distinctness per round).
    priority_space: u64,
}

struct LubyState {
    rng: StdRng,
    bid: u64,
    alive_ports: Vec<bool>,
}

impl MessageProgram for LubyCongest {
    type State = LubyState;
    type Msg = MisMsg;
    type Output = bool;

    fn init(&self, ctx: &NodeCtx) -> (LubyState, Vec<Outgoing<MisMsg>>) {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ ctx.uid.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let bid = rng.gen_range(0..self.priority_space);
        let state = LubyState {
            rng,
            bid,
            alive_ports: vec![true; ctx.degree()],
        };
        let outs = broadcast(ctx.degree(), &MisMsg::Bid(bid));
        (state, outs)
    }

    fn step(
        &self,
        ctx: &NodeCtx,
        state: &mut LubyState,
        inbox: &[Option<MisMsg>],
    ) -> MsgTransition<MisMsg, bool> {
        // Mark retired/joined neighbors; a joined neighbor retires us.
        let mut neighbor_joined = false;
        for (p, msg) in inbox.iter().enumerate() {
            match msg {
                Some(MisMsg::Joined) => {
                    neighbor_joined = true;
                    state.alive_ports[p] = false;
                }
                Some(MisMsg::Retired) => state.alive_ports[p] = false,
                _ => {}
            }
        }
        if neighbor_joined {
            return MsgTransition::HaltAfter(live_broadcast(state, &MisMsg::Retired), false);
        }
        if ctx.round % 2 == 1 {
            // Decision round: compare my bid against live neighbors' bids.
            let me = (state.bid, ctx.uid);
            let beaten = inbox.iter().enumerate().any(|(p, m)| {
                matches!(m, Some(MisMsg::Bid(q))
                    if state.alive_ports[p] && (*q, port_uid(ctx, p)) > me)
            });
            if !beaten {
                return MsgTransition::HaltAfter(live_broadcast(state, &MisMsg::Joined), true);
            }
            MsgTransition::Continue(Vec::new())
        } else {
            // Redraw round.
            state.bid = state.rng.gen_range(0..self.priority_space);
            MsgTransition::Continue(live_broadcast(state, &MisMsg::Bid(state.bid)))
        }
    }
}

fn live_broadcast(state: &LubyState, msg: &MisMsg) -> Vec<Outgoing<MisMsg>> {
    state
        .alive_ports
        .iter()
        .enumerate()
        .filter(|&(_, &alive)| alive)
        .map(|(p, _)| Outgoing::new(p, *msg))
        .collect()
}

/// The uid of the neighbor on port `p` (ids are the indices here, which is
/// what the default executors install).
fn port_uid(ctx: &NodeCtx, p: usize) -> u64 {
    u64::from(ctx.neighbors[p].0)
}

/// Outcome of a CONGEST run.
#[derive(Debug, Clone)]
pub struct CongestRun<T> {
    /// The result.
    pub value: T,
    /// Communication rounds.
    pub rounds: u64,
    /// Widest message observed (bits).
    pub max_message_bits: usize,
}

/// Luby's MIS with `O(log n)`-bit messages, metered.
///
/// # Errors
///
/// Propagates metering/simulator failures.
pub fn congest_mis(g: &Graph, seed: u64) -> Result<CongestRun<Vec<bool>>, CongestError> {
    // log²-bit priorities: distinct per round w.h.p.
    let bits = 2 * (usize::BITS - g.n().leading_zeros()) as u64 + 8;
    let space = 1u64 << bits.min(62);
    let budget_bits = bits as usize + 4;
    let ex = CongestExecutor::new(g, budget_bits, mis_msg_bits)
        .with_threads(localsim::default_threads());
    let max_rounds = 100 + 32 * (usize::BITS - g.n().leading_zeros()) as u64;
    let run = ex.run(
        &LubyCongest {
            seed,
            priority_space: space,
        },
        max_rounds,
    )?;
    Ok(CongestRun {
        value: run.outputs,
        rounds: run.rounds,
        max_message_bits: run.max_message_bits,
    })
}

/// Per-edge message of the CONGEST matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchMsg {
    /// Proposal to the receiving neighbor.
    Propose,
    /// Acceptance of the receiving neighbor's proposal.
    Accept,
    /// "I am matched" (to someone).
    Matched,
}

fn match_msg_bits(_m: &MatchMsg) -> usize {
    2
}

struct MatchCongest {
    seed: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum MatchRole {
    Idle,
    Proposed(usize),
    Accepted(usize),
}

struct MatchState {
    rng: StdRng,
    free_ports: Vec<bool>,
    role: MatchRole,
}

impl MessageProgram for MatchCongest {
    type State = MatchState;
    type Msg = MatchMsg;
    type Output = Option<NodeId>;

    fn init(&self, ctx: &NodeCtx) -> (MatchState, Vec<Outgoing<MatchMsg>>) {
        let rng = StdRng::seed_from_u64(self.seed ^ ctx.uid.wrapping_mul(0xA076_1D64_78BD_642F));
        (
            MatchState {
                rng,
                free_ports: vec![true; ctx.degree()],
                role: MatchRole::Idle,
            },
            Vec::new(),
        )
    }

    fn step(
        &self,
        ctx: &NodeCtx,
        state: &mut MatchState,
        inbox: &[Option<MatchMsg>],
    ) -> MsgTransition<MatchMsg, Option<NodeId>> {
        // Track matched neighbors.
        for (p, msg) in inbox.iter().enumerate() {
            if matches!(msg, Some(MatchMsg::Matched)) {
                state.free_ports[p] = false;
            }
        }
        match (ctx.round - 1) % 3 {
            0 => {
                // Propose with a coin to a random free neighbor.
                let free: Vec<usize> = (0..ctx.degree()).filter(|&p| state.free_ports[p]).collect();
                if free.is_empty() {
                    return MsgTransition::HaltAfter(Vec::new(), None);
                }
                state.role = MatchRole::Idle;
                if state.rng.gen_bool(0.5) {
                    let p = free[state.rng.gen_range(0..free.len())];
                    state.role = MatchRole::Proposed(p);
                    return MsgTransition::Continue(vec![Outgoing::new(p, MatchMsg::Propose)]);
                }
                MsgTransition::Continue(Vec::new())
            }
            1 => {
                // Accept the smallest-uid proposer (non-proposers only).
                if matches!(state.role, MatchRole::Proposed(_)) {
                    return MsgTransition::Continue(Vec::new());
                }
                let best = inbox
                    .iter()
                    .enumerate()
                    .filter(|(p, m)| matches!(m, Some(MatchMsg::Propose)) && state.free_ports[*p])
                    .min_by_key(|&(p, _)| port_uid(ctx, p));
                if let Some((p, _)) = best {
                    state.role = MatchRole::Accepted(p);
                    return MsgTransition::Continue(vec![Outgoing::new(p, MatchMsg::Accept)]);
                }
                MsgTransition::Continue(Vec::new())
            }
            _ => {
                // Confirm: a proposer matched iff its target accepted; an
                // acceptor matched its chosen proposer unconditionally (the
                // proposer always confirms an acceptance).
                let matched_port = match state.role {
                    MatchRole::Proposed(p) if matches!(inbox[p], Some(MatchMsg::Accept)) => Some(p),
                    MatchRole::Accepted(p) => Some(p),
                    _ => None,
                };
                state.role = MatchRole::Idle;
                if let Some(p) = matched_port {
                    let partner = ctx.neighbors[p];
                    return MsgTransition::HaltAfter(
                        live_match_broadcast(state, MatchMsg::Matched),
                        Some(partner),
                    );
                }
                MsgTransition::Continue(Vec::new())
            }
        }
    }
}

fn live_match_broadcast(state: &MatchState, msg: MatchMsg) -> Vec<Outgoing<MatchMsg>> {
    state
        .free_ports
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f)
        .map(|(p, _)| Outgoing::new(p, msg))
        .collect()
}

/// Israeli–Itai style matching with 2-bit messages, metered.
///
/// # Errors
///
/// Propagates metering/simulator failures.
pub fn congest_matching(
    g: &Graph,
    seed: u64,
) -> Result<CongestRun<Vec<Option<NodeId>>>, CongestError> {
    let ex = CongestExecutor::new(g, 2, match_msg_bits).with_threads(localsim::default_threads());
    let max_rounds = 300 + 90 * (usize::BITS - g.n().leading_zeros()) as u64;
    let run = ex.run(&MatchCongest { seed }, max_rounds)?;
    Ok(CongestRun {
        value: run.outputs,
        rounds: run.rounds,
        max_message_bits: run.max_message_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mis::is_mis;
    use graphgen::generators;

    #[test]
    fn congest_mis_valid_and_narrow() {
        for (i, g) in [
            generators::cycle(50),
            generators::random_regular(120, 5, 2),
            generators::complete(10),
        ]
        .iter()
        .enumerate()
        {
            let out = congest_mis(g, i as u64).unwrap();
            assert!(is_mis(g, &out.value), "family {i}");
            let budget = 2 * (usize::BITS - g.n().leading_zeros()) as usize + 12;
            assert!(out.max_message_bits <= budget);
        }
    }

    #[test]
    fn congest_matching_valid_and_two_bit() {
        for (i, g) in [
            generators::cycle(40),
            generators::random_regular(100, 4, 7),
            generators::gnp(60, 0.12, 3),
        ]
        .iter()
        .enumerate()
        {
            let out = congest_matching(g, 40 + i as u64).unwrap();
            assert!(out.max_message_bits <= 2, "messages stay constant-size");
            // Symmetry + maximality.
            let mut edges = Vec::new();
            for v in g.vertices() {
                if let Some(p) = out.value[v.index()] {
                    assert_eq!(out.value[p.index()], Some(v), "asymmetric match at {v}");
                    if v < p {
                        edges.push((v, p));
                    }
                }
            }
            let m = crate::matching::Matching::from_pairs(g.n(), &edges);
            assert!(m.is_maximal(g), "family {i}");
        }
    }

    #[test]
    fn differential_vs_state_exchange() {
        // Both implementations produce *valid* (not identical) outputs on
        // the same graphs — the invariant, not the trace, is the contract.
        let g = generators::random_regular(200, 6, 11);
        let a = congest_mis(&g, 5).unwrap();
        assert!(is_mis(&g, &a.value));
        let b = crate::mis::mis_luby(&g, 5).unwrap();
        assert!(is_mis(&g, &b.value));
    }
}
