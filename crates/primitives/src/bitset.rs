//! Blocked-bitmap color tracking for the coloring hot loops.
//!
//! The greedy color pick inside [`crate::list_coloring`] and the
//! Kuhn–Wattenhofer sweep in [`crate::linial`] both ask the same
//! question per scheduled node: "mark the colors my neighbors hold,
//! then find the first unmarked one." Scanning a `Vec<bool>` (or worse,
//! `nbrs.contains` per palette entry) makes that `O(width)` branchy
//! byte work; packing the marks into `u64` blocks turns the scan into
//! one `trailing_ones` per 64 slots — the same blocked-bitmap trick
//! that bought 4.3x in the ACD friend-graph kernel (PR 4). In the
//! paper's constant-degree regime (`Δ ≤ 63`, arXiv:2504.03080) the
//! whole mask is one or two words and never touches the heap spill.

/// A reusable fixed-width bitset over color slots `0..width`.
///
/// The two-word inline array covers `width ≤ 128` — every instance the
/// Δ-coloring pipeline creates, since sweep widths are `Δ + 1` and
/// palettes are `deg + 1` — without heap allocation; wider masks spill
/// into a `Vec`. `reset` keeps the spill capacity, so a per-node loop
/// reusing one `ColorBitset` allocates at most once.
#[derive(Debug, Default)]
pub struct ColorBitset {
    inline: [u64; 2],
    spill: Vec<u64>,
    width: usize,
}

impl ColorBitset {
    /// An empty bitset of the given width (all slots unmarked).
    #[must_use]
    pub fn new(width: usize) -> Self {
        let mut s = ColorBitset::default();
        s.reset(width);
        s
    }

    /// Clears all marks and resizes to `width` slots.
    pub fn reset(&mut self, width: usize) {
        self.width = width;
        self.inline = [0, 0];
        self.spill.clear();
        if width > 128 {
            self.spill.resize(width.div_ceil(64) - 2, 0);
        }
    }

    /// Marks slot `idx`; out-of-range indices are ignored (callers mark
    /// neighbor colors, which may fall outside the block being swept).
    #[inline]
    pub fn mark(&mut self, idx: usize) {
        if idx >= self.width {
            return;
        }
        let (block, bit) = (idx / 64, idx % 64);
        if block < 2 {
            self.inline[block] |= 1 << bit;
        } else {
            self.spill[block - 2] |= 1 << bit;
        }
    }

    /// The smallest unmarked slot, or `None` if all `width` slots are
    /// marked. One `trailing_ones` per 64 slots — no per-slot branch.
    #[inline]
    #[must_use]
    pub fn first_clear(&self) -> Option<usize> {
        let blocks = self.inline.iter().chain(self.spill.iter());
        for (i, &word) in blocks.enumerate() {
            let t = word.trailing_ones() as usize;
            if t < 64 {
                let slot = i * 64 + t;
                return (slot < self.width).then_some(slot);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_first_free_slot() {
        let mut b = ColorBitset::new(5);
        assert_eq!(b.first_clear(), Some(0));
        b.mark(0);
        b.mark(1);
        b.mark(3);
        assert_eq!(b.first_clear(), Some(2));
        b.mark(2);
        assert_eq!(b.first_clear(), Some(4));
        b.mark(4);
        assert_eq!(b.first_clear(), None);
    }

    #[test]
    fn out_of_range_marks_are_ignored() {
        let mut b = ColorBitset::new(3);
        b.mark(3);
        b.mark(1000);
        assert_eq!(b.first_clear(), Some(0));
    }

    #[test]
    fn word_boundaries() {
        for width in [63, 64, 65, 127, 128, 129, 200] {
            let mut b = ColorBitset::new(width);
            for i in 0..width - 1 {
                b.mark(i);
            }
            assert_eq!(b.first_clear(), Some(width - 1), "width={width}");
            b.mark(width - 1);
            assert_eq!(b.first_clear(), None, "width={width}");
        }
    }

    #[test]
    fn reset_reuses_and_rewidths() {
        let mut b = ColorBitset::new(200);
        b.mark(199);
        b.reset(10);
        assert_eq!(b.first_clear(), Some(0));
        for i in 0..10 {
            b.mark(i);
        }
        assert_eq!(b.first_clear(), None);
        b.reset(70);
        b.mark(64);
        assert_eq!(b.first_clear(), Some(0));
    }

    #[test]
    fn matches_naive_scan() {
        // Cross-check against the Vec<bool> implementation it replaces.
        let widths = [1usize, 7, 64, 90, 130];
        for (wi, &width) in widths.iter().enumerate() {
            let mut b = ColorBitset::new(width);
            let mut naive = vec![false; width];
            // Deterministic pseudo-random marks.
            let mut x = 0x9e37_79b9_7f4a_7c15u64 ^ (wi as u64);
            for _ in 0..width * 2 / 3 + 1 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let idx = (x % (width as u64 * 2)) as usize;
                b.mark(idx);
                if idx < width {
                    naive[idx] = true;
                }
            }
            assert_eq!(
                b.first_clear(),
                naive.iter().position(|&t| !t),
                "width={width}"
            );
        }
    }
}
