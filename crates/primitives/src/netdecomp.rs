//! Network decomposition and decomposition-based solvers.
//!
//! The paper's `Õ(log^{5/3} n)` branch runs its maximal matching, MIS, and
//! `(deg+1)`-list coloring subroutines through the near-optimal network
//! decomposition of [GG24]. That machinery is a paper-sized project by
//! itself; this module provides the *classic* stand-in (see DESIGN.md,
//! substitutions): the Linial–Saks randomized `(O(log n), O(log n))`
//! decomposition, plus a generic "solve cluster-by-cluster" driver that
//! turns any decomposition into a `(deg+1)`-list coloring or MIS algorithm
//! with `O(C · D)` LOCAL rounds.
//!
//! A `(C, D)` **network decomposition** partitions the vertices into `C`
//! classes such that every connected component (*cluster*) of each class
//! has diameter at most `D`. Clusters of one class are non-adjacent…
//! actually may be adjacent but are then distinct clusters; the driver
//! exploits that a cluster can gather its whole topology in `D` rounds and
//! solve its subproblem centrally.

use graphgen::{Color, Coloring, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Timed;

/// A network decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// Class per vertex, in `0..classes`.
    pub class_of: Vec<u32>,
    /// Cluster id per vertex (globally unique across classes).
    pub cluster_of: Vec<u32>,
    /// Number of classes.
    pub classes: u32,
    /// Largest measured cluster (weak) diameter.
    pub max_cluster_diameter: usize,
}

impl Decomposition {
    /// Clusters grouped by class: `clusters[class] = [cluster vertex sets]`.
    pub fn clusters_by_class(&self) -> Vec<Vec<Vec<NodeId>>> {
        let mut per_cluster: std::collections::HashMap<u32, Vec<NodeId>> =
            std::collections::HashMap::new();
        for (i, &c) in self.cluster_of.iter().enumerate() {
            per_cluster.entry(c).or_default().push(NodeId::from(i));
        }
        let mut out: Vec<Vec<Vec<NodeId>>> = vec![Vec::new(); self.classes as usize];
        let mut ids: Vec<u32> = per_cluster.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let members = per_cluster.remove(&id).expect("key exists");
            let class = self.class_of[members[0].index()] as usize;
            out[class].push(members);
        }
        out
    }
}

/// Validates a decomposition: classes partition the vertices, clusters are
/// class-consistent and connected, and their diameters respect `bound`.
pub fn is_valid_decomposition(g: &Graph, nd: &Decomposition, bound: usize) -> bool {
    if nd.class_of.len() != g.n() || nd.cluster_of.len() != g.n() {
        return false;
    }
    for cls in nd.clusters_by_class() {
        for members in cls {
            // Class consistency.
            let class = nd.class_of[members[0].index()];
            let cluster = nd.cluster_of[members[0].index()];
            if members
                .iter()
                .any(|v| nd.class_of[v.index()] != class || nd.cluster_of[v.index()] != cluster)
            {
                return false;
            }
            // Connectivity and diameter inside the cluster.
            let (sub, _) = g.induced(&members);
            if !sub.is_connected() {
                return false;
            }
            if sub.diameter_from(NodeId(0)) > bound {
                return false;
            }
        }
    }
    true
}

/// The Linial–Saks randomized network decomposition: `O(log n)` classes of
/// clusters with `O(log n)` diameter, w.h.p., in `O(log² n)` LOCAL rounds.
///
/// # Examples
///
/// ```
/// use primitives::netdecomp::{is_valid_decomposition, linial_saks};
/// let g = graphgen::generators::random_regular(128, 4, 1);
/// let out = linial_saks(&g, 7);
/// assert!(is_valid_decomposition(&g, &out.value, 40));
/// ```
///
/// Per phase every undecided vertex draws a radius from a geometric
/// distribution (capped at `O(log n)`) and broadcasts `(radius, uid)`;
/// each vertex adopts the lexicographically largest `(radius − dist, uid)`
/// bid reaching it. Vertices strictly inside their winning ball join the
/// phase's class; vertices exactly on the boundary stay for later phases.
///
/// # Panics
///
/// Panics if the phase budget (`8·log₂ n + 32`) is exhausted — w.h.p.
/// impossible.
pub fn linial_saks(g: &Graph, seed: u64) -> Timed<Decomposition> {
    let n = g.n();
    if n == 0 {
        return Timed::new(
            Decomposition {
                class_of: Vec::new(),
                cluster_of: Vec::new(),
                classes: 0,
                max_cluster_diameter: 0,
            },
            0,
        );
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let log_n = (usize::BITS - n.leading_zeros()) as usize;
    let cap = 2 * log_n + 2;
    let mut class_of = vec![u32::MAX; n];
    let mut cluster_of = vec![u32::MAX; n];
    let mut next_cluster = 0u32;
    let mut rounds = 0u64;
    let mut classes = 0u32;
    let budget = 8 * log_n as u32 + 32;
    while class_of.contains(&u32::MAX) {
        assert!(classes < budget, "Linial-Saks phase budget exhausted");
        // Draw radii for undecided vertices.
        let mut radius = vec![0usize; n];
        for v in 0..n {
            if class_of[v] == u32::MAX {
                let mut r = 0;
                while r < cap && rng.gen_bool(0.5) {
                    r += 1;
                }
                radius[v] = r;
            }
        }
        // Each undecided vertex finds the best bid (radius - dist, uid)
        // over centers within their radius: multi-source layered BFS,
        // which costs the maximum radius in LOCAL rounds.
        let max_r = radius.iter().copied().max().unwrap_or(0);
        rounds += max_r as u64 + 2;
        // best[v] = (slack, center) with slack = r_center - dist(center, v).
        let mut best: Vec<Option<(i64, u32)>> = vec![None; n];
        for c in 0..n {
            if class_of[c] != u32::MAX {
                continue;
            }
            // BFS from c through undecided vertices up to radius[c].
            let mut dist = std::collections::HashMap::new();
            dist.insert(c as u32, 0usize);
            let mut frontier = vec![c as u32];
            let mut d = 0usize;
            while d <= radius[c] {
                for &v in &frontier {
                    let slack = (radius[c] - d) as i64;
                    let bid = (slack, c as u32);
                    if best[v as usize].is_none_or(|b| bid > b) {
                        best[v as usize] = Some(bid);
                    }
                }
                d += 1;
                if d > radius[c] {
                    break;
                }
                let mut next = Vec::new();
                for &v in &frontier {
                    for &w in g.neighbors(NodeId(v)) {
                        if class_of[w.index()] == u32::MAX && !dist.contains_key(&w.0) {
                            dist.insert(w.0, d);
                            next.push(w.0);
                        }
                    }
                }
                frontier = next;
            }
        }
        // Vertices with strictly positive slack join this class, clustered
        // by center; zero-slack (boundary) vertices wait.
        let mut center_cluster: std::collections::HashMap<u32, u32> =
            std::collections::HashMap::new();
        let mut joined = false;
        for v in 0..n {
            if class_of[v] != u32::MAX {
                continue;
            }
            if let Some((slack, center)) = best[v] {
                if slack > 0 {
                    let id = *center_cluster.entry(center).or_insert_with(|| {
                        let id = next_cluster;
                        next_cluster += 1;
                        id
                    });
                    class_of[v] = classes;
                    cluster_of[v] = id;
                    joined = true;
                }
            }
        }
        if joined {
            classes += 1;
        }
    }
    // Split any cluster that became disconnected by boundary removal
    // (rare): recluster per connected component.
    let mut nd = Decomposition {
        class_of,
        cluster_of,
        classes,
        max_cluster_diameter: 0,
    };
    recluster_components(g, &mut nd, &mut next_cluster);
    nd.max_cluster_diameter = measure_diameters(g, &nd);
    Timed::new(nd, rounds)
}

fn recluster_components(g: &Graph, nd: &mut Decomposition, next_cluster: &mut u32) {
    let mut seen = vec![false; g.n()];
    for s in g.vertices() {
        if seen[s.index()] {
            continue;
        }
        seen[s.index()] = true;
        let id = *next_cluster;
        *next_cluster += 1;
        let (class, cluster) = (nd.class_of[s.index()], nd.cluster_of[s.index()]);
        let mut stack = vec![s];
        nd.cluster_of[s.index()] = id;
        while let Some(v) = stack.pop() {
            for &w in g.neighbors(v) {
                if !seen[w.index()]
                    && nd.class_of[w.index()] == class
                    && nd.cluster_of[w.index()] == cluster
                {
                    seen[w.index()] = true;
                    nd.cluster_of[w.index()] = id;
                    stack.push(w);
                }
            }
        }
    }
}

fn measure_diameters(g: &Graph, nd: &Decomposition) -> usize {
    let mut max_d = 0;
    for cls in nd.clusters_by_class() {
        for members in cls {
            let (sub, _) = g.induced(&members);
            max_d = max_d.max(sub.diameter_from(NodeId(0)));
        }
    }
    max_d
}

/// `(deg+1)`-list coloring through a network decomposition: classes are
/// processed in order; all clusters of a class solve their subproblem
/// *simultaneously and centrally* (each gathers its ≤ D-diameter topology
/// plus the colors on its boundary, then extends greedily — a `(deg+1)`
/// list always admits a greedy extension). LOCAL cost:
/// `Σ_class (D_class + 2)` rounds.
///
/// # Panics
///
/// Panics if some palette is smaller than `deg + 1`.
pub fn nd_deg_plus_one_list_color(
    g: &Graph,
    palettes: &[Vec<Color>],
    nd: &Decomposition,
) -> Timed<Coloring> {
    for v in g.vertices() {
        assert!(
            palettes[v.index()].len() > g.degree(v),
            "vertex {v} palette too small for (deg+1)-list coloring"
        );
    }
    let mut coloring = Coloring::empty(g.n());
    let mut rounds = 0u64;
    for cls in nd.clusters_by_class() {
        let mut class_diam = 0usize;
        for members in &cls {
            let (sub, _) = g.induced(members);
            class_diam = class_diam.max(sub.diameter_from(NodeId(0)));
            // Central greedy inside the cluster, aware of outside colors.
            for &v in members {
                let c = palettes[v.index()]
                    .iter()
                    .copied()
                    .find(|&c| g.neighbors(v).iter().all(|&w| coloring.get(w) != Some(c)))
                    .expect("deg+1 list always has a free color");
                coloring.set(v, c);
            }
        }
        rounds += class_diam as u64 + 2;
    }
    Timed::new(coloring, rounds)
}

/// MIS through a network decomposition: same driver, greedy inside each
/// cluster respecting earlier classes' decisions.
pub fn nd_mis(g: &Graph, nd: &Decomposition) -> Timed<Vec<bool>> {
    let mut in_set = vec![false; g.n()];
    let mut decided = vec![false; g.n()];
    let mut rounds = 0u64;
    for cls in nd.clusters_by_class() {
        let mut class_diam = 0usize;
        for members in &cls {
            let (sub, _) = g.induced(members);
            class_diam = class_diam.max(sub.diameter_from(NodeId(0)));
            for &v in members {
                decided[v.index()] = true;
                if !g.neighbors(v).iter().any(|&w| in_set[w.index()]) {
                    in_set[v.index()] = true;
                }
            }
        }
        rounds += class_diam as u64 + 2;
    }
    debug_assert!(decided.iter().all(|&d| d));
    Timed::new(in_set, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mis::is_mis;
    use graphgen::generators;

    #[test]
    fn decomposition_valid_on_families() {
        for (i, g) in [
            generators::cycle(100),
            generators::random_regular(200, 5, 3),
            generators::random_tree(150, 7),
            generators::hypercube(6),
        ]
        .iter()
        .enumerate()
        {
            let out = linial_saks(g, i as u64);
            let log_n = (usize::BITS - g.n().leading_zeros()) as usize;
            assert!(
                is_valid_decomposition(g, &out.value, 4 * log_n + 4),
                "invalid decomposition on family {i}"
            );
            assert!(
                out.value.classes as usize <= 8 * log_n + 32,
                "too many classes: {}",
                out.value.classes
            );
        }
    }

    #[test]
    fn nd_list_coloring_proper() {
        let g = generators::random_regular(150, 6, 9);
        let nd = linial_saks(&g, 3).value;
        let palettes: Vec<Vec<Color>> = (0..g.n()).map(|_| (0..7).map(Color).collect()).collect();
        let out = nd_deg_plus_one_list_color(&g, &palettes, &nd);
        out.value.check_complete(&g, 7).unwrap();
    }

    #[test]
    fn nd_mis_valid() {
        let g = generators::gnp(120, 0.08, 4);
        let nd = linial_saks(&g, 5).value;
        let out = nd_mis(&g, &nd);
        assert!(is_mis(&g, &out.value));
    }

    #[test]
    fn empty_graph() {
        let g = graphgen::Graph::from_edges(0, []).unwrap();
        let out = linial_saks(&g, 1);
        assert_eq!(out.value.classes, 0);
    }

    #[test]
    fn single_cluster_for_clique() {
        let g = generators::complete(8);
        let nd = linial_saks(&g, 2).value;
        assert!(is_valid_decomposition(&g, &nd, 8));
    }

    #[test]
    fn rounds_scale_polylog() {
        let small = linial_saks(&generators::random_regular(128, 4, 1), 7).rounds;
        let large = linial_saks(&generators::random_regular(4096, 4, 1), 7).rounds;
        assert!(
            large <= small * 6 + 80,
            "decomposition rounds should grow polylogarithmically: {small} -> {large}"
        );
    }
}
