//! Degree splitting (the paper's Lemma 21 / Corollary 22 subroutine).
//!
//! An *undirected degree splitting* 2-colors the edges so that at every
//! vertex the two color counts are nearly equal. We implement the Euler
//! partition approach: pair up the incident edges at every vertex, which
//! decomposes the edge set into walks (paths and cycles); 2-coloring a walk
//! alternately makes every paired pair bichromatic. To keep the local
//! computation shallow the walks are chopped into segments of **even**
//! length `Θ(K)` using an MIS on the `K`-th power of the walk structure;
//! even segment lengths keep the alternation consistent across segment
//! boundaries, so the only discrepancy sources are walk endpoints (±1 at
//! odd-degree vertices) and one unavoidable defect per odd cycle (±2 at a
//! single vertex of that cycle).
//!
//! Guarantee: `disc(v) ≤ 1 + 2·(odd-cycle defects charged to v)`; in
//! aggregate this is stronger than Lemma 21's `ε·d(v) + 4` for every ε.
//! The measured rounds are `T_MIS(walk graph^K)·K + O(K)`.

use std::collections::HashMap;

use graphgen::{Graph, NodeId};
use localsim::{Probe, SimError};

use crate::mis::mis_deterministic_probed;
use crate::Timed;

/// Result of one 2-way degree split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Part (0 or 1) of each edge, indexed like `g.edges()`.
    pub part: Vec<u8>,
    /// The edges, for index translation.
    pub edges: Vec<(NodeId, NodeId)>,
}

impl Split {
    /// Per-vertex discrepancy `|#part0 − #part1|`.
    pub fn discrepancies(&self, g: &Graph) -> Vec<i64> {
        let mut disc = vec![0i64; g.n()];
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            let delta = if self.part[i] == 0 { 1 } else { -1 };
            disc[u.index()] += delta;
            disc[v.index()] += delta;
        }
        disc.iter().map(|d| d.abs()).collect()
    }
}

/// Internal walk representation: sequence of edge indices, and whether the
/// walk closes into a cycle.
struct Walk {
    edges: Vec<usize>,
    is_cycle: bool,
}

/// Pairs incident edges at every vertex and extracts the resulting walks.
fn euler_walks(g: &Graph, edges: &[(NodeId, NodeId)]) -> Vec<Walk> {
    let mut eidx: HashMap<(NodeId, NodeId), usize> = HashMap::with_capacity(edges.len());
    for (i, &(u, v)) in edges.iter().enumerate() {
        eidx.insert((u, v), i);
    }
    // incident[v] = indices of edges at v, in adjacency order.
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); g.n()];
    for (i, &(u, v)) in edges.iter().enumerate() {
        incident[u.index()].push(i);
        incident[v.index()].push(i);
    }
    // partner[e] = (partner edge via endpoint u, via endpoint v).
    let mut partner: Vec<[Option<usize>; 2]> = vec![[None, None]; edges.len()];
    let side = |e: usize, v: NodeId| -> usize {
        if edges[e].0 == v {
            0
        } else {
            1
        }
    };
    for v in g.vertices() {
        let inc = &incident[v.index()];
        for pair in inc.chunks(2) {
            if let [a, b] = *pair {
                partner[a][side(a, v)] = Some(b);
                partner[b][side(b, v)] = Some(a);
            }
        }
    }
    // Trace walks. Paths start at a free edge side; cycles from leftovers.
    let mut visited = vec![false; edges.len()];
    let mut walks = Vec::new();
    for start in 0..edges.len() {
        if visited[start] {
            continue;
        }
        // Only start paths here: a free side means no partner on that side.
        let free_side = (0..2).find(|&s| partner[start][s].is_none());
        let Some(fs) = free_side else {
            continue;
        };
        // Walk away from the free side: enter via side fs, leave via 1-fs.
        let mut walk = vec![start];
        visited[start] = true;
        let mut prev = start;
        let mut next = partner[start][1 - fs];
        while let Some(e) = next {
            if visited[e] {
                break;
            }
            visited[e] = true;
            walk.push(e);
            let came_from = prev;
            prev = e;
            // Leave e via the side not shared with came_from.
            let s0 = partner[e][0];
            next = if s0 == Some(came_from) {
                partner[e][1]
            } else {
                partner[e][0]
            };
        }
        walks.push(Walk {
            edges: walk,
            is_cycle: false,
        });
    }
    for start in 0..edges.len() {
        if visited[start] {
            continue;
        }
        // Remaining edges lie on cycles.
        let mut walk = vec![start];
        visited[start] = true;
        let mut prev = start;
        let mut next = partner[start][1];
        while let Some(e) = next {
            if visited[e] {
                break;
            }
            visited[e] = true;
            walk.push(e);
            let came_from = prev;
            prev = e;
            let s0 = partner[e][0];
            next = if s0 == Some(came_from) {
                partner[e][1]
            } else {
                partner[e][0]
            };
        }
        walks.push(Walk {
            edges: walk,
            is_cycle: true,
        });
    }
    walks
}

/// One undirected degree split with segment parameter `k` (clamped to an
/// even value ≥ 4).
///
/// # Examples
///
/// ```
/// let g = graphgen::generators::hypercube(4); // 4-regular
/// let out = primitives::split::degree_split(&g, 8)?;
/// let disc = out.value.discrepancies(&g);
/// assert!(disc.iter().all(|&d| d <= 5));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Propagates simulator errors from the breakpoint MIS.
pub fn degree_split(g: &Graph, k: usize) -> Result<Timed<Split>, SimError> {
    degree_split_probed(g, k, &Probe::disabled())
}

/// [`degree_split`] with per-round telemetry mirrored to `probe`.
///
/// # Errors
///
/// Propagates simulator errors from the breakpoint MIS.
pub fn degree_split_probed(g: &Graph, k: usize, probe: &Probe) -> Result<Timed<Split>, SimError> {
    let k = (k.max(4) / 2) * 2;
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    if edges.is_empty() {
        return Ok(Timed::new(
            Split {
                part: Vec::new(),
                edges,
            },
            0,
        ));
    }
    let walks = euler_walks(g, &edges);

    // Walk-structure graph: nodes = edges of g, links = walk adjacency.
    let mut wedges = Vec::new();
    for w in &walks {
        for pair in w.edges.windows(2) {
            wedges.push((pair[0] as u32, pair[1] as u32));
        }
        if w.is_cycle && w.edges.len() > 2 {
            wedges.push((w.edges[0] as u32, *w.edges.last().unwrap() as u32));
        }
    }
    wedges.retain(|&(a, b)| a != b);
    wedges.sort_unstable_by_key(|&(a, b)| (a.min(b), a.max(b)));
    wedges.dedup_by_key(|e| {
        let (a, b) = (*e).to_owned();
        (a.min(b), a.max(b))
    });
    let wgraph = Graph::from_edges(
        edges.len(),
        wedges.iter().map(|&(a, b)| (a.min(b), a.max(b))),
    )
    .expect("walk structure graph is valid");
    // Breakpoints via MIS on the K-th power (distance > K apart, every edge
    // within K of a breakpoint); the MIS rounds are dilated by K.
    let power = wgraph.power(k);
    let mis = mis_deterministic_probed(&power, None, probe)?;
    let rounds = mis.rounds * k as u64 + 3 * k as u64;
    let breakpoints = mis.value;

    let mut part = vec![0u8; edges.len()];
    for w in &walks {
        color_walk(w, &breakpoints, &mut part);
    }
    Ok(Timed::new(Split { part, edges }, rounds))
}

/// Colors one walk alternately with even-length segments.
fn color_walk(w: &Walk, breakpoints: &[bool], part: &mut [u8]) {
    let len = w.edges.len();
    // Boundary positions: after each breakpoint edge. Then fix parity so
    // every internal segment has even length.
    let mut bounds: Vec<usize> = w
        .edges
        .iter()
        .enumerate()
        .filter(|(_, &e)| breakpoints[e])
        .map(|(i, _)| i + 1) // boundary after position i
        .filter(|&b| b < len)
        .collect();
    // Enforce even segment lengths by nudging boundaries forward.
    let mut fixed: Vec<usize> = Vec::with_capacity(bounds.len());
    let mut prev = 0usize;
    for &b in &bounds {
        let mut b = b;
        if (b - prev) % 2 == 1 {
            b += 1;
        }
        if b <= prev || b >= len {
            continue;
        }
        fixed.push(b);
        prev = b;
    }
    bounds = fixed;
    if w.is_cycle && len % 2 == 1 {
        // Odd cycle: one defect is unavoidable; the final segment is odd
        // and the wrap-around boundary carries the ±2 defect.
    }
    // Alternate within segments, restarting at 0 on every boundary.
    let mut seg_start = 0usize;
    let mut bi = 0usize;
    for (i, &e) in w.edges.iter().enumerate() {
        if bi < bounds.len() && i == bounds[bi] {
            seg_start = i;
            bi += 1;
        }
        part[e] = ((i - seg_start) % 2) as u8;
    }
}

/// Recursively splits the edges of `g` into `2^levels` parts
/// (Corollary 22's role). Parallel branches run on edge-disjoint subgraphs,
/// so each level charges the maximum branch cost.
///
/// Returns the part index per edge of `g` (in `g.edges()` order).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn split_into_parts(g: &Graph, levels: u32, k: usize) -> Result<Timed<Vec<u8>>, SimError> {
    split_into_parts_probed(g, levels, k, &Probe::disabled())
}

/// [`split_into_parts`] with per-round telemetry mirrored to `probe`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn split_into_parts_probed(
    g: &Graph,
    levels: u32,
    k: usize,
    probe: &Probe,
) -> Result<Timed<Vec<u8>>, SimError> {
    let all_edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let mut eidx: HashMap<(NodeId, NodeId), usize> = HashMap::with_capacity(all_edges.len());
    for (i, &e) in all_edges.iter().enumerate() {
        eidx.insert(e, i);
    }
    let mut parts = vec![0u8; all_edges.len()];
    let mut groups: Vec<Vec<(NodeId, NodeId)>> = vec![all_edges.clone()];
    let mut total_rounds = 0u64;
    for level in 0..levels {
        let mut next_groups = Vec::with_capacity(groups.len() * 2);
        let mut level_max = 0u64;
        for group in &groups {
            let sub = Graph::from_edges(g.n(), group.iter().map(|&(u, v)| (u.0, v.0)))
                .expect("edge subset of a valid graph");
            let split = degree_split_probed(&sub, k, probe)?;
            level_max = level_max.max(split.rounds);
            let mut zero = Vec::new();
            let mut one = Vec::new();
            for (i, &e) in split.value.edges.iter().enumerate() {
                if split.value.part[i] == 0 {
                    zero.push(e);
                } else {
                    one.push(e);
                    parts[eidx[&e]] |= 1 << level;
                }
            }
            next_groups.push(zero);
            next_groups.push(one);
        }
        groups = next_groups;
        total_rounds += level_max;
    }
    Ok(Timed::new(parts, total_rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;

    fn check_split_discrepancy(g: &Graph, max_defects: i64) {
        let out = degree_split(g, 8).unwrap();
        let disc = out.value.discrepancies(g);
        for v in g.vertices() {
            let d = disc[v.index()];
            let bound = 1 + 2 * max_defects;
            assert!(
                d <= bound,
                "vertex {v} degree {} has discrepancy {d} > {bound}",
                g.degree(v)
            );
        }
    }

    #[test]
    fn even_cycle_splits_perfectly() {
        let g = generators::cycle(40);
        let out = degree_split(&g, 8).unwrap();
        let disc = out.value.discrepancies(&g);
        assert!(
            disc.iter().all(|&d| d == 0),
            "even cycle: perfect alternation expected"
        );
    }

    #[test]
    fn odd_cycle_has_single_defect() {
        let g = generators::cycle(41);
        let out = degree_split(&g, 8).unwrap();
        let disc = out.value.discrepancies(&g);
        let total: i64 = disc.iter().sum();
        assert_eq!(
            total, 2,
            "exactly one defect vertex with discrepancy 2: {disc:?}"
        );
    }

    #[test]
    fn regular_graph_disc_small() {
        for seed in 0..3 {
            let g = generators::random_regular(100, 8, seed);
            check_split_discrepancy(&g, 4);
        }
    }

    #[test]
    fn hypercube_split_balanced() {
        let g = generators::hypercube(6); // 6-regular, 64 nodes
        let out = degree_split(&g, 8).unwrap();
        let disc = out.value.discrepancies(&g);
        // Even degree: endpoints only at odd-degree vertices (none);
        // defects only on odd cycles of the Euler partition.
        assert!(disc.iter().all(|&d| d <= 6), "{disc:?}");
    }

    #[test]
    fn four_way_split_counts() {
        let g = generators::random_regular(64, 16, 5);
        let out = split_into_parts(&g, 2, 8).unwrap();
        assert_eq!(out.value.len(), g.m());
        // Per vertex, each of the 4 parts should contain roughly deg/4 = 4
        // edges; with our bound each 2-split deviates by at most ~3, so the
        // composed deviation stays below deg/4.
        let edges: Vec<_> = g.edges().collect();
        for v in g.vertices() {
            let mut counts = [0i64; 4];
            for (i, &(a, b)) in edges.iter().enumerate() {
                if a == v || b == v {
                    counts[out.value[i] as usize] += 1;
                }
            }
            for (p, &c) in counts.iter().enumerate() {
                assert!(
                    (c - 4).abs() <= 4,
                    "vertex {v} part {p} has {c} edges (expected ~4): {counts:?}"
                );
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(3, []).unwrap();
        let out = degree_split(&g, 8).unwrap();
        assert!(out.value.part.is_empty());
    }

    #[test]
    fn walks_cover_all_edges() {
        let g = generators::random_regular(60, 5, 2);
        let edges: Vec<_> = g.edges().collect();
        let walks = euler_walks(&g, &edges);
        let covered: usize = walks.iter().map(|w| w.edges.len()).sum();
        assert_eq!(covered, edges.len());
    }
}
