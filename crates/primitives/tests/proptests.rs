//! Property-based tests for the distributed primitives: every subroutine's
//! output invariant, over randomized graph families and seeds.

use graphgen::{generators, Color, Graph};
use primitives::{linial, list_coloring, matching, mis, ruling, split};
use proptest::prelude::*;

/// A pool of graph families parameterized by (family, size, seed).
fn graph_from(family: u8, size: usize, seed: u64) -> Graph {
    match family % 6 {
        0 => generators::cycle(size.max(3)),
        1 => generators::random_regular(size.max(8) / 2 * 2, 4, seed),
        2 => generators::gnp(size.max(4), 0.15, seed),
        3 => generators::random_tree(size.max(2), seed),
        4 => generators::hypercube(3 + (size % 3)),
        _ => generators::complete(4 + size % 6),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Δ+1-coloring is always proper and inside the palette.
    #[test]
    fn delta_plus_one_proper(family in 0u8..6, size in 8usize..60, seed in 0u64..100) {
        let g = graph_from(family, size, seed);
        prop_assume!(g.max_degree() >= 1);
        let out = linial::delta_plus_one_coloring(&g, None).unwrap();
        out.value.check_complete(&g, g.max_degree() as u32 + 1).unwrap();
    }

    /// (deg+1)-list coloring respects arbitrary (feasible) palettes.
    #[test]
    fn list_coloring_respects_palettes(
        family in 0u8..6, size in 8usize..40, seed in 0u64..100, shift in 0u32..50
    ) {
        let g = graph_from(family, size, seed);
        let palettes: Vec<Vec<Color>> = g
            .vertices()
            .map(|v| (0..=g.degree(v) as u32).map(|c| Color(c + shift)).collect())
            .collect();
        let out = list_coloring::deg_plus_one_list_color(&g, &palettes, None).unwrap();
        for v in g.vertices() {
            let c = out.value.get(v).unwrap();
            prop_assert!(palettes[v.index()].contains(&c));
            for &w in g.neighbors(v) {
                prop_assert_ne!(Some(c), out.value.get(w));
            }
        }
    }

    /// Both MIS algorithms produce maximal independent sets.
    #[test]
    fn mis_always_valid(family in 0u8..6, size in 8usize..60, seed in 0u64..100) {
        let g = graph_from(family, size, seed);
        let det = mis::mis_deterministic(&g, None).unwrap();
        prop_assert!(mis::is_mis(&g, &det.value));
        let rnd = mis::mis_luby(&g, seed).unwrap();
        prop_assert!(mis::is_mis(&g, &rnd.value));
    }

    /// Both matchings are maximal matchings.
    #[test]
    fn matchings_always_maximal(family in 0u8..6, size in 8usize..60, seed in 0u64..100) {
        let g = graph_from(family, size, seed);
        let det = matching::maximal_matching_det_direct(&g).unwrap();
        prop_assert!(det.value.is_maximal(&g));
        let rnd = matching::maximal_matching_rand(&g, seed).unwrap();
        prop_assert!(rnd.value.is_maximal(&g));
    }

    /// Ruling sets satisfy independence and domination for r in 1..=3.
    #[test]
    fn ruling_sets_valid(family in 0u8..6, size in 8usize..50, seed in 0u64..100, r in 1usize..4) {
        let g = graph_from(family, size, seed);
        prop_assume!(g.n() > 0);
        let out = ruling::ruling_set(&g, r, ruling::RulingStyle::Deterministic).unwrap();
        prop_assert!(ruling::is_ruling_set(&g, &out.value, r));
    }

    /// Degree splitting: every part is a subset partition of the edges and
    /// the per-vertex discrepancy stays below the even-segment guarantee.
    #[test]
    fn split_discrepancy_bounded(family in 0u8..6, size in 8usize..60, seed in 0u64..100) {
        let g = graph_from(family, size, seed);
        let out = split::degree_split(&g, 8).unwrap();
        prop_assert_eq!(out.value.part.len(), g.m());
        let disc = out.value.discrepancies(&g);
        for v in g.vertices() {
            // 1 for a possible walk endpoint + 2 per odd-cycle defect;
            // defects at one vertex are at most deg/2 walk passes.
            let bound = 1 + g.degree(v) as i64;
            prop_assert!(disc[v.index()] <= bound,
                "vertex {} discrepancy {} above {}", v, disc[v.index()], bound);
        }
    }

    /// 4-way splitting partitions the edge set exactly.
    #[test]
    fn four_way_split_partitions(family in 0u8..4, size in 8usize..40, seed in 0u64..50) {
        let g = graph_from(family, size, seed);
        let out = split::split_into_parts(&g, 2, 8).unwrap();
        prop_assert_eq!(out.value.len(), g.m());
        prop_assert!(out.value.iter().all(|&p| p < 4));
    }

    /// Linial's stage alone yields a proper coloring with a small palette.
    #[test]
    fn linial_stage_proper(family in 0u8..6, size in 8usize..60, seed in 0u64..100) {
        let g = graph_from(family, size, seed);
        prop_assume!(g.max_degree() >= 1);
        let out = linial::linial_coloring(&g, None).unwrap();
        let (colors, space) = out.value;
        for (u, v) in g.edges() {
            prop_assert_ne!(colors[u.index()], colors[v.index()]);
        }
        prop_assert!(colors.iter().all(|&c| c < space));
        // O(Δ²)-ish palette.
        let d = g.max_degree() as u64;
        prop_assert!(space <= (4 * d + 12).pow(2), "space {} for Δ {}", space, d);
    }
}
