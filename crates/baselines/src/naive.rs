//! Naive distributed baselines: Δ+1 coloring, global-stalling Δ-coloring,
//! and the stuck demonstration for one-round color trials.

use graphgen::{Color, Coloring, Graph, NodeId};
use localsim::{RoundLedger, SimError};
use primitives::Timed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The greedy-regime contrast: a `(Δ+1)`-coloring (always easy).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn delta_plus_one(g: &Graph) -> Result<Timed<Coloring>, SimError> {
    primitives::linial::delta_plus_one_coloring(g, None)
}

/// Why the global-stalling baseline failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StallError {
    /// No slack source exists (graph is `K_{Δ+1}`-like or an odd cycle).
    NoSlackSource,
    /// Subroutine failure.
    Subroutine(String),
}

impl std::fmt::Display for StallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StallError::NoSlackSource => write!(f, "no slack source found"),
            StallError::Subroutine(e) => write!(f, "subroutine failed: {e}"),
        }
    }
}

impl std::error::Error for StallError {}

/// The naive distributed Δ-coloring: elect a *single* slack source per
/// component (a low-degree vertex, or one same-colored non-adjacent pair),
/// BFS-layer the whole component around it, and color inward.
///
/// Correct on every Brooks-colorable graph, but takes `Θ(diameter)` rounds
/// (leader election + one `(deg+1)` instance per BFS layer) — the strawman
/// that motivates the paper's `O(log n)` machinery.
///
/// # Errors
///
/// Returns [`StallError::NoSlackSource`] on Brooks-excluded components and
/// wraps subroutine failures.
pub fn global_stalling(g: &Graph) -> Result<(Timed<Coloring>, RoundLedger), StallError> {
    let delta = g.max_degree() as u32;
    let mut coloring = Coloring::empty(g.n());
    let mut ledger = RoundLedger::new();
    for comp in g.components() {
        color_component_stalling(g, &comp, delta, &mut coloring, &mut ledger)?;
    }
    let rounds = ledger.total();
    Ok((Timed::new(coloring, rounds), ledger))
}

fn color_component_stalling(
    g: &Graph,
    comp: &[NodeId],
    delta: u32,
    coloring: &mut Coloring,
    ledger: &mut RoundLedger,
) -> Result<(), StallError> {
    // Slack source: a low-degree vertex, else a same-colorable non-adjacent
    // pair with a common neighbor (slack triad). Electing it costs a
    // diameter's worth of rounds (flood the candidate ids).
    let diameter_bound = {
        let dist = g.bfs_distances(&[comp[0]]);
        comp.iter().map(|v| dist[v.index()]).max().unwrap_or(0) as u64
    };
    ledger.charge("stalling/leader election (flood)", diameter_bound);

    let mut sources: Vec<NodeId> = Vec::new();
    if let Some(&low) = comp.iter().find(|&&v| g.degree(v) < delta as usize) {
        sources.push(low);
    } else {
        let mut found = None;
        'outer: for &u in comp {
            let nbrs = g.neighbors(u);
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    if !g.has_edge(a, b) {
                        found = Some((u, a, b));
                        break 'outer;
                    }
                }
            }
        }
        let Some((u, a, b)) = found else {
            return Err(StallError::NoSlackSource);
        };
        coloring.set(a, Color(0));
        coloring.set(b, Color(0));
        sources.push(u);
    }

    // Layer the whole component and color inward. The BFS must avoid the
    // pre-colored pair so that every layered vertex keeps an *uncolored*
    // parent toward the source (its slack) until its own turn.
    let dist = {
        let mut dist = vec![usize::MAX; g.n()];
        let mut q = std::collections::VecDeque::new();
        for &s in &sources {
            dist[s.index()] = 0;
            q.push_back(s);
        }
        while let Some(v) = q.pop_front() {
            for &w in g.neighbors(v) {
                if dist[w.index()] == usize::MAX && !coloring.is_colored(w) {
                    dist[w.index()] = dist[v.index()] + 1;
                    q.push_back(w);
                }
            }
        }
        dist
    };
    let max_layer = comp
        .iter()
        .filter(|v| !coloring.is_colored(**v))
        .map(|v| dist[v.index()])
        .max()
        .unwrap_or(0);
    for l in (0..=max_layer).rev() {
        let active: Vec<NodeId> = comp
            .iter()
            .copied()
            .filter(|&v| dist[v.index()] == l && !coloring.is_colored(v))
            .collect();
        if active.is_empty() {
            continue;
        }
        let palettes: Vec<Vec<Color>> = active
            .iter()
            .map(|&v| {
                let used: std::collections::HashSet<Color> = g
                    .neighbors(v)
                    .iter()
                    .filter_map(|&w| coloring.get(w))
                    .collect();
                (0..delta)
                    .map(Color)
                    .filter(|c| !used.contains(c))
                    .collect()
            })
            .collect();
        let timed =
            primitives::list_coloring::deg_plus_one_list_color_subset(g, &active, &palettes, None)
                .map_err(|e| StallError::Subroutine(e.to_string()))?;
        ledger.charge(format!("stalling/layer {l}"), timed.rounds);
        for (v, c) in timed.value {
            coloring.set(v, c);
        }
    }
    Ok(())
}

/// Outcome of running one-round random Δ-color trials to exhaustion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StuckReport {
    /// Trial rounds executed.
    pub rounds: u64,
    /// Vertices that ended up colored.
    pub colored: usize,
    /// Vertices left uncolored with an **empty** palette — the process is
    /// permanently stuck for them; no greedy completion exists.
    pub stuck: usize,
}

/// Runs the greedy process the paper's introduction warns about: color
/// vertices one by one in a random order, each taking a uniformly random
/// *free* color among the Δ available. On dense graphs some vertices are
/// reached with an **empty** palette — greedy cannot Δ-color, which is
/// exactly why the slack machinery exists. (`max_rounds` caps the number
/// of vertices processed and is reported as `rounds`.)
pub fn random_trial_stuck(g: &Graph, seed: u64, max_rounds: u64) -> StuckReport {
    let delta = g.max_degree() as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coloring = Coloring::empty(g.n());
    let mut order: Vec<NodeId> = g.vertices().collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut rounds = 0;
    let mut stuck = 0;
    for &v in order.iter().take(max_rounds as usize) {
        rounds += 1;
        let used: std::collections::HashSet<Color> = g
            .neighbors(v)
            .iter()
            .filter_map(|&w| coloring.get(w))
            .collect();
        let free: Vec<Color> = (0..delta)
            .map(Color)
            .filter(|c| !used.contains(c))
            .collect();
        if free.is_empty() {
            stuck += 1;
        } else {
            coloring.set(v, free[rng.gen_range(0..free.len())]);
        }
    }
    StuckReport {
        rounds,
        colored: coloring.colored_count(),
        stuck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::coloring::verify_delta_coloring;
    use graphgen::generators;

    #[test]
    fn delta_plus_one_easy() {
        let g = generators::random_regular(80, 6, 4);
        let out = delta_plus_one(&g).unwrap();
        out.value.check_complete(&g, 7).unwrap();
    }

    #[test]
    fn stalling_colors_hard_instance() {
        let inst = generators::hard_cliques(&generators::HardCliqueParams {
            cliques: 34,
            delta: 16,
            external_per_vertex: 1,
            seed: 51,
        })
        .unwrap();
        let (timed, _ledger) = global_stalling(&inst.graph).unwrap();
        verify_delta_coloring(&inst.graph, &timed.value).unwrap();
    }

    #[test]
    fn stalling_rounds_grow_with_size() {
        let small = generators::hard_cliques(&generators::HardCliqueParams {
            cliques: 34,
            delta: 16,
            external_per_vertex: 1,
            seed: 52,
        })
        .unwrap();
        let large = generators::hard_cliques(&generators::HardCliqueParams {
            cliques: 136,
            delta: 16,
            external_per_vertex: 1,
            seed: 52,
        })
        .unwrap();
        let (ts, _) = global_stalling(&small.graph).unwrap();
        let (tl, _) = global_stalling(&large.graph).unwrap();
        assert!(
            tl.rounds > ts.rounds,
            "stalling should scale with size: {} vs {}",
            ts.rounds,
            tl.rounds
        );
    }

    #[test]
    fn stalling_rejects_k5() {
        let g = generators::complete(5);
        assert_eq!(global_stalling(&g).unwrap_err(), StallError::NoSlackSource);
    }

    #[test]
    fn stalling_handles_low_degree() {
        let g = generators::random_tree(50, 9);
        let (timed, _) = global_stalling(&g).unwrap();
        verify_delta_coloring(&g, &timed.value).unwrap();
    }

    #[test]
    fn trials_get_stuck_on_cliques() {
        // Disjoint Δ-cliques where each vertex has one external edge:
        // random Δ-trials usually jam somewhere.
        let inst = generators::hard_cliques(&generators::HardCliqueParams {
            cliques: 200,
            delta: 16,
            external_per_vertex: 1,
            seed: 53,
        })
        .unwrap();
        // Each clique jams with probability ~1/(2Δ); over 200 cliques and
        // a few seeds, some jam essentially surely.
        let stuck: usize = (0..4)
            .map(|s| random_trial_stuck(&inst.graph, s, u64::MAX).stuck)
            .sum();
        assert!(
            stuck > 0,
            "expected stuck vertices over 4 seeds (greedy would mean Δ-coloring is easy)"
        );
    }

    #[test]
    fn trials_finish_on_easy_graphs() {
        // A tree has max degree Δ and plenty of slack: trials finish.
        let g = generators::star(5);
        let report = random_trial_stuck(&g, 1, u64::MAX);
        assert_eq!(report.stuck, 0, "{report:?}");
        assert_eq!(report.colored, 6);
    }
}
