//! Baseline coloring algorithms the paper's pipeline is compared against
//! (experiment E6).
//!
//! * [`brooks_sequential`] — a centralized constructive proof of Brooks'
//!   theorem: the existence oracle. Its "round" cost is `n` (fully
//!   sequential).
//! * [`delta_plus_one`] — the distributed *greedy-regime* problem: one more
//!   color makes everything easy (`O(Δ log Δ + log* n)` rounds). The gap
//!   between this and Δ-coloring is the paper's motivation (§1).
//! * [`global_stalling`] — the naive distributed Δ-coloring: elect a single
//!   global slack source, layer the *entire* graph around it by BFS, and
//!   color inward. Correct, but `Θ(diameter)` rounds — the strawman the
//!   slack-triad machinery beats.
//! * [`random_trial_stuck`] — the one-round random color trial algorithm
//!   run to exhaustion with only Δ colors: demonstrates that Δ-coloring is
//!   not greedy-like (vertices end up with empty palettes and the process
//!   jams).

pub mod brooks;
pub mod naive;

pub use brooks::{brooks_component, brooks_sequential, BrooksError};
pub use naive::{delta_plus_one, global_stalling, random_trial_stuck, StuckReport};
