//! A centralized constructive proof of Brooks' theorem, used as the
//! existence oracle: any connected graph with maximum degree Δ that is not
//! `K_{Δ+1}` and not an odd cycle is Δ-colorable.

use graphgen::{Color, Coloring, Graph, NodeId};

/// Why a sequential Brooks run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrooksError {
    /// A component is a complete graph on `Δ + 1` vertices.
    CompleteComponent,
    /// A component is an odd cycle (for Δ = 2).
    OddCycleComponent,
    /// Δ < 1: there is nothing to color with.
    NoColors,
}

impl std::fmt::Display for BrooksError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrooksError::CompleteComponent => write!(f, "a component is K_{{Δ+1}}"),
            BrooksError::OddCycleComponent => write!(f, "a component is an odd cycle"),
            BrooksError::NoColors => write!(f, "graph has no edges to define Δ"),
        }
    }
}

impl std::error::Error for BrooksError {}

/// Colors `g` with `Δ` colors sequentially (Brooks' theorem).
///
/// # Errors
///
/// Returns an error when Brooks' theorem excludes a Δ-coloring.
pub fn brooks_sequential(g: &Graph) -> Result<Coloring, BrooksError> {
    let delta = g.max_degree();
    if delta == 0 {
        return Err(BrooksError::NoColors);
    }
    let mut coloring = Coloring::empty(g.n());
    for comp in g.components() {
        color_component(g, &comp, delta, &mut coloring)?;
    }
    Ok(coloring)
}

fn color_component(
    g: &Graph,
    comp: &[NodeId],
    delta: usize,
    coloring: &mut Coloring,
) -> Result<(), BrooksError> {
    // Case 0: a vertex of degree < Δ exists: greedy in reverse BFS order
    // from it (every earlier vertex keeps an uncolored neighbor towards
    // the root; the root itself has degree < Δ).
    if let Some(&root) = comp.iter().find(|&&v| g.degree(v) < delta) {
        return greedy_toward(g, comp, root, &[], delta, coloring);
    }
    // Δ-regular component.
    if comp.len() == delta + 1 {
        // Complete? (Δ-regular on Δ+1 vertices is exactly K_{Δ+1}.)
        return Err(BrooksError::CompleteComponent);
    }
    if delta == 2 {
        // Cycle: even is 2-colorable, odd is not.
        if comp.len() % 2 == 1 {
            return Err(BrooksError::OddCycleComponent);
        }
        return greedy_cycle(g, comp, coloring);
    }
    // Find u with two non-adjacent neighbors a, b such that removing
    // {a, b} keeps the component connected; same-color a and b, then
    // greedy toward u.
    for &u in comp {
        let nbrs = g.neighbors(u);
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if g.has_edge(a, b) {
                    continue;
                }
                if !connected_without(g, comp, u, a, b) {
                    continue;
                }
                coloring.set(a, Color(0));
                coloring.set(b, Color(0));
                return greedy_toward(g, comp, u, &[a, b], delta, coloring);
            }
        }
    }
    // Brooks' proof guarantees such a triple exists in any 2-connected,
    // non-complete, non-cycle Δ-regular graph; for graphs with cut
    // vertices a cut vertex has degree < Δ in some block — handled by a
    // block-wise fallback: color greedily from an articulation-ish order.
    // (Unreachable on the inputs this workspace generates.)
    unreachable!("Brooks triple must exist in a Δ-regular non-complete component");
}

/// Greedy coloring of `comp \ pre` in decreasing-BFS-distance order from
/// `root`, ending with `root`.
fn greedy_toward(
    g: &Graph,
    comp: &[NodeId],
    root: NodeId,
    pre: &[NodeId],
    delta: usize,
    coloring: &mut Coloring,
) -> Result<(), BrooksError> {
    // BFS distances in G − pre: every non-root vertex keeps its (uncolored)
    // BFS parent until its own turn, so at most deg − 1 neighbors are
    // colored when it is; pre-colored vertices are excluded from the walk.
    let mut dist = vec![usize::MAX; g.n()];
    dist[root.index()] = 0;
    let mut q = std::collections::VecDeque::from([root]);
    while let Some(v) = q.pop_front() {
        for &w in g.neighbors(v) {
            if dist[w.index()] == usize::MAX && !pre.contains(&w) {
                dist[w.index()] = dist[v.index()] + 1;
                q.push_back(w);
            }
        }
    }
    let mut order: Vec<NodeId> = comp
        .iter()
        .copied()
        .filter(|v| !pre.contains(v) && dist[v.index()] != usize::MAX)
        .collect();
    order.sort_by_key(|v| std::cmp::Reverse(dist[v.index()]));
    for v in order {
        let c = coloring
            .first_free_color(g, v, delta as u32)
            .expect("Brooks ordering always leaves a free color");
        coloring.set(v, c);
    }
    Ok(())
}

fn greedy_cycle(g: &Graph, comp: &[NodeId], coloring: &mut Coloring) -> Result<(), BrooksError> {
    // Walk the even cycle, alternating colors.
    let start = comp[0];
    let mut prev = start;
    let mut cur = g.neighbors(start)[0];
    coloring.set(start, Color(0));
    let mut flip = true;
    while cur != start {
        coloring.set(cur, Color(if flip { 1 } else { 0 }));
        flip = !flip;
        let next = g
            .neighbors(cur)
            .iter()
            .copied()
            .find(|&w| w != prev)
            .expect("cycle vertices have two neighbors");
        prev = cur;
        cur = next;
    }
    Ok(())
}

/// Is `comp \ {a, b}` still connected (and containing `u`)?
fn connected_without(g: &Graph, comp: &[NodeId], u: NodeId, a: NodeId, b: NodeId) -> bool {
    let mut blocked = std::collections::HashSet::new();
    blocked.insert(a);
    blocked.insert(b);
    let mut seen = std::collections::HashSet::new();
    seen.insert(u);
    let mut stack = vec![u];
    while let Some(v) = stack.pop() {
        for &w in g.neighbors(v) {
            if !blocked.contains(&w) && seen.insert(w) {
                stack.push(w);
            }
        }
    }
    comp.iter().all(|v| blocked.contains(v) || seen.contains(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::coloring::verify_delta_coloring;
    use graphgen::generators;

    #[test]
    fn colors_low_degree_graphs() {
        for g in [
            generators::path(10),
            generators::random_tree(40, 1),
            generators::star(6),
        ] {
            let c = brooks_sequential(&g).unwrap();
            verify_delta_coloring(&g, &c).unwrap();
        }
    }

    #[test]
    fn colors_regular_non_complete() {
        for g in [
            generators::hypercube(4),
            generators::cycle(8),
            generators::random_regular(60, 5, 2),
            generators::complete_bipartite(5, 5),
        ] {
            let c = brooks_sequential(&g).unwrap();
            verify_delta_coloring(&g, &c).unwrap();
        }
    }

    #[test]
    fn colors_hard_dense_instance() {
        let inst = generators::hard_cliques(&generators::HardCliqueParams {
            cliques: 34,
            delta: 16,
            external_per_vertex: 1,
            seed: 50,
        })
        .unwrap();
        let c = brooks_sequential(&inst.graph).unwrap();
        verify_delta_coloring(&inst.graph, &c).unwrap();
    }

    #[test]
    fn rejects_complete_and_odd_cycle() {
        assert_eq!(
            brooks_sequential(&generators::complete(5)),
            Err(BrooksError::CompleteComponent)
        );
        assert_eq!(
            brooks_sequential(&generators::cycle(7)),
            Err(BrooksError::OddCycleComponent)
        );
    }

    #[test]
    fn even_cycle_two_colored() {
        let g = generators::cycle(10);
        let c = brooks_sequential(&g).unwrap();
        verify_delta_coloring(&g, &c).unwrap();
        assert!(c.max_color().unwrap().0 <= 1);
    }
}
