//! A centralized constructive proof of Brooks' theorem, used as the
//! existence oracle: any connected graph with maximum degree Δ that is not
//! `K_{Δ+1}` and not an odd cycle is Δ-colorable.

use graphgen::{Color, Coloring, Graph, NodeId};

/// Why a sequential Brooks run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrooksError {
    /// A component is a complete graph on `Δ + 1` vertices.
    CompleteComponent,
    /// A component is an odd cycle (for Δ = 2).
    OddCycleComponent,
    /// Δ < 1: there is nothing to color with.
    NoColors,
    /// A scoped re-solve ([`brooks_component`]) found neither a slack root
    /// nor a usable Brooks triple — the scope plus its colored boundary is
    /// as constrained as a `K_{Δ+1}`.
    ScopedStuck(String),
}

impl std::fmt::Display for BrooksError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrooksError::CompleteComponent => write!(f, "a component is K_{{Δ+1}}"),
            BrooksError::OddCycleComponent => write!(f, "a component is an odd cycle"),
            BrooksError::NoColors => write!(f, "graph has no edges to define Δ"),
            BrooksError::ScopedStuck(msg) => write!(f, "scoped Brooks re-solve stuck: {msg}"),
        }
    }
}

impl std::error::Error for BrooksError {}

/// Colors `g` with `Δ` colors sequentially (Brooks' theorem).
///
/// # Errors
///
/// Returns an error when Brooks' theorem excludes a Δ-coloring.
pub fn brooks_sequential(g: &Graph) -> Result<Coloring, BrooksError> {
    let delta = g.max_degree();
    if delta == 0 {
        return Err(BrooksError::NoColors);
    }
    let mut coloring = Coloring::empty(g.n());
    for comp in g.components() {
        color_component(g, &comp, delta, &mut coloring)?;
    }
    Ok(coloring)
}

fn color_component(
    g: &Graph,
    comp: &[NodeId],
    delta: usize,
    coloring: &mut Coloring,
) -> Result<(), BrooksError> {
    // Case 0: a vertex of degree < Δ exists: greedy in reverse BFS order
    // from it (every earlier vertex keeps an uncolored neighbor towards
    // the root; the root itself has degree < Δ).
    if let Some(&root) = comp.iter().find(|&&v| g.degree(v) < delta) {
        return greedy_toward(g, comp, root, &[], delta, coloring);
    }
    // Δ-regular component.
    if comp.len() == delta + 1 {
        // Complete? (Δ-regular on Δ+1 vertices is exactly K_{Δ+1}.)
        return Err(BrooksError::CompleteComponent);
    }
    if delta == 2 {
        // Cycle: even is 2-colorable, odd is not.
        if comp.len() % 2 == 1 {
            return Err(BrooksError::OddCycleComponent);
        }
        return greedy_cycle(g, comp, coloring);
    }
    // Find u with two non-adjacent neighbors a, b such that removing
    // {a, b} keeps the component connected; same-color a and b, then
    // greedy toward u.
    for &u in comp {
        let nbrs = g.neighbors(u);
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if g.has_edge(a, b) {
                    continue;
                }
                if !connected_without(g, comp, u, a, b) {
                    continue;
                }
                coloring.set(a, Color(0));
                coloring.set(b, Color(0));
                return greedy_toward(g, comp, u, &[a, b], delta, coloring);
            }
        }
    }
    // Brooks' proof guarantees such a triple exists in any 2-connected,
    // non-complete, non-cycle Δ-regular graph; for graphs with cut
    // vertices a cut vertex has degree < Δ in some block — handled by a
    // block-wise fallback: color greedily from an articulation-ish order.
    // (Unreachable on the inputs this workspace generates.)
    unreachable!("Brooks triple must exist in a Δ-regular non-complete component");
}

/// Greedy coloring of `comp \ pre` in decreasing-BFS-distance order from
/// `root`, ending with `root`.
fn greedy_toward(
    g: &Graph,
    comp: &[NodeId],
    root: NodeId,
    pre: &[NodeId],
    delta: usize,
    coloring: &mut Coloring,
) -> Result<(), BrooksError> {
    // BFS distances in G − pre: every non-root vertex keeps its (uncolored)
    // BFS parent until its own turn, so at most deg − 1 neighbors are
    // colored when it is; pre-colored vertices are excluded from the walk.
    let mut dist = vec![usize::MAX; g.n()];
    dist[root.index()] = 0;
    let mut q = std::collections::VecDeque::from([root]);
    while let Some(v) = q.pop_front() {
        for &w in g.neighbors(v) {
            if dist[w.index()] == usize::MAX && !pre.contains(&w) {
                dist[w.index()] = dist[v.index()] + 1;
                q.push_back(w);
            }
        }
    }
    let mut order: Vec<NodeId> = comp
        .iter()
        .copied()
        .filter(|v| !pre.contains(v) && dist[v.index()] != usize::MAX)
        .collect();
    order.sort_by_key(|v| std::cmp::Reverse(dist[v.index()]));
    for v in order {
        let c = coloring
            .first_free_color(g, v, delta as u32)
            .expect("Brooks ordering always leaves a free color");
        coloring.set(v, c);
    }
    Ok(())
}

fn greedy_cycle(g: &Graph, comp: &[NodeId], coloring: &mut Coloring) -> Result<(), BrooksError> {
    // Walk the even cycle, alternating colors.
    let start = comp[0];
    let mut prev = start;
    let mut cur = g.neighbors(start)[0];
    coloring.set(start, Color(0));
    let mut flip = true;
    while cur != start {
        coloring.set(cur, Color(if flip { 1 } else { 0 }));
        flip = !flip;
        let next = g
            .neighbors(cur)
            .iter()
            .copied()
            .find(|&w| w != prev)
            .expect("cycle vertices have two neighbors");
        prev = cur;
        cur = next;
    }
    Ok(())
}

/// Colors the (connected, currently uncolored) vertex set `comp` with
/// colors `0..palette`, honoring whatever colors the rest of the graph
/// already holds. This is the supervisor's degradation path: when the
/// optimized pipeline fails on a leftover component — panic, budget
/// overrun, invariant error — the component is re-solved here, Brooks
/// style, against its frozen colored boundary.
///
/// Strategy (the constructive Brooks proof, scoped):
///
/// 1. Find a *slack root*: a vertex that is guaranteed a free color even
///    when colored last — degree below the palette, an uncolored neighbor
///    outside `comp`, or two pre-colored neighbors sharing a color. Greedy
///    in reverse-BFS order toward it (every other vertex keeps its BFS
///    parent uncolored until its own turn, so at most `deg − 1 < palette`
///    constraints apply).
/// 2. Otherwise find a Brooks triple inside `comp`: a vertex `u` with two
///    non-adjacent `comp`-neighbors `a`, `b` that share a free color and
///    whose removal keeps `comp` connected; same-color `a` and `b`, then
///    greedy toward `u` (the repeated color grants `u` slack).
///
/// On any failure every color this call set is rolled back, so the caller
/// observes all-or-nothing behavior.
///
/// # Errors
///
/// [`BrooksError::NoColors`] for an empty palette and
/// [`BrooksError::ScopedStuck`] when neither a slack root nor a usable
/// triple exists (only possible when the boundary is adversarially
/// colored; never on the pipelines' leftover components, whose boundary
/// always holds uncolored deferred vertices).
pub fn brooks_component(
    g: &Graph,
    comp: &[NodeId],
    palette: u32,
    coloring: &mut Coloring,
) -> Result<(), BrooksError> {
    if palette == 0 {
        return Err(BrooksError::NoColors);
    }
    let mut in_comp = std::collections::HashSet::new();
    for &v in comp {
        in_comp.insert(v);
    }
    let slack = |v: NodeId| {
        if g.degree(v) < palette as usize {
            return true;
        }
        let mut seen = std::collections::HashSet::new();
        let mut uncolored_external = false;
        let mut repeat = false;
        for &w in g.neighbors(v) {
            match coloring.get(w) {
                Some(c) if !seen.insert(c) => repeat = true,
                None if !in_comp.contains(&w) => uncolored_external = true,
                _ => {}
            }
        }
        uncolored_external || repeat
    };
    if let Some(&root) = comp.iter().find(|&&v| slack(v)) {
        return greedy_component(g, comp, root, &[], palette, coloring);
    }
    // No slack anywhere: every comp vertex has palette-many distinctly
    // constrained neighbors. Find a Brooks triple u/a/b inside comp.
    for &u in comp {
        let nbrs: Vec<NodeId> = g
            .neighbors(u)
            .iter()
            .copied()
            .filter(|w| in_comp.contains(w))
            .collect();
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if g.has_edge(a, b) || !component_connected_without(g, comp, u, a, b) {
                    continue;
                }
                // A common color free at both a and b (their colored
                // neighbors are all outside comp at this point).
                let Some(c) = (0..palette).map(Color).find(|&c| {
                    [a, b]
                        .iter()
                        .all(|&x| g.neighbors(x).iter().all(|&y| coloring.get(y) != Some(c)))
                }) else {
                    continue;
                };
                coloring.set(a, c);
                coloring.set(b, c);
                let result = greedy_component(g, comp, u, &[a, b], palette, coloring);
                if result.is_err() {
                    coloring.unset(a);
                    coloring.unset(b);
                }
                return result;
            }
        }
    }
    Err(BrooksError::ScopedStuck(format!(
        "{}-vertex component has no slack root and no usable triple",
        comp.len()
    )))
}

/// Greedy coloring of `comp \ pre` in reverse-BFS order toward `root`,
/// walking only edges inside `comp`. Rolls back its own writes on failure.
fn greedy_component(
    g: &Graph,
    comp: &[NodeId],
    root: NodeId,
    pre: &[NodeId],
    palette: u32,
    coloring: &mut Coloring,
) -> Result<(), BrooksError> {
    let mut dist = vec![usize::MAX; g.n()];
    let mut in_comp = vec![false; g.n()];
    for &v in comp {
        in_comp[v.index()] = true;
    }
    dist[root.index()] = 0;
    let mut q = std::collections::VecDeque::from([root]);
    while let Some(v) = q.pop_front() {
        for &w in g.neighbors(v) {
            if in_comp[w.index()] && dist[w.index()] == usize::MAX && !pre.contains(&w) {
                dist[w.index()] = dist[v.index()] + 1;
                q.push_back(w);
            }
        }
    }
    let mut order: Vec<NodeId> = comp
        .iter()
        .copied()
        .filter(|v| !pre.contains(v) && dist[v.index()] != usize::MAX)
        .collect();
    if order.len() + pre.len() < comp.len() {
        return Err(BrooksError::ScopedStuck(format!(
            "scope is not connected: {} of {} vertices unreachable from the root",
            comp.len() - order.len() - pre.len(),
            comp.len()
        )));
    }
    order.sort_by_key(|v| std::cmp::Reverse(dist[v.index()]));
    let mut assigned: Vec<NodeId> = Vec::with_capacity(order.len());
    for v in order {
        match coloring.first_free_color(g, v, palette) {
            Some(c) => {
                coloring.set(v, c);
                assigned.push(v);
            }
            None => {
                for &w in &assigned {
                    coloring.unset(w);
                }
                return Err(BrooksError::ScopedStuck(format!(
                    "vertex {v} ran out of colors during the scoped greedy"
                )));
            }
        }
    }
    Ok(())
}

/// Is `comp \ {a, b}` still connected (within `comp`, containing `u`)?
fn component_connected_without(
    g: &Graph,
    comp: &[NodeId],
    u: NodeId,
    a: NodeId,
    b: NodeId,
) -> bool {
    let in_comp: std::collections::HashSet<NodeId> = comp.iter().copied().collect();
    let mut seen = std::collections::HashSet::new();
    seen.insert(u);
    let mut stack = vec![u];
    while let Some(v) = stack.pop() {
        for &w in g.neighbors(v) {
            if w != a && w != b && in_comp.contains(&w) && seen.insert(w) {
                stack.push(w);
            }
        }
    }
    comp.iter().all(|&v| v == a || v == b || seen.contains(&v))
}

/// Is `comp \ {a, b}` still connected (and containing `u`)?
fn connected_without(g: &Graph, comp: &[NodeId], u: NodeId, a: NodeId, b: NodeId) -> bool {
    let mut blocked = std::collections::HashSet::new();
    blocked.insert(a);
    blocked.insert(b);
    let mut seen = std::collections::HashSet::new();
    seen.insert(u);
    let mut stack = vec![u];
    while let Some(v) = stack.pop() {
        for &w in g.neighbors(v) {
            if !blocked.contains(&w) && seen.insert(w) {
                stack.push(w);
            }
        }
    }
    comp.iter().all(|v| blocked.contains(v) || seen.contains(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::coloring::verify_delta_coloring;
    use graphgen::generators;

    #[test]
    fn colors_low_degree_graphs() {
        for g in [
            generators::path(10),
            generators::random_tree(40, 1),
            generators::star(6),
        ] {
            let c = brooks_sequential(&g).unwrap();
            verify_delta_coloring(&g, &c).unwrap();
        }
    }

    #[test]
    fn colors_regular_non_complete() {
        for g in [
            generators::hypercube(4),
            generators::cycle(8),
            generators::random_regular(60, 5, 2),
            generators::complete_bipartite(5, 5),
        ] {
            let c = brooks_sequential(&g).unwrap();
            verify_delta_coloring(&g, &c).unwrap();
        }
    }

    #[test]
    fn colors_hard_dense_instance() {
        let inst = generators::hard_cliques(&generators::HardCliqueParams {
            cliques: 34,
            delta: 16,
            external_per_vertex: 1,
            seed: 50,
        })
        .unwrap();
        let c = brooks_sequential(&inst.graph).unwrap();
        verify_delta_coloring(&inst.graph, &c).unwrap();
    }

    #[test]
    fn rejects_complete_and_odd_cycle() {
        assert_eq!(
            brooks_sequential(&generators::complete(5)),
            Err(BrooksError::CompleteComponent)
        );
        assert_eq!(
            brooks_sequential(&generators::cycle(7)),
            Err(BrooksError::OddCycleComponent)
        );
    }

    #[test]
    fn scoped_solve_respects_colored_boundary() {
        // Color a hard instance fully, erase one clique's worth of
        // vertices, and ask the scoped solver to re-fill the hole against
        // the frozen remainder.
        let inst = generators::hard_cliques(&generators::HardCliqueParams {
            cliques: 34,
            delta: 16,
            external_per_vertex: 1,
            seed: 51,
        })
        .unwrap();
        let g = &inst.graph;
        let mut coloring = brooks_sequential(g).unwrap();
        // The hole is a closed neighborhood — connected by construction.
        let mut hole: Vec<NodeId> = vec![NodeId(0)];
        hole.extend(g.neighbors(NodeId(0)));
        hole.sort_unstable();
        for &v in &hole {
            coloring.unset(v);
        }
        brooks_component(g, &hole, g.max_degree() as u32, &mut coloring).unwrap();
        verify_delta_coloring(g, &coloring).unwrap();
    }

    #[test]
    fn scoped_solve_uses_triple_on_regular_scope() {
        // A whole Δ-regular non-complete graph as the scope, empty
        // boundary: forces the Brooks-triple path.
        let g = generators::random_regular(60, 5, 2);
        let mut coloring = Coloring::empty(g.n());
        let comp: Vec<NodeId> = g.vertices().collect();
        brooks_component(&g, &comp, 5, &mut coloring).unwrap();
        verify_delta_coloring(&g, &coloring).unwrap();
    }

    #[test]
    fn scoped_solve_rolls_back_on_failure() {
        // K5 with palette 4 is stuck; nothing may remain colored.
        let g = generators::complete(5);
        let comp: Vec<NodeId> = g.vertices().collect();
        let mut coloring = Coloring::empty(g.n());
        let err = brooks_component(&g, &comp, 4, &mut coloring).unwrap_err();
        assert!(matches!(err, BrooksError::ScopedStuck(_)));
        assert!(g.vertices().all(|v| !coloring.is_colored(v)));
    }

    #[test]
    fn even_cycle_two_colored() {
        let g = generators::cycle(10);
        let c = brooks_sequential(&g).unwrap();
        verify_delta_coloring(&g, &c).unwrap();
        assert!(c.max_color().unwrap().0 <= 1);
    }
}
