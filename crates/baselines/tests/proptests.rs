//! Property tests for the baselines: the Brooks oracle and the stalling
//! baseline color everything Brooks permits.

use baselines::{brooks_sequential, global_stalling, random_trial_stuck};
use graphgen::coloring::verify_delta_coloring;
use graphgen::generators;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Brooks oracle colors random regular graphs (never K_{Δ+1}, never an
    /// odd cycle for d >= 3).
    #[test]
    fn brooks_on_regular(n_half in 8usize..50, d in 3usize..8, seed in 0u64..100) {
        let n = 2 * n_half;
        prop_assume!(n > d + 1);
        let g = generators::random_regular(n, d, seed);
        let c = brooks_sequential(&g).unwrap();
        verify_delta_coloring(&g, &c).unwrap();
    }

    /// Brooks oracle on trees.
    #[test]
    fn brooks_on_trees(n in 5usize..80, seed in 0u64..100) {
        let g = generators::random_tree(n, seed);
        if g.max_degree() >= 1 {
            let c = brooks_sequential(&g).unwrap();
            verify_delta_coloring(&g, &c).unwrap();
        }
    }

    /// Global stalling colors dense hard instances for any seed.
    #[test]
    fn stalling_on_dense(seed in 0u64..300) {
        let inst = generators::hard_cliques(&generators::HardCliqueParams {
            cliques: 34,
            delta: 16,
            external_per_vertex: 1,
            seed,
        }).unwrap();
        let (timed, _) = global_stalling(&inst.graph).unwrap();
        verify_delta_coloring(&inst.graph, &timed.value).unwrap();
    }

    /// The greedy demonstration accounts for every vertex: colored or
    /// jammed, nothing in between.
    #[test]
    fn greedy_partial_accounts_all(seed in 0u64..100) {
        let inst = generators::hard_cliques(&generators::HardCliqueParams {
            cliques: 34,
            delta: 16,
            external_per_vertex: 1,
            seed,
        }).unwrap();
        let report = random_trial_stuck(&inst.graph, seed, u64::MAX);
        prop_assert_eq!(report.colored + report.stuck, inst.graph.n());
    }
}
