//! Plain-text graph and coloring I/O.
//!
//! The edge-list format is one `u v` pair per line (whitespace separated,
//! 0-based vertex ids); blank lines and `#` comments are ignored. The
//! vertex count is `max id + 1` unless a `n <count>` header line raises it.
//!
//! ```text
//! # a triangle plus an isolated vertex
//! n 4
//! 0 1
//! 1 2
//! 2 0
//! ```

use std::fmt::Write as _;
use std::path::Path;

use crate::{Coloring, Graph, GraphError};

/// Errors from parsing graph text.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number.
    Parse { line: usize, content: String },
    /// The edges do not form a valid simple graph.
    Graph(GraphError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "cannot parse line {line}: {content:?}")
            }
            IoError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

/// Parses the edge-list format from a string.
///
/// # Errors
///
/// Returns a parse error with the offending line, or a graph-validity
/// error (self loop, duplicate edge).
pub fn parse_edge_list(text: &str) -> Result<Graph, IoError> {
    let mut n = 0usize;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (a, b) = (parts.next(), parts.next());
        match (a, b, parts.next()) {
            (Some("n"), Some(count), None) => {
                let c: usize = count.parse().map_err(|_| IoError::Parse {
                    line: i + 1,
                    content: raw.to_string(),
                })?;
                n = n.max(c);
            }
            (Some(a), Some(b), None) => {
                let (u, v): (u32, u32) = match (a.parse(), b.parse()) {
                    (Ok(u), Ok(v)) => (u, v),
                    _ => {
                        return Err(IoError::Parse {
                            line: i + 1,
                            content: raw.to_string(),
                        })
                    }
                };
                n = n.max(u.max(v) as usize + 1);
                edges.push((u, v));
            }
            _ => {
                return Err(IoError::Parse {
                    line: i + 1,
                    content: raw.to_string(),
                })
            }
        }
    }
    Ok(Graph::from_edges(n, edges)?)
}

/// Reads a graph from an edge-list file.
///
/// # Errors
///
/// As [`parse_edge_list`], plus I/O failures.
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    parse_edge_list(&std::fs::read_to_string(path)?)
}

/// Serializes a graph to the edge-list format.
pub fn write_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "n {}", g.n());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{} {}", u.0, v.0);
    }
    out
}

/// Serializes a complete coloring as one `vertex color` pair per line.
pub fn write_coloring(coloring: &Coloring) -> String {
    let mut out = String::new();
    for i in 0..coloring.len() {
        match coloring.get(crate::NodeId::from(i)) {
            Some(c) => {
                let _ = writeln!(out, "{i} {}", c.0);
            }
            None => {
                let _ = writeln!(out, "{i} -");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Color, NodeId};

    #[test]
    fn parses_with_comments_and_header() {
        let g = parse_edge_list("# triangle\nn 4\n0 1\n1 2 # closing\n2 0\n").unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(NodeId(3)), 0);
    }

    #[test]
    fn roundtrips() {
        let g = crate::generators::hypercube(3);
        let text = write_edge_list(&g);
        let h = parse_edge_list(&text).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(
            parse_edge_list("0 x"),
            Err(IoError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_edge_list("1 2 3"),
            Err(IoError::Parse { .. })
        ));
        assert!(matches!(parse_edge_list("0 0"), Err(IoError::Graph(_))));
    }

    #[test]
    fn coloring_output_format() {
        let mut c = Coloring::empty(3);
        c.set(NodeId(0), Color(5));
        c.set(NodeId(2), Color(1));
        assert_eq!(write_coloring(&c), "0 5\n1 -\n2 1\n");
    }
}
