//! Plain-text graph and coloring I/O.
//!
//! The edge-list format is one `u v` pair per line (whitespace separated,
//! 0-based vertex ids); blank lines and `#` comments are ignored. The
//! vertex count is `max id + 1` unless a `n <count>` header line raises it.
//!
//! ```text
//! # a triangle plus an isolated vertex
//! n 4
//! 0 1
//! 1 2
//! 2 0
//! ```

use std::fmt::Write as _;
use std::path::Path;

use crate::{Coloring, Graph, GraphError, NodeId};

/// Errors from parsing graph text.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number.
    Parse { line: usize, content: String },
    /// The edges do not form a valid simple graph.
    Graph(GraphError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "cannot parse line {line}: {content:?}")
            }
            IoError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

/// Parses the edge-list format from a string.
///
/// # Errors
///
/// Returns a parse error with the offending line, or a graph-validity
/// error (self loop, duplicate edge).
pub fn parse_edge_list(text: &str) -> Result<Graph, IoError> {
    let mut n = 0usize;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (a, b) = (parts.next(), parts.next());
        match (a, b, parts.next()) {
            (Some("n"), Some(count), None) => {
                let c: usize = count.parse().map_err(|_| IoError::Parse {
                    line: i + 1,
                    content: raw.to_string(),
                })?;
                n = n.max(c);
            }
            (Some(a), Some(b), None) => {
                let (u, v): (u32, u32) = match (a.parse(), b.parse()) {
                    (Ok(u), Ok(v)) => (u, v),
                    _ => {
                        return Err(IoError::Parse {
                            line: i + 1,
                            content: raw.to_string(),
                        })
                    }
                };
                n = n.max(u.max(v) as usize + 1);
                edges.push((u, v));
            }
            _ => {
                return Err(IoError::Parse {
                    line: i + 1,
                    content: raw.to_string(),
                })
            }
        }
    }
    Ok(Graph::from_edges(n, edges)?)
}

/// Reads a graph from an edge-list file.
///
/// # Errors
///
/// As [`parse_edge_list`], plus I/O failures.
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    parse_edge_list(&std::fs::read_to_string(path)?)
}

/// Serializes a graph to the edge-list format.
pub fn write_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "n {}", g.n());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{} {}", u.0, v.0);
    }
    out
}

// --- Binary CSR codec -----------------------------------------------------
//
// A compact varint/interval encoding of the whole graph, used by the
// sharded runtime's `Init` frame (and anything else that wants a graph
// on a wire without paying for decimal text):
//
// ```text
// graph  := varint n, vertex^n
// vertex := varint runcount, run^runcount     (forward neighbors w > v)
// run    := varint gap, varint len            (gap >= 1, len >= 1)
// ```
//
// Each vertex stores only its *forward* adjacency (neighbors with a
// larger id) as maximal runs of consecutive ids: the first run starts at
// `v + gap`, each later run at `previous run end + gap`. Dense
// neighborhoods collapse to almost nothing (a clique is one run per
// vertex, ~4 bytes), and sparse ones pay a couple of bytes per edge —
// versus ~2 x digits + separators per edge for the text format.

/// Appends `v` as a LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint starting at `*pos`, advancing it.
fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, IoError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or_else(binary_truncated)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(binary_malformed("varint overflows u64"));
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(binary_malformed("varint longer than 10 bytes"));
        }
    }
}

fn binary_truncated() -> IoError {
    binary_malformed("truncated payload")
}

fn binary_malformed(what: &str) -> IoError {
    IoError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("binary graph: {what}"),
    ))
}

/// Serializes a graph to the binary CSR format above.
#[must_use]
pub fn encode_graph(g: &Graph) -> Vec<u8> {
    let n = g.n();
    // ~2 bytes per vertex header + ~3 per run is typical; m is a safe
    // upper-bound-ish reservation that avoids regrowth on sparse graphs.
    let mut out = Vec::with_capacity(8 + 2 * n + g.m());
    put_varint(&mut out, n as u64);
    for v in g.vertices() {
        let nbrs = g.neighbors(v);
        let split = nbrs.partition_point(|w| w.0 <= v.0);
        let fwd = &nbrs[split..];
        encode_runs(&mut out, v.0, fwd);
    }
    out
}

/// Appends the interval (run) encoding of the ascending id list `ids`,
/// with gaps anchored at `anchor` (exclusive: the first run starts at
/// `anchor + gap`, so every encoded id is `> anchor`). Callers encoding
/// lists that may start at id 0 pass the ids shifted up by one.
pub fn encode_runs(out: &mut Vec<u8>, anchor: u32, ids: &[NodeId]) {
    let mut runs = 0u64;
    let mut prev = u32::MAX;
    for w in ids {
        if prev == u32::MAX || w.0 != prev + 1 {
            runs += 1;
        }
        prev = w.0;
    }
    put_varint(out, runs);
    let mut cursor = anchor;
    let mut i = 0usize;
    while i < ids.len() {
        let start = ids[i].0;
        let mut len = 1u32;
        while i + (len as usize) < ids.len() && ids[i + len as usize].0 == start + len {
            len += 1;
        }
        put_varint(out, u64::from(start - cursor));
        put_varint(out, u64::from(len));
        cursor = start + len;
        i += len as usize;
    }
}

/// Decodes the interval encoding written by [`encode_runs`], pushing
/// each id (all `> anchor` and `< limit`, strictly ascending) through
/// `sink`.
///
/// # Errors
///
/// Rejects truncated/malformed varints, zero gaps or lengths, and runs
/// reaching `limit` or beyond.
pub fn decode_runs(
    buf: &[u8],
    pos: &mut usize,
    anchor: u32,
    limit: u32,
    mut sink: impl FnMut(u32),
) -> Result<(), IoError> {
    let runs = get_varint(buf, pos)?;
    let mut cursor = u64::from(anchor);
    for _ in 0..runs {
        let gap = get_varint(buf, pos)?;
        let len = get_varint(buf, pos)?;
        if gap == 0 || len == 0 {
            return Err(binary_malformed("zero run gap or length"));
        }
        let start = cursor + gap;
        let end = start + len;
        if end > u64::from(limit) {
            return Err(binary_malformed("run past the vertex count"));
        }
        for id in start..end {
            sink(id as u32);
        }
        cursor = end;
    }
    Ok(())
}

/// Parses the binary CSR format back into a [`Graph`] in `O(m)` — the
/// two decode passes fill each adjacency list already sorted (backward
/// entries arrive in ascending source order, then forward entries in
/// ascending id order), so no per-vertex sort is needed.
///
/// # Errors
///
/// Rejects truncated payloads, malformed varints, zero-length runs,
/// ids at or past the declared vertex count, and trailing bytes.
pub fn decode_graph(bytes: &[u8]) -> Result<Graph, IoError> {
    let mut pos = 0usize;
    let n = usize::try_from(get_varint(bytes, &mut pos)?)
        .map_err(|_| binary_malformed("vertex count overflows usize"))?;
    let limit = u32::try_from(n).map_err(|_| binary_malformed("vertex count overflows u32"))?;
    // Pass 1: degrees (each forward edge (v, w) counts for both ends).
    let mut deg = vec![0usize; n];
    let body = pos;
    for v in 0..limit {
        let mut fwd = 0usize;
        decode_runs(bytes, &mut pos, v, limit, |w| {
            deg[w as usize] += 1;
            fwd += 1;
        })?;
        deg[v as usize] += fwd;
    }
    if pos != bytes.len() {
        return Err(binary_malformed("trailing bytes"));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut total = 0usize;
    offsets.push(0);
    for &d in &deg {
        total += d;
        offsets.push(total);
    }
    let max_degree = deg.iter().copied().max().unwrap_or(0);
    // Pass 2: fill. Scanning sources in ascending order keeps every
    // list sorted without a sort pass: when vertex v is processed, its
    // backward entries (sources u < v) are already in place ascending,
    // and its own forward ids (all > v > any backward entry) append
    // ascending after them.
    let mut cursor = offsets[..n].to_vec();
    let mut adj = vec![NodeId(0); total];
    pos = body;
    for v in 0..limit {
        decode_runs(bytes, &mut pos, v, limit, |w| {
            adj[cursor[v as usize]] = NodeId(w);
            cursor[v as usize] += 1;
            adj[cursor[w as usize]] = NodeId(v);
            cursor[w as usize] += 1;
        })?;
    }
    Ok(Graph::from_csr_parts(offsets, adj, total / 2, max_degree))
}

/// Serializes a complete coloring as one `vertex color` pair per line.
pub fn write_coloring(coloring: &Coloring) -> String {
    let mut out = String::new();
    for i in 0..coloring.len() {
        match coloring.get(crate::NodeId::from(i)) {
            Some(c) => {
                let _ = writeln!(out, "{i} {}", c.0);
            }
            None => {
                let _ = writeln!(out, "{i} -");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Color, NodeId};

    #[test]
    fn parses_with_comments_and_header() {
        let g = parse_edge_list("# triangle\nn 4\n0 1\n1 2 # closing\n2 0\n").unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(NodeId(3)), 0);
    }

    #[test]
    fn roundtrips() {
        let g = crate::generators::hypercube(3);
        let text = write_edge_list(&g);
        let h = parse_edge_list(&text).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(
            parse_edge_list("0 x"),
            Err(IoError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_edge_list("1 2 3"),
            Err(IoError::Parse { .. })
        ));
        assert!(matches!(parse_edge_list("0 0"), Err(IoError::Graph(_))));
    }

    #[test]
    fn binary_codec_round_trips_every_shape() {
        let clique = {
            let edges: Vec<(u32, u32)> = (0..50u32)
                .flat_map(|u| (u + 1..50).map(move |v| (u, v)))
                .collect();
            Graph::from_edges(50, edges).unwrap()
        };
        for g in [
            Graph::from_edges(0, []).unwrap(),
            Graph::from_edges(4, []).unwrap(), // isolated vertices only
            crate::generators::path(17),
            crate::generators::cycle(9),
            crate::generators::hypercube(4),
            crate::generators::gnp(120, 0.07, 13),
            clique,
        ] {
            let bytes = encode_graph(&g);
            let h = decode_graph(&bytes).unwrap();
            assert_eq!(g, h);
            assert_eq!(g.max_degree(), h.max_degree());
            assert_eq!(g.m(), h.m());
        }
    }

    #[test]
    fn binary_codec_is_dramatically_smaller_than_text_on_dense_graphs() {
        let edges: Vec<(u32, u32)> = (0..200u32)
            .flat_map(|u| (u + 1..200).map(move |v| (u, v)))
            .collect();
        let g = Graph::from_edges(200, edges).unwrap();
        let text = write_edge_list(&g).len();
        let binary = encode_graph(&g).len();
        // A clique is one run per vertex: ~4 bytes against ~8 per edge
        // of text. The wire-path acceptance target is 10x; assert a
        // comfortable margin beyond it.
        assert!(
            binary * 50 < text,
            "binary {binary} bytes vs text {text} bytes"
        );
    }

    #[test]
    fn binary_codec_rejects_malformed_payloads() {
        let g = crate::generators::path(6);
        let bytes = encode_graph(&g);
        // Truncation anywhere must error, never panic.
        for cut in 0..bytes.len() {
            assert!(decode_graph(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_graph(&padded).is_err());
        // A run reaching past the vertex count: n=2, vertex 0 claims a
        // 3-long run starting at 1.
        assert!(decode_graph(&[2, 1, 1, 3, 0]).is_err());
        // Zero-length run.
        assert!(decode_graph(&[2, 1, 1, 0, 0]).is_err());
        // Varint that overflows u64.
        let overflow = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert!(decode_graph(&overflow).is_err());
    }

    #[test]
    fn run_encoding_round_trips_arbitrary_ascending_lists() {
        let lists: [&[u32]; 4] = [&[], &[3], &[1, 2, 3, 9, 11, 12], &[5, 7, 9]];
        for ids in lists {
            let nodes: Vec<NodeId> = ids.iter().map(|&v| NodeId(v + 1)).collect();
            let mut buf = Vec::new();
            // Anchor 0 with ids shifted by one (lists may contain 0).
            encode_runs(&mut buf, 0, &nodes);
            let mut got = Vec::new();
            let mut pos = 0;
            decode_runs(&buf, &mut pos, 0, u32::MAX, |w| got.push(w - 1)).unwrap();
            assert_eq!(pos, buf.len());
            assert_eq!(got, ids);
        }
    }

    #[test]
    fn coloring_output_format() {
        let mut c = Coloring::empty(3);
        c.set(NodeId(0), Color(5));
        c.set(NodeId(2), Color(1));
        assert_eq!(write_coloring(&c), "0 5\n1 -\n2 1\n");
    }
}
