//! Incremental construction of [`Graph`]s.

use crate::{Graph, GraphError, NodeId};

/// A mutable edge-set accumulator that deduplicates on build.
///
/// Unlike [`Graph::from_edges`], the builder tolerates duplicate insertions
/// (they collapse into one edge) and ignores self-loops on request, which is
/// convenient for generators that stitch graphs together.
///
/// # Example
///
/// ```
/// use graphgen::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 0); // duplicate, collapsed
/// b.add_edge(1, 2);
/// let g = b.build()?;
/// assert_eq!(g.m(), 2);
/// # Ok::<(), graphgen::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Grows the vertex set to at least `n` vertices.
    pub fn ensure_vertices(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Adds vertices and returns the index of the first new vertex.
    pub fn add_vertices(&mut self, count: usize) -> NodeId {
        let first = self.n;
        self.n += count;
        NodeId::from(first)
    }

    /// Records the undirected edge `{a, b}`. Duplicates collapse at build.
    pub fn add_edge(&mut self, a: impl Into<NodeId>, b: impl Into<NodeId>) {
        let (a, b) = (a.into().0, b.into().0);
        self.edges.push((a.min(b), a.max(b)));
    }

    /// Records all `k·(k-1)/2` edges of a clique over `nodes`.
    pub fn add_clique(&mut self, nodes: &[NodeId]) {
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                self.add_edge(a, b);
            }
        }
    }

    /// Copies every edge of `g`, translating vertex `v` to `v + offset`.
    pub fn add_graph(&mut self, g: &Graph, offset: u32) {
        for (u, v) in g.edges() {
            self.add_edge(u.0 + offset, v.0 + offset);
        }
    }

    /// Whether the edge has already been recorded (linear scan; test use).
    pub fn contains_edge(&self, a: u32, b: u32) -> bool {
        let key = (a.min(b), a.max(b));
        self.edges.contains(&key)
    }

    /// Finalizes the accumulated edges into a [`Graph`].
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range or a self-loop was
    /// recorded.
    pub fn build(mut self) -> Result<Graph, GraphError> {
        self.edges.sort_unstable();
        self.edges.dedup();
        if let Some(&(a, _)) = self.edges.iter().find(|(a, b)| a == b) {
            return Err(GraphError::SelfLoop(a));
        }
        Graph::from_edges(self.n, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_clique() {
        let mut b = GraphBuilder::new(4);
        b.add_clique(&[NodeId(0), NodeId(1), NodeId(2)]);
        b.add_edge(0u32, 1u32);
        let g = b.build().unwrap();
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(NodeId(3)), 0);
    }

    #[test]
    fn add_graph_with_offset() {
        let tri = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap();
        let mut b = GraphBuilder::new(6);
        b.add_graph(&tri, 0);
        b.add_graph(&tri, 3);
        b.add_edge(2u32, 3u32);
        let g = b.build().unwrap();
        assert_eq!(g.m(), 7);
        assert!(g.has_edge(NodeId(3), NodeId(5)));
    }

    #[test]
    fn self_loop_rejected_at_build() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1u32, 1u32);
        assert!(matches!(b.build(), Err(GraphError::SelfLoop(1))));
    }

    #[test]
    fn add_vertices_returns_first() {
        let mut b = GraphBuilder::new(2);
        let first = b.add_vertices(3);
        assert_eq!(first, NodeId(2));
        assert_eq!(b.n(), 5);
    }
}
