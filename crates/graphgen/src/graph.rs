//! The immutable CSR graph type shared by the whole workspace.

use std::cell::RefCell;
use std::fmt;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize, Value};

/// Identifier of a vertex: an index into the graph's vertex set.
///
/// Node identifiers are dense (`0..n`). Distributed algorithms that need
/// large, arbitrary identifiers for symmetry breaking use a separate
/// relabeling (see `localsim::NodeCtx::uid`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for indexing per-node state vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u32::try_from(v).expect("node index exceeds u32"))
    }
}

impl From<i32> for NodeId {
    /// Convenience for integer literals.
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative.
    fn from(v: i32) -> Self {
        NodeId(u32::try_from(v).expect("node index must be non-negative"))
    }
}

/// Errors produced when constructing a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint is `>= n`.
    EndpointOutOfRange { edge: (u32, u32), n: usize },
    /// An edge connects a vertex to itself.
    SelfLoop(u32),
    /// The same undirected edge was listed twice.
    DuplicateEdge(u32, u32),
    /// A generator was asked for parameters it cannot satisfy.
    InfeasibleParameters(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EndpointOutOfRange { edge, n } => {
                write!(
                    f,
                    "edge ({}, {}) has endpoint outside 0..{}",
                    edge.0, edge.1, n
                )
            }
            GraphError::SelfLoop(v) => write!(f, "self loop at vertex {v}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::InfeasibleParameters(msg) => write!(f, "infeasible parameters: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable, simple, undirected graph in compressed sparse row form.
///
/// Adjacency lists are sorted, enabling `O(log Δ)` [`Graph::has_edge`]
/// queries and linear-time sorted-list intersections in
/// [`crate::analysis::common_neighbors`].
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<usize>,
    adj: Vec<NodeId>,
    m: usize,
    max_degree: usize,
    /// Lazily built reverse-port table (see [`Graph::reverse_ports`]).
    /// Pure cache: excluded from equality and serialization.
    rev_ports: OnceLock<Vec<u32>>,
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.offsets == other.offsets
            && self.adj == other.adj
            && self.m == other.m
            && self.max_degree == other.max_degree
    }
}

impl Eq for Graph {}

impl Serialize for Graph {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("offsets".into(), self.offsets.to_value()),
            ("adj".into(), self.adj.to_value()),
            ("m".into(), self.m.to_value()),
            ("max_degree".into(), self.max_degree.to_value()),
        ])
    }
}

impl<'de> Deserialize<'de> for Graph {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(Graph {
            offsets: Deserialize::from_value(v.field("offsets")?)?,
            adj: Deserialize::from_value(v.field("adj")?)?,
            m: Deserialize::from_value(v.field("m")?)?,
            max_degree: Deserialize::from_value(v.field("max_degree")?)?,
            rev_ports: OnceLock::new(),
        })
    }
}

impl Graph {
    /// Builds a graph on `n` vertices from an undirected edge list.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, an edge is a self
    /// loop, or the same undirected edge appears twice.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (u32, u32)>,
    ) -> Result<Self, GraphError> {
        let mut deg = vec![0usize; n];
        let mut list: Vec<(u32, u32)> = Vec::new();
        for (a, b) in edges {
            if a as usize >= n || b as usize >= n {
                return Err(GraphError::EndpointOutOfRange { edge: (a, b), n });
            }
            if a == b {
                return Err(GraphError::SelfLoop(a));
            }
            deg[a as usize] += 1;
            deg[b as usize] += 1;
            list.push((a.min(b), a.max(b)));
        }
        list.sort_unstable();
        for w in list.windows(2) {
            if w[0] == w[1] {
                return Err(GraphError::DuplicateEdge(w[0].0, w[0].1));
            }
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![NodeId(0); offsets[n]];
        for &(a, b) in &list {
            adj[cursor[a as usize]] = NodeId(b);
            cursor[a as usize] += 1;
            adj[cursor[b as usize]] = NodeId(a);
            cursor[b as usize] += 1;
        }
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        let max_degree = deg.iter().copied().max().unwrap_or(0);
        Ok(Graph {
            offsets,
            adj,
            m: list.len(),
            max_degree,
            rev_ports: OnceLock::new(),
        })
    }

    /// Assembles a graph directly from already-validated CSR parts
    /// (`offsets.len() == n + 1`, per-vertex slices sorted, symmetric).
    /// Used by the binary codec in [`crate::io`], which guarantees those
    /// invariants structurally during decoding.
    pub(crate) fn from_csr_parts(
        offsets: Vec<usize>,
        adj: Vec<NodeId>,
        m: usize,
        max_degree: usize,
    ) -> Self {
        Graph {
            offsets,
            adj,
            m,
            max_degree,
            rev_ports: OnceLock::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Maximum degree Δ of the graph.
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// The sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// The CSR offset array: `csr_offsets()[v]..csr_offsets()[v + 1]` is the
    /// range of `v`'s ports in a flat, port-indexed arena of length
    /// `csr_offsets()[n]` (= 2m). Simulators use this to keep one contiguous
    /// inbox buffer for the whole graph instead of one allocation per node.
    #[inline]
    pub fn csr_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The reverse-port table, aligned with the CSR adjacency array.
    ///
    /// For the directed slot `i = csr_offsets()[v] + p` (port `p` of `v`,
    /// leading to `w`), `reverse_ports()[i]` is the port of `w` that leads
    /// back to `v`. This turns "on which port does `w` hear from `v`?" —
    /// otherwise a per-message binary search over `w`'s adjacency list —
    /// into one O(1) lookup. Built in O(m) using the fact that adjacency
    /// lists are sorted: scanning senders in ascending order visits each
    /// receiver's ports in ascending order too.
    ///
    /// The table is built once per graph on first use and cached, so
    /// constructing several executors over the same graph (profiling
    /// sweeps, seq-vs-par equivalence runs) pays the O(m) sweep once.
    #[must_use]
    pub fn reverse_ports(&self) -> &[u32] {
        self.rev_ports.get_or_init(|| {
            let mut rev = vec![0u32; self.adj.len()];
            let mut cursor = vec![0u32; self.n()];
            for (nbr, slot) in self.adj.iter().zip(rev.iter_mut()) {
                let w = nbr.index();
                *slot = cursor[w];
                cursor[w] += 1;
            }
            rev
        })
    }

    /// Whether the undirected edge `{u, v}` is present.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n() as u32).map(NodeId)
    }

    /// Iterator over all undirected edges, each reported once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u < v)
    }

    /// The subgraph induced by `nodes`.
    ///
    /// Returns the induced graph (with vertices renumbered `0..nodes.len()`
    /// in the order given) and the back-map from new ids to original ids.
    ///
    /// Extraction goes through a per-thread [`SubgraphArena`], so repeated
    /// calls (one per leftover component, one per list-coloring instance)
    /// cost O(Σ extracted size), not O(calls · n).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` contains a duplicate.
    pub fn induced(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        thread_local! {
            static ARENA: RefCell<SubgraphArena> = RefCell::new(SubgraphArena::new());
        }
        let g = ARENA.with(|a| a.borrow_mut().extract(self, nodes));
        (g, nodes.to_vec())
    }

    /// The `k`-th power of the graph: `u ~ v` iff their distance is in `1..=k`.
    ///
    /// Used to reduce `(2, r)`-ruling sets to MIS. Cost is O(n · Δ^k); only
    /// call with small `k` on bounded-degree (virtual) graphs.
    pub fn power(&self, k: usize) -> Graph {
        assert!(k >= 1, "graph power requires k >= 1");
        let mut edges = Vec::new();
        let n = self.n();
        let mut seen = vec![u32::MAX; n];
        let mut frontier = Vec::new();
        let mut next = Vec::new();
        for u in 0..n as u32 {
            seen[u as usize] = u;
            frontier.clear();
            frontier.push(NodeId(u));
            for _ in 0..k {
                next.clear();
                for &x in &frontier {
                    for &y in self.neighbors(x) {
                        if seen[y.index()] != u {
                            seen[y.index()] = u;
                            next.push(y);
                            if u < y.0 {
                                edges.push((u, y.0));
                            }
                        }
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
            }
        }
        Graph::from_edges(n, edges).expect("power graph is valid")
    }

    /// Breadth-first distances from all of `sources` (multi-source BFS).
    ///
    /// Unreachable vertices get `usize::MAX`.
    pub fn bfs_distances(&self, sources: &[NodeId]) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n()];
        let mut queue = std::collections::VecDeque::new();
        for &s in sources {
            if dist[s.index()] == usize::MAX {
                dist[s.index()] = 0;
                queue.push_back(s);
            }
        }
        while let Some(v) = queue.pop_front() {
            let d = dist[v.index()];
            for &w in self.neighbors(v) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = d + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Whether the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        if self.n() == 0 {
            return true;
        }
        let dist = self.bfs_distances(&[NodeId(0)]);
        dist.iter().all(|&d| d != usize::MAX)
    }

    /// Connected components; each component is a sorted list of vertices.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let mut comp = vec![u32::MAX; self.n()];
        let mut out: Vec<Vec<NodeId>> = Vec::new();
        for s in self.vertices() {
            if comp[s.index()] != u32::MAX {
                continue;
            }
            let c = out.len() as u32;
            let mut members = vec![s];
            comp[s.index()] = c;
            let mut stack = vec![s];
            while let Some(v) = stack.pop() {
                for &w in self.neighbors(v) {
                    if comp[w.index()] == u32::MAX {
                        comp[w.index()] = c;
                        members.push(w);
                        stack.push(w);
                    }
                }
            }
            members.sort_unstable();
            out.push(members);
        }
        out
    }

    /// Exact eccentricity-based diameter of the component containing `v0`.
    ///
    /// Intended for tests and small control graphs: O(n·m).
    pub fn diameter_from(&self, v0: NodeId) -> usize {
        let dist0 = self.bfs_distances(&[v0]);
        let mut diam = 0;
        for v in self.vertices() {
            if dist0[v.index()] == usize::MAX {
                continue;
            }
            let d = self.bfs_distances(&[v]);
            diam = diam.max(
                d.iter()
                    .filter(|&&x| x != usize::MAX)
                    .max()
                    .copied()
                    .unwrap_or(0),
            );
        }
        diam
    }
}

/// Reusable scratch state for induced-subgraph extraction.
///
/// [`Graph::induced`] needs a forward map from original vertex ids to
/// subgraph ids. Allocating (and zeroing) that map per call costs O(n)
/// even for a 3-vertex component; the arena keeps one map alive across
/// calls and resets only the entries it touched, so extracting k
/// subgraphs costs O(Σ subgraph size) after the first call per thread.
///
/// The arena builds the induced CSR directly — degree count, prefix sum,
/// fill, per-list sort — skipping the edge-list materialization and
/// re-validation that `Graph::from_edges` would repeat (the host graph is
/// already simple, so the induced subgraph is too).
#[derive(Debug, Default)]
pub struct SubgraphArena {
    /// `fwd[v] == u32::MAX` ⇔ `v` untouched; reset after every call.
    fwd: Vec<u32>,
}

impl SubgraphArena {
    /// An empty arena; scratch grows lazily to the host graph size.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Extracts the subgraph of `g` induced by `nodes`, renumbered
    /// `0..nodes.len()` in the order given (the caller keeps `nodes` as
    /// the back-map).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` contains a duplicate.
    pub fn extract(&mut self, g: &Graph, nodes: &[NodeId]) -> Graph {
        if self.fwd.len() < g.n() {
            self.fwd.resize(g.n(), u32::MAX);
        }
        let fwd = &mut self.fwd;
        for (i, v) in nodes.iter().enumerate() {
            assert!(
                fwd[v.index()] == u32::MAX,
                "duplicate node {v} in induced set"
            );
            fwd[v.index()] = i as u32;
        }
        let k = nodes.len();
        let mut offsets = vec![0usize; k + 1];
        for (i, &v) in nodes.iter().enumerate() {
            offsets[i + 1] = g
                .neighbors(v)
                .iter()
                .filter(|w| fwd[w.index()] != u32::MAX)
                .count();
        }
        for i in 0..k {
            offsets[i + 1] += offsets[i];
        }
        let mut adj = vec![NodeId(0); offsets[k]];
        let mut max_degree = 0usize;
        for (i, &v) in nodes.iter().enumerate() {
            let mut cursor = offsets[i];
            for &w in g.neighbors(v) {
                let j = fwd[w.index()];
                if j != u32::MAX {
                    adj[cursor] = NodeId(j);
                    cursor += 1;
                }
            }
            // Host adjacency is sorted by *original* id; the induced list
            // must be sorted by *new* id. For sorted `nodes` the renumbering
            // is monotone and this is a no-op pass.
            adj[offsets[i]..cursor].sort_unstable();
            max_degree = max_degree.max(cursor - offsets[i]);
        }
        for v in nodes {
            fwd[v.index()] = u32::MAX;
        }
        Graph {
            m: offsets[k] / 2,
            offsets,
            adj,
            max_degree,
            rev_ports: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn csr_basics() {
        let g = triangle_plus_pendant();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(NodeId(2)), 3);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.neighbors(NodeId(2)), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(0), NodeId(3)));
    }

    #[test]
    fn reverse_ports_invert_adjacency() {
        for g in [
            triangle_plus_pendant(),
            Graph::from_edges(6, [(0, 5), (5, 2), (2, 0), (1, 4), (3, 4)]).unwrap(),
            Graph::from_edges(0, []).unwrap(),
        ] {
            let off = g.csr_offsets();
            assert_eq!(off.len(), g.n() + 1);
            let rev = g.reverse_ports();
            assert_eq!(rev.len(), *off.last().unwrap());
            for v in g.vertices() {
                for (p, &w) in g.neighbors(v).iter().enumerate() {
                    let back = rev[off[v.index()] + p] as usize;
                    assert_eq!(g.neighbors(w)[back], v, "rev port of {v} -> {w}");
                }
            }
        }
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(Graph::from_edges(2, [(0, 0)]), Err(GraphError::SelfLoop(0)));
    }

    #[test]
    fn rejects_duplicate_even_reversed() {
        assert_eq!(
            Graph::from_edges(2, [(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge(0, 1))
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            Graph::from_edges(2, [(0, 5)]),
            Err(GraphError::EndpointOutOfRange { .. })
        ));
    }

    #[test]
    fn edges_reported_once() {
        let g = triangle_plus_pendant();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es.len(), 4);
        assert!(es.contains(&(NodeId(0), NodeId(1))));
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = triangle_plus_pendant();
        let (h, back) = g.induced(&[NodeId(2), NodeId(3), NodeId(0)]);
        assert_eq!(h.n(), 3);
        // edges {2,3} and {2,0} survive; {0,1},{1,2} dropped with vertex 1.
        assert_eq!(h.m(), 2);
        assert!(h.has_edge(NodeId(0), NodeId(1))); // 2-3
        assert!(h.has_edge(NodeId(0), NodeId(2))); // 2-0
        assert_eq!(back, vec![NodeId(2), NodeId(3), NodeId(0)]);
    }

    #[test]
    fn arena_extraction_matches_from_edges() {
        // Reusing one arena across differently-shaped extractions must
        // behave exactly like building each induced subgraph from scratch,
        // including unsorted node orders (which force the per-list sort).
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (4, 6),
                (6, 7),
            ],
        )
        .unwrap();
        let mut arena = SubgraphArena::new();
        for nodes in [
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(6), NodeId(4), NodeId(5)], // unsorted order
            vec![NodeId(7)],
            vec![],
        ] {
            let got = arena.extract(&g, &nodes);
            let mut edges = Vec::new();
            for (i, &v) in nodes.iter().enumerate() {
                for (j, &w) in nodes.iter().enumerate() {
                    if i < j && g.has_edge(v, w) {
                        edges.push((i as u32, j as u32));
                    }
                }
            }
            let want = Graph::from_edges(nodes.len(), edges).unwrap();
            assert_eq!(got, want, "induced by {nodes:?}");
            assert_eq!(got.max_degree(), want.max_degree());
            assert_eq!(got.m(), want.m());
        }
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn arena_rejects_duplicates() {
        let g = triangle_plus_pendant();
        SubgraphArena::new().extract(&g, &[NodeId(1), NodeId(1)]);
    }

    #[test]
    fn serde_roundtrip_ignores_cache() {
        let g = triangle_plus_pendant();
        let _ = g.reverse_ports(); // populate the cache on one side only
        let back = Graph::from_value(&g.to_value()).unwrap();
        assert_eq!(g, back);
        assert_eq!(g.reverse_ports(), back.reverse_ports());
    }

    #[test]
    fn power_two_of_path() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let p = g.power(2);
        assert!(p.has_edge(NodeId(0), NodeId(2)));
        assert!(p.has_edge(NodeId(1), NodeId(3)));
        assert!(!p.has_edge(NodeId(0), NodeId(3)));
    }

    #[test]
    fn bfs_and_diameter() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let d = g.bfs_distances(&[NodeId(0)]);
        assert_eq!(d[3], 3);
        assert_eq!(d[4], usize::MAX);
        assert!(!g.is_connected());
        assert_eq!(g.diameter_from(NodeId(0)), 3);
    }

    #[test]
    fn components_found() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
        let comps = g.components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(comps[1], vec![NodeId(2), NodeId(3)]);
        assert_eq!(comps[2], vec![NodeId(4)]);
    }
}
