//! Structural analysis helpers: common neighborhoods, sparsity counts, and
//! the `K_{Δ+1}` exclusion check required by Brooks' theorem.

use crate::{Graph, NodeId};

/// Common neighbors of `u` and `v`, by sorted-list intersection.
pub fn common_neighbors(g: &Graph, u: NodeId, v: NodeId) -> Vec<NodeId> {
    let (a, b) = (g.neighbors(u), g.neighbors(v));
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Number of common neighbors of `u` and `v`.
pub fn common_neighbor_count(g: &Graph, u: NodeId, v: NodeId) -> usize {
    let (a, b) = (g.neighbors(u), g.neighbors(v));
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Number of edges inside the neighborhood `N(v)` (not counting edges to `v`).
///
/// Claim 1 of the paper: an η-sparse vertex has at most
/// `(1 - η²)·binom(Δ, 2)` such edges.
pub fn edges_in_neighborhood(g: &Graph, v: NodeId) -> usize {
    let nbrs = g.neighbors(v);
    let mut count = 0;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_edge(a, b) {
                count += 1;
            }
        }
    }
    count
}

/// Whether `nodes` induces a clique in `g`.
pub fn is_clique(g: &Graph, nodes: &[NodeId]) -> bool {
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            if !g.has_edge(a, b) {
                return false;
            }
        }
    }
    true
}

/// Whether the graph contains a clique on `k` vertices.
///
/// Branch-and-bound over candidate sets, pruning vertices of degree `< k-1`.
/// Exponential in the worst case but fast on the structured instances this
/// workspace generates (used to certify that generated dense graphs contain
/// no `K_{Δ+1}`, the precondition of Theorem 1 / Brooks' theorem).
pub fn has_k_clique(g: &Graph, k: usize) -> bool {
    if k == 0 {
        return true;
    }
    if k == 1 {
        return g.n() > 0;
    }
    let candidates: Vec<NodeId> = g.vertices().filter(|&v| g.degree(v) >= k - 1).collect();
    let mut clique = Vec::with_capacity(k);
    for &v in &candidates {
        clique.push(v);
        let rest: Vec<NodeId> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| w > v && g.degree(w) >= k - 1)
            .collect();
        if extend_clique(g, &mut clique, &rest, k) {
            return true;
        }
        clique.pop();
    }
    false
}

fn extend_clique(g: &Graph, clique: &mut Vec<NodeId>, candidates: &[NodeId], k: usize) -> bool {
    if clique.len() == k {
        return true;
    }
    if clique.len() + candidates.len() < k {
        return false;
    }
    for (i, &v) in candidates.iter().enumerate() {
        clique.push(v);
        let next: Vec<NodeId> = candidates[i + 1..]
            .iter()
            .copied()
            .filter(|&w| g.has_edge(v, w))
            .collect();
        if extend_clique(g, clique, &next, k) {
            return true;
        }
        clique.pop();
    }
    false
}

/// Whether `g` is `d`-regular.
pub fn is_regular(g: &Graph, d: usize) -> bool {
    g.vertices().all(|v| g.degree(v) == d)
}

/// Girth of the graph (length of a shortest cycle), or `None` if acyclic.
///
/// BFS from every vertex; O(n·m). Test/analysis use only.
pub fn girth(g: &Graph) -> Option<usize> {
    let mut best: Option<usize> = None;
    for s in g.vertices() {
        let mut dist = vec![usize::MAX; g.n()];
        let mut parent = vec![NodeId(u32::MAX); g.n()];
        dist[s.index()] = 0;
        let mut q = std::collections::VecDeque::from([s]);
        while let Some(v) = q.pop_front() {
            for &w in g.neighbors(v) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dist[v.index()] + 1;
                    parent[w.index()] = v;
                    q.push_back(w);
                } else if parent[v.index()] != w {
                    let cyc = dist[v.index()] + dist[w.index()] + 1;
                    if best.is_none_or(|b| cyc < b) {
                        best = Some(cyc);
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn common_neighbors_of_diamond() {
        // 0-1, 0-2, 1-2, 1-3, 2-3: common neighbors of 0 and 3 are {1,2}.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(
            common_neighbors(&g, NodeId(0), NodeId(3)),
            vec![NodeId(1), NodeId(2)]
        );
        assert_eq!(common_neighbor_count(&g, NodeId(0), NodeId(3)), 2);
        assert_eq!(edges_in_neighborhood(&g, NodeId(3)), 1);
    }

    #[test]
    fn clique_detection() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert!(is_clique(&g, &[NodeId(0), NodeId(1), NodeId(2)]));
        assert!(!is_clique(&g, &[NodeId(1), NodeId(2), NodeId(3)]));
        assert!(has_k_clique(&g, 3));
        assert!(!has_k_clique(&g, 4));
    }

    #[test]
    fn k4_found_in_complete_graph() {
        let g = crate::generators::complete(6);
        assert!(has_k_clique(&g, 6));
        assert!(!has_k_clique(&g, 7));
    }

    #[test]
    fn girth_of_cycles_and_trees() {
        let c5 = crate::generators::cycle(5);
        assert_eq!(girth(&c5), Some(5));
        let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(girth(&path), None);
        let k4 = crate::generators::complete(4);
        assert_eq!(girth(&k4), Some(3));
    }

    #[test]
    fn regularity() {
        assert!(is_regular(&crate::generators::cycle(6), 2));
        assert!(!is_regular(&Graph::from_edges(3, [(0, 1)]).unwrap(), 1));
    }
}

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Global clustering coefficient: `3·triangles / wedges` (0 for wedge-free
/// graphs). Dense almost-clique graphs sit near 1; sparse regions near 0 —
/// a quick diagnostic matching the ACD's sparse/dense split.
pub fn clustering_coefficient(g: &Graph) -> f64 {
    let mut closed = 0u64;
    let mut wedges = 0u64;
    for v in g.vertices() {
        let nbrs = g.neighbors(v);
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                wedges += 1;
                if g.has_edge(a, b) {
                    closed += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        closed as f64 / wedges as f64
    }
}

#[cfg(test)]
mod metric_tests {
    use super::*;

    #[test]
    fn histogram_counts() {
        let g = crate::generators::star(4);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
    }

    #[test]
    fn clustering_extremes() {
        assert!((clustering_coefficient(&crate::generators::complete(6)) - 1.0).abs() < 1e-9);
        assert_eq!(clustering_coefficient(&crate::generators::cycle(8)), 0.0);
        // Hard clique instances are overwhelmingly clustered.
        let inst = crate::generators::hard_cliques(&crate::generators::HardCliqueParams {
            cliques: 34,
            delta: 16,
            external_per_vertex: 1,
            seed: 1,
        })
        .unwrap();
        assert!(clustering_coefficient(&inst.graph) > 0.8);
    }
}
