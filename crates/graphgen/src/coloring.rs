//! Vertex colorings, palettes, and validity checking.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Graph, NodeId};

/// A color. Colors are dense small integers; a Δ-coloring uses `0..Δ`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Color(pub u32);

impl Color {
    /// The color index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Why a coloring failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColoringError {
    /// A vertex was left uncolored.
    Uncolored(NodeId),
    /// Two adjacent vertices received the same color.
    Monochromatic(NodeId, NodeId, Color),
    /// A color outside the allowed palette `0..k` was used.
    ColorOutOfRange {
        node: NodeId,
        color: Color,
        palette: u32,
    },
    /// Coloring length does not match the number of vertices.
    WrongLength { got: usize, expected: usize },
}

impl fmt::Display for ColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringError::Uncolored(v) => write!(f, "vertex {v} is uncolored"),
            ColoringError::Monochromatic(u, v, c) => {
                write!(f, "adjacent vertices {u} and {v} share color {c}")
            }
            ColoringError::ColorOutOfRange {
                node,
                color,
                palette,
            } => {
                write!(
                    f,
                    "vertex {node} has color {color} outside palette 0..{palette}"
                )
            }
            ColoringError::WrongLength { got, expected } => {
                write!(
                    f,
                    "coloring has {got} entries for a graph on {expected} vertices"
                )
            }
        }
    }
}

impl std::error::Error for ColoringError {}

/// A (possibly partial) vertex coloring.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Coloring {
    colors: Vec<Option<Color>>,
}

impl Coloring {
    /// An all-uncolored coloring for a graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Coloring {
            colors: vec![None; n],
        }
    }

    /// Builds from an explicit assignment vector.
    pub fn from_vec(colors: Vec<Option<Color>>) -> Self {
        Coloring { colors }
    }

    /// Number of vertices covered by this assignment vector.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether the assignment vector is empty.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// The color of `v`, if assigned.
    #[inline]
    pub fn get(&self, v: NodeId) -> Option<Color> {
        self.colors[v.index()]
    }

    /// Whether `v` has a color.
    #[inline]
    pub fn is_colored(&self, v: NodeId) -> bool {
        self.colors[v.index()].is_some()
    }

    /// Assigns color `c` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` already has a different color — overwriting an existing
    /// color is always a bug in a coloring pipeline.
    pub fn set(&mut self, v: NodeId, c: Color) {
        let slot = &mut self.colors[v.index()];
        if let Some(old) = *slot {
            assert_eq!(old, c, "vertex {v} recolored from {old} to {c}");
        }
        *slot = Some(c);
    }

    /// Removes the color of `v` (used by augmenting recolorers).
    pub fn unset(&mut self, v: NodeId) {
        self.colors[v.index()] = None;
    }

    /// Number of colored vertices.
    pub fn colored_count(&self) -> usize {
        self.colors.iter().filter(|c| c.is_some()).count()
    }

    /// All uncolored vertices.
    pub fn uncolored(&self) -> Vec<NodeId> {
        self.colors
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| NodeId::from(i))
            .collect()
    }

    /// Largest color used, if any vertex is colored.
    pub fn max_color(&self) -> Option<Color> {
        self.colors.iter().flatten().max().copied()
    }

    /// Usage count per color in `0..palette`.
    pub fn histogram(&self, palette: u32) -> Vec<usize> {
        let mut hist = vec![0usize; palette as usize];
        for c in self.colors.iter().flatten() {
            if c.0 < palette {
                hist[c.index()] += 1;
            }
        }
        hist
    }

    /// Colors already used on the neighbors of `v` in `g`.
    pub fn neighbor_colors(&self, g: &Graph, v: NodeId) -> Vec<Color> {
        let mut out: Vec<Color> = g.neighbors(v).iter().filter_map(|&w| self.get(w)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Smallest color in `0..palette` not used by any neighbor of `v`.
    pub fn first_free_color(&self, g: &Graph, v: NodeId, palette: u32) -> Option<Color> {
        let used = self.neighbor_colors(g, v);
        let mut taken = vec![false; palette as usize];
        for c in used {
            if c.0 < palette {
                taken[c.index()] = true;
            }
        }
        taken.iter().position(|&t| !t).map(|i| Color(i as u32))
    }

    /// Checks that colored vertices never clash and stay inside `0..palette`.
    ///
    /// Uncolored vertices are permitted — this is the *partial* validity
    /// check used between pipeline phases.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_partial(&self, g: &Graph, palette: u32) -> Result<(), ColoringError> {
        if self.colors.len() != g.n() {
            return Err(ColoringError::WrongLength {
                got: self.colors.len(),
                expected: g.n(),
            });
        }
        for v in g.vertices() {
            if let Some(c) = self.get(v) {
                if c.0 >= palette {
                    return Err(ColoringError::ColorOutOfRange {
                        node: v,
                        color: c,
                        palette,
                    });
                }
                for &w in g.neighbors(v) {
                    if v < w && self.get(w) == Some(c) {
                        return Err(ColoringError::Monochromatic(v, w, c));
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks that this is a complete proper coloring with palette `0..palette`.
    ///
    /// # Errors
    ///
    /// Returns the first uncolored vertex, clash, or out-of-range color.
    pub fn check_complete(&self, g: &Graph, palette: u32) -> Result<(), ColoringError> {
        self.check_partial(g, palette)?;
        for v in g.vertices() {
            if !self.is_colored(v) {
                return Err(ColoringError::Uncolored(v));
            }
        }
        Ok(())
    }
}

/// Validates a complete Δ-coloring: proper and using at most Δ colors.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_delta_coloring(g: &Graph, coloring: &Coloring) -> Result<(), ColoringError> {
    coloring.check_complete(g, g.max_degree() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path3() -> Graph {
        Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn partial_then_complete() {
        let g = path3();
        let mut col = Coloring::empty(3);
        assert!(col.check_partial(&g, 2).is_ok());
        col.set(NodeId(0), Color(0));
        col.set(NodeId(1), Color(1));
        assert!(col.check_partial(&g, 2).is_ok());
        assert_eq!(
            col.check_complete(&g, 2),
            Err(ColoringError::Uncolored(NodeId(2)))
        );
        col.set(NodeId(2), Color(0));
        assert!(verify_delta_coloring(&g, &col).is_ok());
    }

    #[test]
    fn detects_clash() {
        let g = path3();
        let mut col = Coloring::empty(3);
        col.set(NodeId(0), Color(1));
        col.set(NodeId(1), Color(1));
        assert_eq!(
            col.check_partial(&g, 2),
            Err(ColoringError::Monochromatic(NodeId(0), NodeId(1), Color(1)))
        );
    }

    #[test]
    fn detects_out_of_palette() {
        let g = path3();
        let mut col = Coloring::empty(3);
        col.set(NodeId(0), Color(7));
        assert!(matches!(
            col.check_partial(&g, 2),
            Err(ColoringError::ColorOutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "recolored")]
    fn recoloring_panics() {
        let mut col = Coloring::empty(1);
        col.set(NodeId(0), Color(0));
        col.set(NodeId(0), Color(1));
    }

    #[test]
    fn first_free_color_skips_neighbors() {
        let g = path3();
        let mut col = Coloring::empty(3);
        col.set(NodeId(0), Color(0));
        col.set(NodeId(2), Color(1));
        assert_eq!(col.first_free_color(&g, NodeId(1), 3), Some(Color(2)));
        assert_eq!(col.first_free_color(&g, NodeId(1), 2), None);
    }

    #[test]
    fn histogram_counts_palette_only() {
        let mut col = Coloring::empty(4);
        col.set(NodeId(0), Color(1));
        col.set(NodeId(1), Color(1));
        col.set(NodeId(2), Color(9)); // outside palette: not counted
        assert_eq!(col.histogram(3), vec![0, 2, 0]);
    }

    #[test]
    fn neighbor_colors_dedup() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        let mut col = Coloring::empty(4);
        col.set(NodeId(1), Color(5));
        col.set(NodeId(2), Color(5));
        assert_eq!(col.neighbor_colors(&g, NodeId(0)), vec![Color(5)]);
    }
}
