//! Graph substrate and generators for distributed Δ-coloring experiments.
//!
//! This crate provides the static, immutable graph type every other crate in
//! the workspace runs on ([`Graph`]), vertex colorings and their validators
//! ([`coloring`]), structural analysis helpers ([`analysis`]), and — most
//! importantly for the reproduction — generators for the *dense* graph
//! families the paper reasons about ([`generators`]):
//!
//! * [`generators::hard_cliques`] builds graphs whose almost-clique
//!   decomposition consists exclusively of **hard cliques**
//!   (Definition 8 of the paper): Δ-regular graphs made of cliques with at
//!   most one edge between any pair of cliques and no loophole on at most
//!   six vertices.
//! * [`generators::easy_cliques`] and [`generators::mixed_dense`] plant
//!   controlled loopholes (low-degree vertices, non-clique four-cycles) to
//!   exercise the easy-clique pipeline.
//! * Classic families (paths, cycles, regular graphs, hypercubes, trees)
//!   serve as controls for the baselines and subroutine benchmarks.
//!
//! # Example
//!
//! ```
//! use graphgen::generators;
//!
//! let inst = generators::hard_cliques(&generators::HardCliqueParams {
//!     cliques: 70,
//!     delta: 32,
//!     external_per_vertex: 1,
//!     seed: 7,
//! })?;
//! assert!(inst.graph.n() > 0);
//! assert_eq!(inst.graph.max_degree(), 32);
//! # Ok::<(), graphgen::GraphError>(())
//! ```

mod builder;
mod graph;

pub mod analysis;
pub mod coloring;
pub mod generators;
pub mod io;

pub use builder::GraphBuilder;
pub use coloring::{Color, Coloring, ColoringError};
pub use graph::{Graph, GraphError, NodeId, SubgraphArena};
