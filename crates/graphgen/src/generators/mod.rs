//! Graph generators: classic control families and the paper's dense
//! hard/easy almost-clique families.

mod classic;
mod dense;
mod mixed;

pub use classic::{
    clique_ring, complete, complete_bipartite, cycle, gnp, grid, hypercube, isolated_cliques, path,
    random_regular, random_tree, star,
};
pub use dense::{
    bipartite_regular_blueprint, circulant_blueprint, easy_cliques, hard_cliques,
    hard_cliques_with_blueprint, mixed_dense, verify_hard_instance, BlueprintKind,
    EasyCliqueParams, HardCliqueInstance, HardCliqueParams, LoopholeKind, MixedParams,
};
pub use mixed::{sparse_dense_mix, SparseDenseInstance, SparseDenseParams};
