//! Classic graph families used as controls for baselines and subroutine
//! benchmarks: paths, cycles, cliques, hypercubes, random regular graphs,
//! random trees, and Erdős–Rényi graphs.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{Graph, GraphBuilder, NodeId};

/// A path on `n` vertices.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(
        n,
        (0..n.saturating_sub(1)).map(|i| (i as u32, i as u32 + 1)),
    )
    .expect("path is valid")
}

/// A cycle on `n >= 3` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    Graph::from_edges(n, (0..n).map(|i| (i as u32, ((i + 1) % n) as u32))).expect("cycle is valid")
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    b.add_clique(&(0..n).map(NodeId::from).collect::<Vec<_>>());
    b.build().expect("complete graph is valid")
}

/// The complete bipartite graph `K_{a,b}` (left: `0..a`, right: `a..a+b`).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for i in 0..a {
        for j in 0..b {
            builder.add_edge(i, a + j);
        }
    }
    builder.build().expect("complete bipartite graph is valid")
}

/// A star with one center (vertex 0) and `leaves` leaves.
pub fn star(leaves: usize) -> Graph {
    Graph::from_edges(leaves + 1, (1..=leaves).map(|i| (0, i as u32))).expect("star is valid")
}

/// The `d`-dimensional hypercube on `2^d` vertices.
pub fn hypercube(d: usize) -> Graph {
    let n = 1usize << d;
    let mut edges = Vec::new();
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if v < w {
                edges.push((v as u32, w as u32));
            }
        }
    }
    Graph::from_edges(n, edges).expect("hypercube is valid")
}

/// A `w × h` grid graph.
pub fn grid(w: usize, h: usize) -> Graph {
    let idx = |x: usize, y: usize| (y * w + x) as u32;
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((idx(x, y), idx(x, y + 1)));
            }
        }
    }
    Graph::from_edges(w * h, edges).expect("grid is valid")
}

/// A ring of `m` Δ-cliques: clique `k` is joined to clique `k+1 (mod m)`
/// by a perfect matching on half of their vertices, making the graph
/// Δ-regular with diameter `Θ(m)`.
///
/// The doubled inter-clique connections create non-clique 4-cycles, so
/// every clique is an *easy* almost-clique — a dense, loophole-rich,
/// high-diameter family on which single-slack-source algorithms pay their
/// `Θ(diameter)` price.
///
/// # Panics
///
/// Panics unless `delta` is even, `delta >= 4`, and `m >= 3`.
pub fn clique_ring(m: usize, delta: usize) -> Graph {
    assert!(
        delta.is_multiple_of(2) && delta >= 4,
        "delta must be even and at least 4"
    );
    assert!(m >= 3, "need at least 3 cliques in the ring");
    let mut b = GraphBuilder::new(m * delta);
    let vertex = |k: usize, j: usize| NodeId::from((k % m) * delta + j);
    for k in 0..m {
        let members: Vec<NodeId> = (0..delta).map(|j| vertex(k, j)).collect();
        b.add_clique(&members);
        // First half of clique k matches the second half of clique k+1.
        for j in 0..delta / 2 {
            b.add_edge(vertex(k, j), vertex(k + 1, delta / 2 + j));
        }
    }
    b.build().expect("clique ring is valid")
}

/// A disjoint union of `m` cliques of `size` vertices each.
///
/// For `Δ = size - 1 < 63` these are exactly the graphs the paper classifies
/// as dense (Definition 4 discussion): isolated cliques.
pub fn isolated_cliques(m: usize, size: usize) -> Graph {
    let mut b = GraphBuilder::new(m * size);
    for c in 0..m {
        let nodes: Vec<NodeId> = (c * size..(c + 1) * size).map(NodeId::from).collect();
        b.add_clique(&nodes);
    }
    b.build().expect("isolated cliques are valid")
}

/// A uniformly random labelled tree on `n` vertices (random attachment).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        edges.push((parent as u32, v as u32));
    }
    Graph::from_edges(n, edges).expect("tree is valid")
}

/// An Erdős–Rényi `G(n, p)` graph.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen_bool(p) {
                edges.push((u as u32, v as u32));
            }
        }
    }
    Graph::from_edges(n, edges).expect("gnp is valid")
}

/// A random simple `d`-regular graph via the configuration model with
/// duplicate/self-loop repair by edge swaps.
///
/// # Panics
///
/// Panics if `n·d` is odd or `d >= n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(
        (n * d).is_multiple_of(2),
        "n*d must be even for a d-regular graph"
    );
    assert!(d < n, "degree must be below n");
    let mut rng = StdRng::seed_from_u64(seed);
    'attempt: for _ in 0..200 {
        let mut stubs: Vec<u32> = (0..n as u32)
            .flat_map(|v| std::iter::repeat_n(v, d))
            .collect();
        stubs.shuffle(&mut rng);
        let mut edges: Vec<(u32, u32)> = stubs
            .chunks(2)
            .map(|c| (c[0].min(c[1]), c[0].max(c[1])))
            .collect();
        // Repair self loops and duplicates with random two-edge swaps.
        for _ in 0..(50 * n * d + 1000) {
            let mut seen = std::collections::HashSet::with_capacity(edges.len());
            let mut bad = None;
            for (i, &(a, b)) in edges.iter().enumerate() {
                if a == b || !seen.insert((a, b)) {
                    bad = Some(i);
                    break;
                }
            }
            let Some(i) = bad else {
                return Graph::from_edges(n, edges).expect("repaired regular graph is valid");
            };
            let j = rng.gen_range(0..edges.len());
            if i == j {
                continue;
            }
            let (a, b) = edges[i];
            let (c, dd) = edges[j];
            edges[i] = (a.min(dd), a.max(dd));
            edges[j] = (c.min(b), c.max(b));
        }
        continue 'attempt;
    }
    panic!("failed to generate a simple {d}-regular graph on {n} vertices");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn path_cycle_shapes() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert!(analysis::is_regular(&cycle(7), 2));
    }

    #[test]
    fn complete_and_bipartite() {
        assert_eq!(complete(5).m(), 10);
        let kb = complete_bipartite(3, 4);
        assert_eq!(kb.m(), 12);
        assert_eq!(analysis::girth(&kb), Some(4));
    }

    #[test]
    fn hypercube_regular() {
        let h = hypercube(4);
        assert_eq!(h.n(), 16);
        assert!(analysis::is_regular(&h, 4));
        assert_eq!(analysis::girth(&h), Some(4));
    }

    #[test]
    fn grid_degrees() {
        let g = grid(3, 3);
        assert_eq!(g.n(), 9);
        assert_eq!(g.m(), 12);
        assert_eq!(g.degree(NodeId(4)), 4); // center
        assert_eq!(g.degree(NodeId(0)), 2); // corner
    }

    #[test]
    fn clique_ring_regular_high_diameter() {
        let g = clique_ring(10, 6);
        assert_eq!(g.n(), 60);
        assert!(analysis::is_regular(&g, 6));
        assert!(g.is_connected());
        assert!(
            g.diameter_from(NodeId(0)) >= 5,
            "ring diameter grows with m"
        );
    }

    #[test]
    fn isolated_cliques_shape() {
        let g = isolated_cliques(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 18);
        assert!(analysis::is_regular(&g, 3));
        assert_eq!(g.components().len(), 3);
    }

    #[test]
    fn random_tree_is_tree() {
        let t = random_tree(50, 3);
        assert_eq!(t.m(), 49);
        assert!(t.is_connected());
    }

    #[test]
    fn random_regular_is_regular_and_simple() {
        for seed in 0..5 {
            let g = random_regular(40, 7, seed);
            assert!(analysis::is_regular(&g, 7), "seed {seed}");
        }
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).m(), 0);
        assert_eq!(gnp(10, 1.0, 1).m(), 45);
    }
}
