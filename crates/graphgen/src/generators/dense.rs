//! Generators for the paper's *dense* graph families.
//!
//! A **hard** dense instance (Definition 8 + Lemma 9 of the paper) is a
//! Δ-regular graph partitioned into cliques such that
//!
//! 1. every almost-clique of the ACD is a true clique,
//! 2. every vertex has exactly `e_C = Δ − |C| + 1` neighbors outside its
//!    clique,
//! 3. no vertex outside a clique has two neighbors inside it (equivalently:
//!    at most one edge between any pair of cliques), and
//! 4. no *loophole* on at most six vertices exists — no vertex of degree
//!    `< Δ` and no non-clique even cycle of length 4 or 6.
//!
//! We realize such instances from a *blueprint*: a simple
//! `(|C|·ext)`-regular **bipartite** multigraph-made-simple whose nodes are
//! cliques and whose edges become single vertex-to-vertex edges. Bipartite
//! blueprints have no triangles, which (together with simplicity) rules out
//! most short even cycles. The remaining bad patterns — blueprint 4-cycles
//! or 6-cycles whose consecutive edges land on a *shared* vertex inside a
//! clique — can only occur for `ext ≥ 2` and are removed by a detection and
//! reassignment repair loop.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::analysis;
use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// Which blueprint joins the cliques of a hard instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BlueprintKind {
    /// A random regular bipartite blueprint: an expander, so the instance
    /// has `O(log_Δ m)` clique-graph diameter. The default.
    #[default]
    Random,
    /// A circulant bipartite blueprint (left `i` joins right `i+1..i+d`):
    /// locally structured, clique-graph diameter `Θ(m / Δ)` — the family
    /// on which shattering and diameter-bound baselines are visible.
    Circulant,
}

/// Parameters for [`hard_cliques`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardCliqueParams {
    /// Number of cliques `m` (must be even and large enough for the
    /// blueprint to exist: `m / 2 ≥ |C| · external_per_vertex`).
    pub cliques: usize,
    /// Maximum degree Δ of the generated graph.
    pub delta: usize,
    /// External edges per vertex (`e_C` in the paper); clique size is
    /// `Δ + 1 − e_C`.
    pub external_per_vertex: usize,
    /// RNG seed; generation is deterministic per seed.
    pub seed: u64,
}

/// Which kind of loophole [`easy_cliques`] plants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopholeKind {
    /// Delete one intra-clique edge, creating two vertices of degree `Δ−1`
    /// (Definition 6, case 1).
    LowDegree,
    /// Rewire external edges so one clique pair is joined by two edges,
    /// creating a non-clique 4-cycle (Definition 6, case 2).
    FourCycle,
}

/// Parameters for [`easy_cliques`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EasyCliqueParams {
    /// The underlying hard instance to start from.
    pub base: HardCliqueParams,
    /// How many cliques receive a planted loophole.
    pub easy: usize,
    /// The kind of loophole planted.
    pub kind: LoopholeKind,
}

/// Parameters for [`mixed_dense`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MixedParams {
    /// The underlying hard instance to start from.
    pub base: HardCliqueParams,
    /// How many cliques receive a low-degree loophole.
    pub easy_low_degree: usize,
    /// How many cliques receive a four-cycle loophole.
    pub easy_four_cycle: usize,
}

/// A generated dense instance: the graph plus its intended clique structure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HardCliqueInstance {
    /// The generated graph.
    pub graph: Graph,
    /// Vertex sets of the cliques, each sorted.
    pub cliques: Vec<Vec<NodeId>>,
    /// For each vertex, the index of its clique in `cliques`.
    pub clique_of: Vec<u32>,
    /// Maximum degree Δ.
    pub delta: usize,
    /// External edges per vertex.
    pub external_per_vertex: usize,
    /// Indices of cliques that were deliberately made easy (empty for pure
    /// hard instances). Note a planted `FourCycle` loophole makes *both*
    /// endpointclique s easy; both indices are listed.
    pub planted_easy: Vec<usize>,
}

impl HardCliqueInstance {
    /// The clique index of vertex `v`.
    pub fn clique_index(&self, v: NodeId) -> usize {
        self.clique_of[v.index()] as usize
    }

    /// All edges whose endpoints lie in different cliques.
    pub fn external_edges(&self) -> Vec<(NodeId, NodeId)> {
        self.graph
            .edges()
            .filter(|&(u, v)| self.clique_of[u.index()] != self.clique_of[v.index()])
            .collect()
    }
}

/// A simple `d`-regular bipartite graph on `half + half` nodes, as an edge
/// list of `(left, right)` pairs with both sides indexed `0..half`.
///
/// Built as a union of `d` random permutations with duplicate repair by
/// random transpositions.
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleParameters`] if `d > half`.
pub fn bipartite_regular_blueprint(
    half: usize,
    d: usize,
    rng: &mut StdRng,
) -> Result<Vec<(u32, u32)>, GraphError> {
    if d > half {
        return Err(GraphError::InfeasibleParameters(format!(
            "bipartite {d}-regular blueprint needs at least {d} cliques per side, got {half}"
        )));
    }
    if d == half {
        // Complete bipartite: the unique d-regular graph in this case.
        let mut edges = Vec::with_capacity(half * d);
        for l in 0..half as u32 {
            for r in 0..half as u32 {
                edges.push((l, r));
            }
        }
        return Ok(edges);
    }
    if half >= 2 * d {
        if let Some(edges) = permutation_blueprint(half, d, rng) {
            return Ok(edges);
        }
    }
    // Tight regime (or heuristic failure): build d edge-disjoint perfect
    // matchings exactly. After removing k perfect matchings the remaining
    // allowed bipartite graph is (half-k)-regular, so by Hall's theorem a
    // perfect matching always exists and Kuhn's augmenting search finds it.
    exact_matching_blueprint(half, d, rng)
}

/// Fast path: union of `d` random permutations, de-duplicated by random
/// transposition sweeps. Returns `None` if sweeps fail to converge.
fn permutation_blueprint(half: usize, d: usize, rng: &mut StdRng) -> Option<Vec<(u32, u32)>> {
    let mut perms: Vec<Vec<u32>> = (0..d)
        .map(|_| {
            let mut p: Vec<u32> = (0..half as u32).collect();
            p.shuffle(rng);
            p
        })
        .collect();
    for _ in 0..200 {
        // One sweep: find all duplicated (l, r) pairs and break each.
        let mut seen = std::collections::HashSet::with_capacity(half * d);
        let mut dups: Vec<(usize, usize)> = Vec::new();
        for (k, p) in perms.iter().enumerate() {
            for (l, &r) in p.iter().enumerate() {
                if !seen.insert((l as u32, r)) {
                    dups.push((k, l));
                }
            }
        }
        if dups.is_empty() {
            let mut edges = Vec::with_capacity(half * d);
            for p in &perms {
                for (l, &r) in p.iter().enumerate() {
                    edges.push((l as u32, r));
                }
            }
            return Some(edges);
        }
        for (k, l) in dups {
            let l2 = rng.gen_range(0..half);
            perms[k].swap(l, l2);
        }
    }
    None
}

/// Exact path: `d` edge-disjoint perfect matchings via Kuhn's augmenting
/// search with randomized scan order.
fn exact_matching_blueprint(
    half: usize,
    d: usize,
    rng: &mut StdRng,
) -> Result<Vec<(u32, u32)>, GraphError> {
    let mut used = vec![vec![false; half]; half]; // used[l][r]
    let mut edges = Vec::with_capacity(half * d);
    for _round in 0..d {
        let mut match_of_right: Vec<Option<u32>> = vec![None; half];
        let mut order: Vec<u32> = (0..half as u32).collect();
        order.shuffle(rng);
        for &l in &order {
            let mut visited = vec![false; half];
            if !kuhn_augment(l, &used, &mut match_of_right, &mut visited, rng)? {
                return Err(GraphError::InfeasibleParameters(format!(
                    "no perfect matching while building bipartite {d}-regular blueprint \
                     on {half}+{half} nodes"
                )));
            }
        }
        for (r, l) in match_of_right.iter().enumerate() {
            let Some(l) = *l else {
                return Err(GraphError::InfeasibleParameters(format!(
                    "bipartite {d}-regular blueprint left right vertex {r} unmatched \
                     on {half}+{half} nodes"
                )));
            };
            used[l as usize][r] = true;
            edges.push((l, r as u32));
        }
    }
    Ok(edges)
}

fn kuhn_augment(
    l: u32,
    used: &[Vec<bool>],
    match_of_right: &mut [Option<u32>],
    visited: &mut [bool],
    rng: &mut StdRng,
) -> Result<bool, GraphError> {
    let half = match_of_right.len();
    // Iterative DFS with an explicit stack: in the tight regime an
    // augmenting path can reach depth `half`, which the recursive form
    // answered with a thread-stack overflow on adversarial blueprint
    // parameters. Each frame is (left vertex, randomized scan start,
    // candidates scanned so far); `trail[k]` is the right vertex frame
    // `k` has committed to, so the trail doubles as the alternating path
    // to flip on success. The scan-start draws happen in the same
    // pre-order positions as the recursive calls did, so the RNG stream
    // (and every generated blueprint) is unchanged.
    let mut stack: Vec<(u32, usize, usize)> = vec![(l, rng.gen_range(0..half), 0)];
    let mut trail: Vec<usize> = Vec::with_capacity(half);
    while let Some(frame) = stack.last_mut() {
        let (cur_l, start, tried) = *frame;
        let mut chosen = None;
        let mut i = tried;
        while i < half {
            let r = (start + i) % half;
            i += 1;
            if !used[cur_l as usize][r] && !visited[r] {
                chosen = Some(r);
                break;
            }
        }
        frame.2 = i;
        let Some(r) = chosen else {
            // Every candidate exhausted: backtrack, un-committing the
            // parent's right-vertex choice.
            stack.pop();
            trail.pop();
            continue;
        };
        visited[r] = true;
        trail.push(r);
        match match_of_right[r] {
            None => {
                // A free right vertex ends the alternating path: flip
                // the matching along the trail.
                for (k, &(ll, _, _)) in stack.iter().enumerate() {
                    match_of_right[trail[k]] = Some(ll);
                }
                return Ok(true);
            }
            Some(prev) => {
                if stack.len() > half {
                    // Unreachable for consistent inputs (every frame owns
                    // a distinct `visited` right vertex); a typed guard
                    // against corrupted matching state instead of a panic.
                    return Err(GraphError::InfeasibleParameters(format!(
                        "matching search exceeded depth {half} while building a \
                         bipartite blueprint"
                    )));
                }
                stack.push((prev, rng.gen_range(0..half), 0));
            }
        }
    }
    Ok(false)
}

/// A circulant bipartite `d`-regular blueprint: left `i` joins rights
/// `i+1 ..= i+d (mod half)`. Locally structured, diameter `Θ(half / d)`.
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleParameters`] if `d >= half`.
pub fn circulant_blueprint(half: usize, d: usize) -> Result<Vec<(u32, u32)>, GraphError> {
    if d >= half {
        return Err(GraphError::InfeasibleParameters(format!(
            "circulant {d}-regular blueprint needs more than {d} cliques per side, got {half}"
        )));
    }
    let mut edges = Vec::with_capacity(half * d);
    for i in 0..half as u32 {
        for j in 1..=d as u32 {
            edges.push((i, (i + j) % half as u32));
        }
    }
    Ok(edges)
}

/// Mutable intermediate representation during generation and repair.
struct Assembly {
    /// Clique vertex sets (global ids), each of size `c`.
    cliques: Vec<Vec<NodeId>>,
    clique_of: Vec<u32>,
    /// External edges as global vertex pairs.
    external: Vec<(NodeId, NodeId)>,
}

impl Assembly {
    fn build_graph(&self) -> Result<Graph, GraphError> {
        let mut b = GraphBuilder::new(self.clique_of.len());
        for c in &self.cliques {
            b.add_clique(c);
        }
        for &(u, v) in &self.external {
            b.add_edge(u, v);
        }
        b.build()
    }
}

/// Generates a graph that is a disjoint union of Δ-cliques joined so that
/// **every** almost-clique is a hard clique (Definition 8).
///
/// See the module documentation for the construction. For
/// `external_per_vertex == 1` the construction is loophole-free by design;
/// for larger values a repair loop removes residual short even cycles.
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleParameters`] if the clique count is odd,
/// the clique size would be `< 2`, the blueprint cannot exist, or the
/// repair loop fails to converge (extremely tight parameters).
pub fn hard_cliques(params: &HardCliqueParams) -> Result<HardCliqueInstance, GraphError> {
    hard_cliques_with_blueprint(params, BlueprintKind::Random)
}

/// [`hard_cliques`] with an explicit [`BlueprintKind`].
///
/// # Errors
///
/// As [`hard_cliques`].
pub fn hard_cliques_with_blueprint(
    params: &HardCliqueParams,
    kind: BlueprintKind,
) -> Result<HardCliqueInstance, GraphError> {
    let &HardCliqueParams {
        cliques: m,
        delta,
        external_per_vertex: ext,
        seed,
    } = params;
    if m < 2 || m % 2 != 0 {
        return Err(GraphError::InfeasibleParameters(format!(
            "clique count must be even and >= 2, got {m}"
        )));
    }
    if ext == 0 || ext > delta {
        return Err(GraphError::InfeasibleParameters(format!(
            "external_per_vertex must be in 1..=delta, got {ext}"
        )));
    }
    let c = delta + 1 - ext; // clique size
    if c < 2 {
        return Err(GraphError::InfeasibleParameters(format!(
            "clique size delta+1-ext = {c} is too small"
        )));
    }
    let d_bp = c * ext; // blueprint degree
    let mut rng = StdRng::seed_from_u64(seed);
    for attempt in 0..20 {
        let mut sub_rng =
            StdRng::seed_from_u64(seed.wrapping_add(0x9e37_79b9).wrapping_mul(attempt + 1));
        match try_hard_cliques(m, delta, ext, c, d_bp, kind, &mut sub_rng) {
            Ok(inst) => return Ok(inst),
            Err(GraphError::InfeasibleParameters(msg)) if attempt == 19 => {
                return Err(GraphError::InfeasibleParameters(msg))
            }
            Err(_) => continue,
        }
    }
    let _ = &mut rng;
    unreachable!("loop either returns an instance or the final error")
}

fn try_hard_cliques(
    m: usize,
    delta: usize,
    ext: usize,
    c: usize,
    d_bp: usize,
    kind: BlueprintKind,
    rng: &mut StdRng,
) -> Result<HardCliqueInstance, GraphError> {
    let half = m / 2;
    let blueprint = match kind {
        BlueprintKind::Random => bipartite_regular_blueprint(half, d_bp, rng)?,
        BlueprintKind::Circulant => circulant_blueprint(half, d_bp)?,
    };

    // Clique k occupies vertices k*c .. (k+1)*c. Left cliques are 0..half,
    // right cliques are half..m.
    let cliques: Vec<Vec<NodeId>> = (0..m)
        .map(|k| (k * c..(k + 1) * c).map(NodeId::from).collect())
        .collect();
    let mut clique_of = vec![0u32; m * c];
    for (k, cl) in cliques.iter().enumerate() {
        for &v in cl {
            clique_of[v.index()] = k as u32;
        }
    }

    // Assign each clique's incident blueprint edges to its vertices,
    // `ext` edges per vertex, avoiding the corner-sharing patterns that
    // would create 4- or 6-vertex loophole cycles (see the module docs).
    let external = assign_blueprint_edges(m, half, c, ext, &blueprint, rng)?;
    let _ = d_bp;

    let mut asm = Assembly {
        cliques,
        clique_of,
        external,
    };

    // Backstop repair: the constructive assignment avoids all known bad
    // patterns, but we keep a detection/repair loop for defense in depth
    // when vertices carry several external edges.
    if ext >= 2 {
        repair_short_cycles(&mut asm, rng)?;
    }

    let graph = asm.build_graph()?;
    debug_assert!(analysis::is_regular(&graph, delta));
    Ok(HardCliqueInstance {
        graph,
        cliques: asm.cliques,
        clique_of: asm.clique_of,
        delta,
        external_per_vertex: ext,
        planted_easy: Vec::new(),
    })
}

/// Assigns each clique's incident blueprint edges to its vertices (`ext`
/// per vertex) while avoiding corner-sharing patterns.
///
/// A graph-level loophole cycle on ≤ 6 vertices arises exactly when a
/// blueprint 4-cycle has an even positive number of *sharing corners*
/// (corners whose two cycle edges are held by the same vertex) or when a
/// blueprint 6-cycle shares at all six corners. The greedy below builds
/// each vertex's target set one clique at a time, rejecting any target
/// that would create a second sharing corner on some blueprint 4-cycle or
/// complete an all-sharing 6-cycle. Since with one sharing corner a cycle
/// of the dangerous kind has odd graph length, the result is loophole-free.
fn assign_blueprint_edges(
    m: usize,
    half: usize,
    c: usize,
    ext: usize,
    blueprint: &[(u32, u32)],
    rng: &mut StdRng,
) -> Result<Vec<(NodeId, NodeId)>, GraphError> {
    // Blueprint adjacency over clique ids 0..m (left l, right half + r).
    let mut bp_adj: Vec<Vec<u32>> = vec![Vec::new(); m];
    for &(l, r) in blueprint {
        bp_adj[l as usize].push((half + r as usize) as u32);
        bp_adj[half + r as usize].push(l);
    }
    for a in &mut bp_adj {
        a.sort_unstable();
    }
    let bp_has = |a: u32, b: u32| bp_adj[a as usize].binary_search(&b).is_ok();

    // holder[(a, b)] = local vertex index in clique a holding edge {a, b}.
    let mut holder: std::collections::HashMap<(u32, u32), u32> = std::collections::HashMap::new();
    // sets[k] = target sets per vertex, filled once clique k is assigned.
    let mut sets: Vec<Vec<Vec<u32>>> = vec![Vec::new(); m];
    let assigned = |sets: &Vec<Vec<Vec<u32>>>, k: u32| !sets[k as usize].is_empty();

    // For each clique in random order, group its targets into vertex sets.
    let mut order: Vec<u32> = (0..m as u32).collect();
    order.shuffle(rng);
    for &a in &order {
        let targets = bp_adj[a as usize].clone();
        let Some(groups) =
            group_targets(a, &targets, c, ext, &bp_adj, &holder, &sets, &bp_has, rng)
        else {
            return Err(GraphError::InfeasibleParameters(format!(
                "could not find a loophole-free edge assignment for clique {a}"
            )));
        };
        // Commit.
        for (j, g) in groups.iter().enumerate() {
            for &t in g {
                holder.insert((a, t), j as u32);
            }
        }
        sets[a as usize] = groups;
        let _ = assigned;
    }

    // Materialize graph edges: clique k occupies vertices k*c..(k+1)*c.
    let mut external = Vec::with_capacity(blueprint.len());
    for &(l, r) in blueprint {
        let a = l;
        let b = (half + r as usize) as u32;
        let ua = holder[&(a, b)];
        let ub = holder[&(b, a)];
        external.push((NodeId(a * c as u32 + ua), NodeId(b * c as u32 + ub)));
    }
    Ok(external)
}

/// Partitions `targets` into `c` groups of size `ext` with no conflicting
/// pair sharing a group, by local search: start from a random partition and
/// repeatedly swap members across groups while the number of conflicting
/// co-located pairs decreases.
#[allow(clippy::too_many_arguments)]
fn group_targets(
    a: u32,
    targets: &[u32],
    c: usize,
    ext: usize,
    bp_adj: &[Vec<u32>],
    holder: &std::collections::HashMap<(u32, u32), u32>,
    sets: &[Vec<Vec<u32>>],
    bp_has: &impl Fn(u32, u32) -> bool,
    rng: &mut StdRng,
) -> Option<Vec<Vec<u32>>> {
    let pair_conflict = |x: u32, y: u32| {
        creates_conflict(a, &[x], y, bp_adj, holder, sets, bp_has)
            || creates_conflict(a, &[y], x, bp_adj, holder, sets, bp_has)
    };
    let group_cost = |g: &[u32]| {
        let mut cost = 0usize;
        for (i, &x) in g.iter().enumerate() {
            for &y in &g[i + 1..] {
                if pair_conflict(x, y) {
                    cost += 1;
                }
            }
        }
        cost
    };
    for _restart in 0..8 {
        let mut shuffled = targets.to_vec();
        shuffled.shuffle(rng);
        let mut groups: Vec<Vec<u32>> = shuffled.chunks(ext).map(<[u32]>::to_vec).collect();
        debug_assert_eq!(groups.len(), c);
        let mut costs: Vec<usize> = groups.iter().map(|g| group_cost(g)).collect();
        let mut total: usize = costs.iter().sum();
        if ext == 1 {
            return Some(groups); // singleton groups cannot conflict
        }
        for _iter in 0..20_000 {
            if total == 0 {
                return Some(groups);
            }
            // Pick a conflicted group and try swapping one member with a
            // member of a random other group.
            let gi = (0..groups.len())
                .filter(|&i| costs[i] > 0)
                .max_by_key(|&i| costs[i])
                .expect("total > 0 implies a conflicted group");
            let gj = rng.gen_range(0..groups.len());
            if gi == gj {
                continue;
            }
            let pi = rng.gen_range(0..groups[gi].len());
            let pj = rng.gen_range(0..groups[gj].len());
            let (old_i, old_j) = (costs[gi], costs[gj]);
            let (vi, vj) = (groups[gi][pi], groups[gj][pj]);
            groups[gi][pi] = vj;
            groups[gj][pj] = vi;
            let (new_i, new_j) = (group_cost(&groups[gi]), group_cost(&groups[gj]));
            if new_i + new_j < old_i + old_j
                || (new_i + new_j == old_i + old_j && rng.gen_bool(0.3))
            {
                costs[gi] = new_i;
                costs[gj] = new_j;
                total = total + new_i + new_j - old_i - old_j;
            } else {
                groups[gi][pi] = vi;
                groups[gj][pj] = vj;
            }
        }
    }
    None
}

/// Would adding target `t` to the partial set `s` of a vertex in clique `a`
/// create a forbidden sharing pattern?
#[allow(clippy::too_many_arguments)]
fn creates_conflict(
    a: u32,
    s: &[u32],
    t: u32,
    bp_adj: &[Vec<u32>],
    holder: &std::collections::HashMap<(u32, u32), u32>,
    sets: &[Vec<Vec<u32>>],
    bp_has: &impl Fn(u32, u32) -> bool,
) -> bool {
    let set_of = |x: u32, towards: u32| -> Option<&Vec<u32>> {
        holder
            .get(&(x, towards))
            .map(|&j| &sets[x as usize][j as usize])
    };
    for &b in s {
        // Opposite corner: some clique cc adjacent to both b and t already
        // pairs {b, t} (4-cycle a-b-cc-t with two opposite shares).
        let (mut i, mut j) = (0, 0);
        let (nb, nt) = (&bp_adj[b as usize], &bp_adj[t as usize]);
        while i < nb.len() && j < nt.len() {
            match nb[i].cmp(&nt[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let cc = nb[i];
                    if cc != a {
                        if let Some(hb) = holder.get(&(cc, b)) {
                            if holder.get(&(cc, t)) == Some(hb) {
                                return true;
                            }
                        }
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        // Adjacent corner via b: b's vertex holding {b, a} also targets some
        // z adjacent to t (4-cycle a-b-z-t sharing at corners a and b).
        if let Some(sb) = set_of(b, a) {
            for &z in sb {
                if z != a && bp_has(z, t) {
                    return true;
                }
                // All-sharing 6-cycle a-b-z-w-y-t: corners b, z, w, y, t all
                // share; probe the chain through assigned cliques.
                if z != a {
                    if let Some(sz) = set_of(z, b) {
                        for &w in sz {
                            if w == b {
                                continue;
                            }
                            if let Some(sw) = set_of(w, z) {
                                for &y in sw {
                                    if y == z {
                                        continue;
                                    }
                                    if let Some(st) = set_of(t, a) {
                                        if y != a && st.contains(&y) {
                                            return true;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        // Adjacent corner via t (mirror case).
        if let Some(st) = set_of(t, a) {
            for &z in st {
                if z != a && bp_has(z, b) {
                    return true;
                }
            }
        }
    }
    false
}

/// Removes every non-clique even cycle of length 4 or 6 by reassigning
/// external edges between clique-mates.
fn repair_short_cycles(asm: &mut Assembly, rng: &mut StdRng) -> Result<(), GraphError> {
    for _ in 0..500 {
        let graph = asm.build_graph()?;
        let Some(cycle) = find_short_loophole_cycle(&graph, &asm.clique_of) else {
            return Ok(());
        };
        // Pick an external edge on the cycle and hand one of its endpoints'
        // external edges to a random clique-mate (swapping one back).
        let mut ext_on_cycle: Vec<(NodeId, NodeId)> = Vec::new();
        for i in 0..cycle.len() {
            let (u, v) = (cycle[i], cycle[(i + 1) % cycle.len()]);
            if asm.clique_of[u.index()] != asm.clique_of[v.index()] {
                ext_on_cycle.push((u, v));
            }
        }
        let &(u, _v) = ext_on_cycle
            .choose(rng)
            .expect("loophole cycles contain at least one external edge");
        let cid = asm.clique_of[u.index()] as usize;
        let u2 = *asm.cliques[cid].choose(rng).expect("cliques are nonempty");
        if u2 == u {
            continue;
        }
        // Collect indices of external edges incident to u and to u2.
        let idx_u: Vec<usize> = asm
            .external
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| a == u || b == u)
            .map(|(i, _)| i)
            .collect();
        let idx_u2: Vec<usize> = asm
            .external
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| a == u2 || b == u2)
            .map(|(i, _)| i)
            .collect();
        let &i = idx_u.choose(rng).expect("every vertex has external edges");
        let &j = idx_u2.choose(rng).expect("every vertex has external edges");
        let swap_endpoint = |edge: &mut (NodeId, NodeId), from: NodeId, to: NodeId| {
            if edge.0 == from {
                edge.0 = to;
            } else {
                edge.1 = to;
            }
        };
        let (mut e_i, mut e_j) = (asm.external[i], asm.external[j]);
        swap_endpoint(&mut e_i, u, u2);
        swap_endpoint(&mut e_j, u2, u);
        asm.external[i] = e_i;
        asm.external[j] = e_j;
    }
    Err(GraphError::InfeasibleParameters(
        "short-cycle repair did not converge; parameters too tight".to_string(),
    ))
}

/// Searches for a non-clique even cycle on 4 or 6 vertices that uses at
/// least one inter-clique edge.
///
/// Given the other hard-clique invariants (pairwise-single inter-clique
/// edges, no outside vertex with two neighbors in a clique), these are the
/// only loophole cycles that can exist; see the module documentation.
/// Cost is `O(n · ext² · (Δ·ext)²)` — intended for generation-time repair
/// and test-time verification, not for the large benchmark instances
/// (which use `ext == 1` and need no search).
pub(crate) fn find_short_loophole_cycle(g: &Graph, clique_of: &[u32]) -> Option<Vec<NodeId>> {
    let is_external = |a: NodeId, b: NodeId| clique_of[a.index()] != clique_of[b.index()];
    // Case 0: two external edges between the same clique pair (or a vertex
    // with two neighbors in one clique) close a 4-cycle through two intra
    // edges (or one wedge). Detected separately because no single apex
    // carries two cycle-external edges.
    for u in g.vertices() {
        for &v in g.neighbors(u) {
            if !is_external(u, v) {
                continue;
            }
            for &u2 in g.neighbors(u) {
                if u2 == v || is_external(u, u2) {
                    continue;
                }
                for &v2 in g.neighbors(u2) {
                    if v2 == u || v2 == v || !is_external(u2, v2) {
                        continue;
                    }
                    if clique_of[v2.index()] != clique_of[v.index()] || !g.has_edge(v2, v) {
                        continue;
                    }
                    // u - u2 intra, u2 - v2 external, v2 - v intra, v - u
                    // external: a 4-cycle across one clique pair.
                    let cycle = vec![u, u2, v2, v];
                    if !analysis::is_clique(g, &cycle) {
                        return Some(cycle);
                    }
                }
            }
        }
    }
    for v in g.vertices() {
        let ext_nbrs: Vec<NodeId> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| is_external(v, w))
            .collect();
        // Wedge x - v - y over two distinct external edges; search for a
        // path x..y of length 2 or 4 avoiding v, with intra edges never
        // consecutive (consecutive intras would imply two edges between one
        // clique pair, which invariant (3) already excludes).
        for (i, &x) in ext_nbrs.iter().enumerate() {
            for &y in &ext_nbrs[i + 1..] {
                if let Some(mut path) = find_path(g, clique_of, x, y, v) {
                    let mut cycle = vec![v];
                    cycle.append(&mut path);
                    if !analysis::is_clique(g, &cycle) {
                        return Some(cycle);
                    }
                }
            }
        }
    }
    None
}

/// Path from `x` to `y` of length exactly 2 or 4 avoiding `forbidden`, with
/// no two consecutive intra-clique edges. Returns the path vertices from
/// `x` to `y` inclusive.
fn find_path(
    g: &Graph,
    clique_of: &[u32],
    x: NodeId,
    y: NodeId,
    forbidden: NodeId,
) -> Option<Vec<NodeId>> {
    let is_external = |a: NodeId, b: NodeId| clique_of[a.index()] != clique_of[b.index()];
    // Length 2: common neighbor (gives a 4-cycle with the wedge).
    for &z in g.neighbors(x) {
        if z != forbidden && z != y && g.has_edge(z, y) {
            return Some(vec![x, z, y]);
        }
    }
    // Length 4: x - a - b - c - y.
    for &a in g.neighbors(x) {
        if a == forbidden || a == y {
            continue;
        }
        let xa_intra = !is_external(x, a);
        for &b in g.neighbors(a) {
            if b == forbidden || b == x || b == y {
                continue;
            }
            if xa_intra && !is_external(a, b) {
                continue; // two consecutive intra edges
            }
            let ab_intra = !is_external(a, b);
            for &cnode in g.neighbors(b) {
                if cnode == forbidden || cnode == x || cnode == a {
                    continue;
                }
                if ab_intra && !is_external(b, cnode) {
                    continue;
                }
                if !is_external(b, cnode) && !is_external(cnode, y) {
                    continue;
                }
                if g.has_edge(cnode, y) && cnode != y {
                    return Some(vec![x, a, b, cnode, y]);
                }
            }
        }
    }
    None
}

/// Verifies that an instance satisfies all hard-clique invariants
/// (Lemma 9 plus loophole-freeness). Intended for tests; cost grows like
/// the repair search.
///
/// # Errors
///
/// Returns a human-readable description of the first violated invariant.
pub fn verify_hard_instance(inst: &HardCliqueInstance) -> Result<(), String> {
    let g = &inst.graph;
    let delta = inst.delta;
    if !analysis::is_regular(g, delta) {
        return Err("graph is not Δ-regular".into());
    }
    for (k, cl) in inst.cliques.iter().enumerate() {
        if !analysis::is_clique(g, cl) {
            return Err(format!("clique {k} is not a clique"));
        }
        for &v in cl {
            let outside = g
                .neighbors(v)
                .iter()
                .filter(|&&w| inst.clique_of[w.index()] != k as u32)
                .count();
            if outside != inst.external_per_vertex {
                return Err(format!(
                    "vertex {v} has {outside} external edges, expected {}",
                    inst.external_per_vertex
                ));
            }
        }
    }
    // No outside vertex with two neighbors in a clique (Lemma 9.3) —
    // equivalently at most one edge between any clique pair here.
    for v in g.vertices() {
        let mut seen = std::collections::HashSet::new();
        for &w in g.neighbors(v) {
            let cw = inst.clique_of[w.index()];
            if cw != inst.clique_of[v.index()] && !seen.insert(cw) {
                return Err(format!("vertex {v} has two neighbors in clique {cw}"));
            }
        }
    }
    if let Some(cycle) = find_short_loophole_cycle(g, &inst.clique_of) {
        return Err(format!("non-clique short even cycle found: {cycle:?}"));
    }
    Ok(())
}

/// Generates a dense instance where `params.easy` cliques carry a planted
/// loophole, making them *easy* almost-cliques; the rest stay hard.
///
/// # Errors
///
/// Propagates generation errors from [`hard_cliques`] and reports
/// infeasible loophole-planting parameters.
pub fn easy_cliques(params: &EasyCliqueParams) -> Result<HardCliqueInstance, GraphError> {
    let mut inst = hard_cliques(&params.base)?;
    let mut rng = StdRng::seed_from_u64(params.base.seed ^ 0xEA51_EA51);
    plant_loopholes(&mut inst, params.easy, params.kind, &mut rng)?;
    Ok(inst)
}

/// Generates a dense instance mixing hard cliques with both kinds of easy
/// cliques.
///
/// # Errors
///
/// Propagates generation errors from [`hard_cliques`] and reports
/// infeasible loophole-planting parameters.
pub fn mixed_dense(params: &MixedParams) -> Result<HardCliqueInstance, GraphError> {
    let mut inst = hard_cliques(&params.base)?;
    let mut rng = StdRng::seed_from_u64(params.base.seed ^ 0x0515_0D0E);
    plant_loopholes(
        &mut inst,
        params.easy_low_degree,
        LoopholeKind::LowDegree,
        &mut rng,
    )?;
    plant_loopholes(
        &mut inst,
        params.easy_four_cycle,
        LoopholeKind::FourCycle,
        &mut rng,
    )?;
    Ok(inst)
}

fn plant_loopholes(
    inst: &mut HardCliqueInstance,
    count: usize,
    kind: LoopholeKind,
    rng: &mut StdRng,
) -> Result<(), GraphError> {
    if count == 0 {
        return Ok(());
    }
    if count > inst.cliques.len() / 4 {
        return Err(GraphError::InfeasibleParameters(format!(
            "can plant at most {} loopholes, asked for {count}",
            inst.cliques.len() / 4
        )));
    }
    let mut edges: Vec<(u32, u32)> = inst.graph.edges().map(|(u, v)| (u.0, v.0)).collect();
    let mut already: std::collections::HashSet<usize> = inst.planted_easy.iter().copied().collect();
    let mut planted = 0;
    let mut guard = 0;
    while planted < count {
        guard += 1;
        if guard > 10_000 {
            return Err(GraphError::InfeasibleParameters(
                "failed to find loophole planting sites".to_string(),
            ));
        }
        let k = rng.gen_range(0..inst.cliques.len());
        if already.contains(&k) {
            continue;
        }
        match kind {
            LoopholeKind::LowDegree => {
                let cl = &inst.cliques[k];
                let (a, b) = (cl[0], cl[1]);
                edges.retain(|&(x, y)| (x, y) != (a.0.min(b.0), a.0.max(b.0)));
                already.insert(k);
                inst.planted_easy.push(k);
                planted += 1;
            }
            LoopholeKind::FourCycle => {
                // Find external edges (a1,b1) and (a2,c1) out of clique k
                // with b1, c1 in different cliques, and an edge (b2,d) out of
                // b1's clique with d in a 4th clique not yet adjacent to
                // c1's clique. Rewire (a2,c1),(b2,d) -> (a2,b2),(c1,d).
                let cid = |v: u32| inst.clique_of[v as usize];
                let out_k: Vec<(u32, u32)> = edges
                    .iter()
                    .copied()
                    .map(|(x, y)| if cid(x) == k as u32 { (x, y) } else { (y, x) })
                    .filter(|&(x, y)| cid(x) == k as u32 && cid(y) != k as u32)
                    .collect();
                if out_k.len() < 2 {
                    continue;
                }
                let (a1, b1) = out_k[rng.gen_range(0..out_k.len())];
                let (a2, c1) = out_k[rng.gen_range(0..out_k.len())];
                if a1 == a2 || cid(b1) == cid(c1) {
                    continue;
                }
                let bk = cid(b1);
                let out_b: Vec<(u32, u32)> = edges
                    .iter()
                    .copied()
                    .map(|(x, y)| if cid(x) == bk { (x, y) } else { (y, x) })
                    .filter(|&(x, y)| cid(x) == bk && cid(y) != bk)
                    .collect();
                let Some(&(b2, d)) = out_b.iter().find(|&&(b2, d)| {
                    b2 != b1
                        && cid(d) != k as u32
                        && cid(d) != cid(c1)
                        && !clique_pair_adjacent(&edges, &inst.clique_of, cid(c1), cid(d))
                }) else {
                    continue;
                };
                let key = |x: u32, y: u32| (x.min(y), x.max(y));
                let e1 = key(a2, c1);
                let e2 = key(b2, d);
                edges.retain(|&e| e != e1 && e != e2);
                edges.push(key(a2, b2));
                edges.push(key(c1, d));
                already.insert(k);
                already.insert(bk as usize);
                inst.planted_easy.push(k);
                inst.planted_easy.push(bk as usize);
                planted += 1;
            }
        }
    }
    inst.graph = Graph::from_edges(inst.clique_of.len(), edges)?;
    Ok(())
}

fn clique_pair_adjacent(edges: &[(u32, u32)], clique_of: &[u32], ck: u32, cl: u32) -> bool {
    edges.iter().any(|&(x, y)| {
        let (cx, cy) = (clique_of[x as usize], clique_of[y as usize]);
        (cx == ck && cy == cl) || (cx == cl && cy == ck)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> HardCliqueParams {
        HardCliqueParams {
            cliques: 34,
            delta: 16,
            external_per_vertex: 1,
            seed: 42,
        }
    }

    #[test]
    fn blueprint_is_simple_and_regular() {
        let mut rng = StdRng::seed_from_u64(1);
        let edges = bipartite_regular_blueprint(20, 7, &mut rng).unwrap();
        assert_eq!(edges.len(), 140);
        let mut set = std::collections::HashSet::new();
        let mut ldeg = [0usize; 20];
        let mut rdeg = [0usize; 20];
        for &(l, r) in &edges {
            assert!(set.insert((l, r)), "duplicate blueprint edge ({l},{r})");
            ldeg[l as usize] += 1;
            rdeg[r as usize] += 1;
        }
        assert!(ldeg.iter().all(|&d| d == 7));
        assert!(rdeg.iter().all(|&d| d == 7));
    }

    #[test]
    fn blueprint_complete_case() {
        let mut rng = StdRng::seed_from_u64(1);
        let edges = bipartite_regular_blueprint(5, 5, &mut rng).unwrap();
        assert_eq!(edges.len(), 25);
    }

    #[test]
    fn blueprint_infeasible() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(bipartite_regular_blueprint(4, 5, &mut rng).is_err());
    }

    /// Regression for the tight regime `half < 2d` that bypasses the
    /// permutation fast path and exercises Kuhn's augmenting search
    /// directly: the recursive form dereferenced `match_of_right[r]`
    /// with `unwrap` and could blow the thread stack on deep alternating
    /// paths; the iterative form must return a simple regular blueprint
    /// (or a typed error) for every such shape.
    #[test]
    fn tight_regime_blueprints_are_exact_and_regular() {
        for (half, d, seed) in [(9, 7, 77), (16, 15, 3), (64, 63, 9), (33, 32, 5)] {
            let mut rng = StdRng::seed_from_u64(seed);
            assert!(half < 2 * d, "shape must force the exact-matching path");
            let edges = exact_matching_blueprint(half, d, &mut rng)
                .unwrap_or_else(|e| panic!("half={half} d={d}: {e}"));
            assert_eq!(edges.len(), half * d, "half={half} d={d}");
            let mut seen = std::collections::HashSet::new();
            let mut ldeg = vec![0usize; half];
            let mut rdeg = vec![0usize; half];
            for &(l, r) in &edges {
                assert!(seen.insert((l, r)), "duplicate edge ({l},{r})");
                ldeg[l as usize] += 1;
                rdeg[r as usize] += 1;
            }
            assert!(ldeg.iter().all(|&x| x == d), "half={half} d={d}");
            assert!(rdeg.iter().all(|&x| x == d), "half={half} d={d}");
        }
    }

    /// Adversarial chain: left `l` may only use rights `{l, l+1}`, rights
    /// `0..h-1` are matched to their own index, and only right `h-1` is
    /// free, so the augmenting search must walk a path of length `h`. On
    /// a 256 KiB thread stack the recursive form overflowed here; the
    /// explicit-stack form stays flat.
    #[test]
    fn deep_augmenting_paths_do_not_overflow_the_stack() {
        std::thread::Builder::new()
            .stack_size(256 * 1024)
            .spawn(|| {
                let mut rng = StdRng::seed_from_u64(21);
                let h = 6000usize;
                let mut used = vec![vec![true; h]; h];
                for (l, row) in used.iter_mut().enumerate() {
                    row[l] = false;
                    if l + 1 < h {
                        row[l + 1] = false;
                    }
                }
                let mut match_of_right: Vec<Option<u32>> = (0..h as u32 - 1).map(Some).collect();
                match_of_right.push(None);
                let mut visited = vec![false; h];
                let ok =
                    kuhn_augment(0, &used, &mut match_of_right, &mut visited, &mut rng).unwrap();
                assert!(ok, "the chain has exactly one augmenting path");
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn hard_instance_ext1_verifies() {
        let inst = hard_cliques(&small_params()).unwrap();
        assert_eq!(inst.graph.n(), 34 * 16);
        assert_eq!(inst.graph.max_degree(), 16);
        verify_hard_instance(&inst).unwrap();
    }

    #[test]
    fn hard_instance_ext2_verifies() {
        let inst = hard_cliques(&HardCliqueParams {
            cliques: 320,
            delta: 16,
            external_per_vertex: 2,
            seed: 7,
        })
        .unwrap();
        assert_eq!(inst.graph.max_degree(), 16);
        verify_hard_instance(&inst).unwrap();
    }

    #[test]
    fn circulant_instance_verifies_with_high_diameter() {
        let inst = hard_cliques_with_blueprint(
            &HardCliqueParams {
                cliques: 80,
                delta: 16,
                external_per_vertex: 1,
                seed: 3,
            },
            BlueprintKind::Circulant,
        )
        .unwrap();
        verify_hard_instance(&inst).unwrap();
        // Circulant blueprints give linear diameter, random ones do not.
        assert!(inst.graph.diameter_from(NodeId(0)) >= 5);
    }

    #[test]
    fn hard_instance_deterministic_per_seed() {
        let a = hard_cliques(&small_params()).unwrap();
        let b = hard_cliques(&small_params()).unwrap();
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn no_delta_plus_one_clique() {
        let inst = hard_cliques(&small_params()).unwrap();
        assert!(!analysis::has_k_clique(&inst.graph, inst.delta + 1));
    }

    #[test]
    fn odd_clique_count_rejected() {
        let p = HardCliqueParams {
            cliques: 33,
            ..small_params()
        };
        assert!(hard_cliques(&p).is_err());
    }

    #[test]
    fn easy_low_degree_plants_loopholes() {
        let inst = easy_cliques(&EasyCliqueParams {
            base: small_params(),
            easy: 3,
            kind: LoopholeKind::LowDegree,
        })
        .unwrap();
        assert_eq!(inst.planted_easy.len(), 3);
        let low: Vec<_> = inst
            .graph
            .vertices()
            .filter(|&v| inst.graph.degree(v) < inst.delta)
            .collect();
        assert_eq!(low.len(), 6); // two per planted loophole
        for &v in &low {
            assert!(inst.planted_easy.contains(&inst.clique_index(v)));
        }
    }

    #[test]
    fn easy_four_cycle_keeps_regularity_and_creates_cycle() {
        let inst = easy_cliques(&EasyCliqueParams {
            base: small_params(),
            easy: 2,
            kind: LoopholeKind::FourCycle,
        })
        .unwrap();
        assert!(analysis::is_regular(&inst.graph, inst.delta));
        assert!(find_short_loophole_cycle(&inst.graph, &inst.clique_of).is_some());
    }

    #[test]
    fn mixed_dense_has_both() {
        let inst = mixed_dense(&MixedParams {
            base: small_params(),
            easy_low_degree: 2,
            easy_four_cycle: 1,
        })
        .unwrap();
        assert!(inst.planted_easy.len() >= 4);
        assert!(inst
            .graph
            .vertices()
            .any(|v| inst.graph.degree(v) < inst.delta));
    }
}
