//! Sparse + dense mixtures: instances with both almost-cliques and
//! genuinely sparse Δ-regular regions, for the paper's future-work
//! direction (§1.1: extending the slack-triad machinery beyond dense
//! graphs).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use super::classic::random_regular;
use super::dense::{hard_cliques, HardCliqueParams};
use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// Parameters for [`sparse_dense_mix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseDenseParams {
    /// Hard cliques in the dense region.
    pub cliques: usize,
    /// Maximum degree Δ (the sparse region is Δ-regular too, so no vertex
    /// gets a trivial low-degree loophole).
    pub delta: usize,
    /// Vertices in the sparse region.
    pub sparse: usize,
    /// Cross links: each swaps one dense external edge with one sparse
    /// edge, preserving all degrees.
    pub cross: usize,
    /// RNG seed.
    pub seed: u64,
}

/// A generated mixture.
#[derive(Debug, Clone)]
pub struct SparseDenseInstance {
    /// The combined graph (dense vertices first, then sparse).
    pub graph: Graph,
    /// Vertex sets of the dense cliques.
    pub cliques: Vec<Vec<NodeId>>,
    /// The sparse vertices.
    pub sparse_vertices: Vec<NodeId>,
    /// Maximum degree Δ.
    pub delta: usize,
}

/// Builds a Δ-regular graph whose ACD has both almost-cliques and sparse
/// vertices: a hard-clique instance glued to a random Δ-regular region by
/// degree-preserving edge swaps (dense external edge `{u,v}` + sparse edge
/// `{a,b}` become `{u,a}` and `{v,b}`).
///
/// # Errors
///
/// Propagates generation errors; reports infeasible parameters (too many
/// cross links, sparse region too small).
pub fn sparse_dense_mix(params: &SparseDenseParams) -> Result<SparseDenseInstance, GraphError> {
    let &SparseDenseParams {
        cliques: m,
        delta,
        sparse,
        cross,
        seed,
    } = params;
    if sparse * delta % 2 != 0 || sparse <= delta {
        return Err(GraphError::InfeasibleParameters(format!(
            "sparse region of {sparse} vertices cannot be {delta}-regular"
        )));
    }
    let dense = hard_cliques(&HardCliqueParams {
        cliques: m,
        delta,
        external_per_vertex: 1,
        seed,
    })?;
    let sparse_part = random_regular(sparse, delta, seed ^ 0x5BA2_5E00);
    let n_dense = dense.graph.n();
    let offset = n_dense as u32;

    let mut rng = StdRng::seed_from_u64(seed ^ 0x0C10_55E5);
    let mut dense_external: Vec<(NodeId, NodeId)> = dense.external_edges();
    dense_external.shuffle(&mut rng);
    let mut sparse_edges: Vec<(NodeId, NodeId)> = sparse_part.edges().collect();
    sparse_edges.shuffle(&mut rng);
    if cross > dense_external.len() || cross > sparse_edges.len() {
        return Err(GraphError::InfeasibleParameters(format!(
            "cannot place {cross} cross links: only {} external and {} sparse edges",
            dense_external.len(),
            sparse_edges.len()
        )));
    }

    let mut b = GraphBuilder::new(n_dense + sparse);
    let removed_dense: std::collections::HashSet<(NodeId, NodeId)> =
        dense_external[..cross].iter().copied().collect();
    let removed_sparse: std::collections::HashSet<(NodeId, NodeId)> =
        sparse_edges[..cross].iter().copied().collect();
    for (u, v) in dense.graph.edges() {
        if !removed_dense.contains(&(u, v)) {
            b.add_edge(u, v);
        }
    }
    for (a, c) in sparse_part.edges() {
        if !removed_sparse.contains(&(a, c)) {
            b.add_edge(a.0 + offset, c.0 + offset);
        }
    }
    for i in 0..cross {
        let (u, v) = dense_external[i];
        let (a, c) = sparse_edges[i];
        b.add_edge(u, NodeId(a.0 + offset));
        b.add_edge(v, NodeId(c.0 + offset));
    }
    let graph = b.build()?;
    Ok(SparseDenseInstance {
        graph,
        cliques: dense.cliques,
        sparse_vertices: (0..sparse).map(|i| NodeId(offset + i as u32)).collect(),
        delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    fn params() -> SparseDenseParams {
        SparseDenseParams {
            cliques: 34,
            delta: 16,
            sparse: 120,
            cross: 12,
            seed: 9,
        }
    }

    #[test]
    fn mixture_is_delta_regular() {
        let inst = sparse_dense_mix(&params()).unwrap();
        assert!(analysis::is_regular(&inst.graph, 16));
        assert_eq!(inst.graph.n(), 34 * 16 + 120);
        assert_eq!(inst.sparse_vertices.len(), 120);
    }

    #[test]
    fn cross_links_connect_regions() {
        let inst = sparse_dense_mix(&params()).unwrap();
        let n_dense = 34 * 16;
        let crossing = inst
            .graph
            .edges()
            .filter(|&(u, v)| (u.index() < n_dense) != (v.index() < n_dense))
            .count();
        assert_eq!(
            crossing,
            2 * 12,
            "each cross link contributes two crossing edges"
        );
    }

    #[test]
    fn infeasible_parameters_rejected() {
        let p = SparseDenseParams {
            sparse: 10,
            ..params()
        };
        assert!(sparse_dense_mix(&p).is_err());
    }
}
