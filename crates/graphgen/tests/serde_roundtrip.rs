//! External-format round-trips: the supported plain-text formats recover
//! the exact structures, and the serde derives exist on every public data
//! type (C-SERDE; byte-format round-trips belong to whichever serde format
//! crate a downstream user picks — none is a dependency here).

use graphgen::generators::{self, HardCliqueParams};
use graphgen::{Color, Coloring, Graph, NodeId};

#[test]
fn graph_serde_derives_compile_and_roundtrip_via_display_format() {
    // Plain-text round-trip via graphgen::io (the supported external
    // format) — the serde derives are compile-checked by the function
    // below.
    let inst = generators::hard_cliques(&HardCliqueParams {
        cliques: 34,
        delta: 16,
        external_per_vertex: 1,
        seed: 5,
    })
    .unwrap();
    let text = graphgen::io::write_edge_list(&inst.graph);
    let parsed = graphgen::io::parse_edge_list(&text).unwrap();
    assert_eq!(parsed, inst.graph);
}

#[test]
fn serde_bounds_exist() {
    fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    assert_serde::<Graph>();
    assert_serde::<Coloring>();
    assert_serde::<NodeId>();
    assert_serde::<Color>();
    assert_serde::<HardCliqueParams>();
}

#[test]
fn coloring_text_roundtrip() {
    let mut c = Coloring::empty(4);
    c.set(NodeId(0), Color(2));
    c.set(NodeId(2), Color(0));
    let text = graphgen::io::write_coloring(&c);
    // Parse back by hand (the format is `vertex color|-`).
    let mut back = Coloring::empty(4);
    for line in text.lines() {
        let mut it = line.split_whitespace();
        let v: usize = it.next().unwrap().parse().unwrap();
        let col = it.next().unwrap();
        if col != "-" {
            back.set(NodeId::from(v), Color(col.parse().unwrap()));
        }
    }
    assert_eq!(back, c);
}
