//! Property-based tests for the graph substrate and generators.

use graphgen::generators::{self, HardCliqueParams};
use graphgen::{analysis, Color, Coloring, Graph, GraphBuilder, NodeId};
use proptest::prelude::*;

/// Arbitrary small simple graph as an edge set over `n ≤ 24` vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_edges.min(60)).prop_map(
            move |pairs| {
                let mut b = GraphBuilder::new(n);
                for (a, c) in pairs {
                    if a != c {
                        b.add_edge(a, c);
                    }
                }
                b.build().expect("builder dedups")
            },
        )
    })
}

proptest! {
    /// Degrees sum to twice the edge count.
    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.m());
    }

    /// `has_edge` agrees with the adjacency lists, both directions.
    #[test]
    fn has_edge_symmetric(g in arb_graph()) {
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(u, v));
                prop_assert!(g.has_edge(v, u));
            }
        }
    }

    /// The induced subgraph on all vertices is the graph itself.
    #[test]
    fn induced_identity(g in arb_graph()) {
        let all: Vec<NodeId> = g.vertices().collect();
        let (h, back) = g.induced(&all);
        prop_assert_eq!(h.m(), g.m());
        prop_assert_eq!(back.len(), g.n());
    }

    /// BFS distances satisfy the triangle property along edges.
    #[test]
    fn bfs_lipschitz(g in arb_graph()) {
        if g.n() == 0 { return Ok(()); }
        let dist = g.bfs_distances(&[NodeId(0)]);
        for (u, v) in g.edges() {
            let (du, dv) = (dist[u.index()], dist[v.index()]);
            if du != usize::MAX && dv != usize::MAX {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                prop_assert_eq!(du, dv, "reachability must agree across an edge");
            }
        }
    }

    /// Graph power only adds edges, and P^1 = G.
    #[test]
    fn power_one_is_identity(g in arb_graph()) {
        let p1 = g.power(1);
        prop_assert_eq!(p1.m(), g.m());
        let p2 = g.power(2);
        for (u, v) in g.edges() {
            prop_assert!(p2.has_edge(u, v));
        }
    }

    /// Common-neighbor counting matches the set computation.
    #[test]
    fn common_neighbors_consistent(g in arb_graph()) {
        for u in g.vertices() {
            for v in g.vertices() {
                if u < v {
                    let set = analysis::common_neighbors(&g, u, v);
                    prop_assert_eq!(set.len(), analysis::common_neighbor_count(&g, u, v));
                }
            }
        }
    }

    /// Partial-coloring validation accepts exactly proper partial colorings.
    #[test]
    fn coloring_checker_sound(g in arb_graph(), colors in proptest::collection::vec(0u32..6, 0..24)) {
        let mut coloring = Coloring::empty(g.n());
        for (i, c) in colors.iter().enumerate().take(g.n()) {
            coloring.unset(NodeId::from(i));
            coloring.set(NodeId::from(i), Color(*c));
        }
        let manual_ok = g.edges().all(|(u, v)| {
            match (coloring.get(u), coloring.get(v)) {
                (Some(a), Some(b)) => a != b,
                _ => true,
            }
        });
        prop_assert_eq!(coloring.check_partial(&g, 6).is_ok(), manual_ok);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every generated hard instance verifies all hard-clique invariants.
    #[test]
    fn hard_instances_verify(seed in 0u64..500, m_half in 17usize..28) {
        let inst = generators::hard_cliques(&HardCliqueParams {
            cliques: 2 * m_half,
            delta: 16,
            external_per_vertex: 1,
            seed,
        }).unwrap();
        generators::verify_hard_instance(&inst).unwrap();
    }

    /// Random regular graphs are simple and regular for feasible (n, d).
    #[test]
    fn random_regular_valid(seed in 0u64..200, n_half in 10usize..40, d in 2usize..6) {
        let n = 2 * n_half;
        let g = generators::random_regular(n, d, seed);
        prop_assert!(analysis::is_regular(&g, d));
        prop_assert_eq!(g.m(), n * d / 2);
    }

    /// Bipartite regular blueprints are simple and regular.
    #[test]
    fn blueprint_valid(seed in 0u64..200, half in 8usize..40, d in 2usize..8) {
        prop_assume!(d < half);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let edges = generators::bipartite_regular_blueprint(half, d, &mut rng).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut ldeg = vec![0usize; half];
        let mut rdeg = vec![0usize; half];
        for (l, r) in edges {
            prop_assert!(seen.insert((l, r)), "duplicate edge");
            ldeg[l as usize] += 1;
            rdeg[r as usize] += 1;
        }
        prop_assert!(ldeg.iter().chain(&rdeg).all(|&x| x == d));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Clique rings are Δ-regular, connected, and loophole-rich.
    #[test]
    fn clique_rings_regular(m in 3usize..20, half_delta in 2usize..9) {
        let delta = 2 * half_delta;
        let g = generators::clique_ring(m, delta);
        prop_assert!(analysis::is_regular(&g, delta));
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.n(), m * delta);
    }

    /// Sparse+dense mixtures stay Δ-regular with the requested shape.
    #[test]
    fn mixtures_regular(seed in 0u64..50, cross in 1usize..12) {
        let inst = generators::sparse_dense_mix(&generators::SparseDenseParams {
            cliques: 34,
            delta: 16,
            sparse: 100,
            cross,
            seed,
        }).unwrap();
        prop_assert!(analysis::is_regular(&inst.graph, 16));
        prop_assert_eq!(inst.sparse_vertices.len(), 100);
    }

    /// Circulant blueprints give verified hard instances too.
    #[test]
    fn circulant_hard_instances_verify(seed in 0u64..30, m_half in 20usize..35) {
        let inst = generators::hard_cliques_with_blueprint(
            &HardCliqueParams {
                cliques: 2 * m_half,
                delta: 16,
                external_per_vertex: 1,
                seed,
            },
            generators::BlueprintKind::Circulant,
        ).unwrap();
        generators::verify_hard_instance(&inst).unwrap();
    }
}
