//! Equivalence of the two executor levels: the state-exchange
//! [`localsim::Executor`] and the per-port [`localsim::MessageExecutor`]
//! compute the same function when given the same algorithm in both forms —
//! plus the determinism suite pinning the parallel stepping path
//! (`with_threads`) to be bit-identical to the sequential schedule in
//! outputs, round counts, and telemetry event streams.

use std::sync::Arc;

use graphgen::{Graph, GraphBuilder, NodeId};
use localsim::{
    broadcast, CongestExecutor, Event, Executor, FaultKind, FaultPlan, LocalAlgorithm,
    MessageExecutor, MessageProgram, MsgTransition, NodeCtx, Outgoing, Probe, RecordingSink,
    SimError, Transition,
};
use proptest::prelude::*;

/// Flood-max for `t` rounds, state-exchange form.
struct FloodState {
    t: u64,
}

impl LocalAlgorithm for FloodState {
    type State = u64;
    type Output = u64;

    fn init(&self, ctx: &NodeCtx) -> u64 {
        ctx.uid
    }

    fn step(&self, ctx: &NodeCtx, state: &u64, nbrs: &[u64]) -> Transition<u64, u64> {
        let m = nbrs.iter().copied().chain([*state]).max().unwrap_or(*state);
        if ctx.round >= self.t {
            Transition::Halt(m)
        } else {
            Transition::Continue(m)
        }
    }
}

/// Flood-max for `t` rounds, per-port message form.
struct FloodMsg {
    t: u64,
}

impl MessageProgram for FloodMsg {
    type State = u64;
    type Msg = u64;
    type Output = u64;

    fn init(&self, ctx: &NodeCtx) -> (u64, Vec<Outgoing<u64>>) {
        (ctx.uid, broadcast(ctx.degree(), &ctx.uid))
    }

    fn step(
        &self,
        ctx: &NodeCtx,
        state: &mut u64,
        inbox: &[Option<u64>],
    ) -> MsgTransition<u64, u64> {
        let m = inbox
            .iter()
            .flatten()
            .copied()
            .chain([*state])
            .max()
            .unwrap_or(*state);
        *state = m;
        if ctx.round >= self.t {
            MsgTransition::HaltAfter(Vec::new(), m)
        } else {
            MsgTransition::Continue(broadcast(ctx.degree(), &m))
        }
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..20).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..40).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (a, c) in pairs {
                if a != c {
                    b.add_edge(a, c);
                }
            }
            b.build().expect("builder dedups")
        })
    })
}

/// Staggered halting with halted-state reads: node `v` halts in round
/// `v mod 5 + 1` with the sum of everything it has seen. Sensitive to
/// worklist compaction and to the frozen-state invariant of the
/// double-buffered executor (halted neighbors must stay visible).
struct StaggerSum;

impl LocalAlgorithm for StaggerSum {
    type State = u64;
    type Output = u64;

    fn init(&self, ctx: &NodeCtx) -> u64 {
        ctx.uid + 1
    }

    fn step(&self, ctx: &NodeCtx, state: &u64, nbrs: &[u64]) -> Transition<u64, u64> {
        let s = state.wrapping_add(nbrs.iter().sum::<u64>());
        if ctx.round > u64::from(ctx.node.0) % 5 {
            Transition::Halt(s)
        } else {
            Transition::Continue(s)
        }
    }
}

/// Message-form analogue of [`StaggerSum`]: keeps sending its running sum
/// until it halts; inboxes go quiet as neighbors halt.
struct StaggerSumMsg;

impl MessageProgram for StaggerSumMsg {
    type State = u64;
    type Msg = u64;
    type Output = u64;

    fn init(&self, ctx: &NodeCtx) -> (u64, Vec<Outgoing<u64>>) {
        (ctx.uid + 1, broadcast(ctx.degree(), &(ctx.uid + 1)))
    }

    fn step(
        &self,
        ctx: &NodeCtx,
        state: &mut u64,
        inbox: &[Option<u64>],
    ) -> MsgTransition<u64, u64> {
        *state = state.wrapping_add(inbox.iter().flatten().sum::<u64>());
        if ctx.round > u64::from(ctx.node.0) % 5 {
            MsgTransition::HaltAfter(broadcast(ctx.degree(), state), *state)
        } else {
            MsgTransition::Continue(broadcast(ctx.degree(), state))
        }
    }
}

/// Random test graphs of assorted shapes, driven by the in-repo rand shim
/// (via `graphgen::generators`' seeded families).
fn determinism_graphs() -> Vec<Graph> {
    vec![
        graphgen::generators::gnp(57, 0.12, 1),
        graphgen::generators::gnp(80, 0.05, 2),
        graphgen::generators::random_regular(64, 6, 3),
        graphgen::generators::random_tree(45, 4),
        graphgen::generators::complete(12),
        graphgen::generators::path(2),
        Graph::from_edges(5, []).unwrap(), // all-isolated: degenerate worklists
    ]
}

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

#[test]
fn state_executor_parallel_is_bit_identical() {
    for (i, g) in determinism_graphs().iter().enumerate() {
        let sink = Arc::new(RecordingSink::new());
        let seq = Executor::new(g)
            .with_probe(Probe::new(sink.clone()))
            .run(&StaggerSum, 100)
            .unwrap();
        let seq_events = sink.events();
        for k in THREAD_COUNTS {
            let psink = Arc::new(RecordingSink::new());
            let par = Executor::new(g)
                .with_threads(k)
                .with_probe(Probe::new(psink.clone()))
                .run(&StaggerSum, 100)
                .unwrap();
            assert_eq!(par.outputs, seq.outputs, "graph #{i}, threads={k}");
            assert_eq!(par.rounds, seq.rounds, "graph #{i}, threads={k}");
            assert_eq!(psink.events(), seq_events, "graph #{i}, threads={k}");
        }
    }
}

#[test]
fn message_executor_parallel_is_bit_identical() {
    for (i, g) in determinism_graphs().iter().enumerate() {
        let sink = Arc::new(RecordingSink::new());
        let seq = MessageExecutor::new(g)
            .with_probe(Probe::new(sink.clone()))
            .run(&StaggerSumMsg, 100)
            .unwrap();
        let seq_events = sink.events();
        for k in THREAD_COUNTS {
            let psink = Arc::new(RecordingSink::new());
            let par = MessageExecutor::new(g)
                .with_threads(k)
                .with_probe(Probe::new(psink.clone()))
                .run(&StaggerSumMsg, 100)
                .unwrap();
            assert_eq!(par.outputs, seq.outputs, "graph #{i}, threads={k}");
            assert_eq!(par.rounds, seq.rounds, "graph #{i}, threads={k}");
            assert_eq!(psink.events(), seq_events, "graph #{i}, threads={k}");
        }
    }
}

#[test]
fn congest_executor_parallel_is_bit_identical() {
    let width = |m: &u64| (64 - m.leading_zeros()) as usize;
    for (i, g) in determinism_graphs().iter().enumerate() {
        let sink = Arc::new(RecordingSink::new());
        let seq = CongestExecutor::new(g, 64, width)
            .with_probe(Probe::new(sink.clone()))
            .run(&StaggerSumMsg, 100)
            .unwrap();
        let seq_events = sink.events();
        for k in THREAD_COUNTS {
            let psink = Arc::new(RecordingSink::new());
            let par = CongestExecutor::new(g, 64, width)
                .with_threads(k)
                .with_probe(Probe::new(psink.clone()))
                .run(&StaggerSumMsg, 100)
                .unwrap();
            assert_eq!(par.outputs, seq.outputs, "graph #{i}, threads={k}");
            assert_eq!(par.rounds, seq.rounds, "graph #{i}, threads={k}");
            assert_eq!(par.per_round, seq.per_round, "graph #{i}, threads={k}");
            assert_eq!(par.max_message_bits, seq.max_message_bits);
            assert_eq!(par.total_bits, seq.total_bits);
            assert_eq!(psink.events(), seq_events, "graph #{i}, threads={k}");
        }
    }
}

/// A fault plan that exercises drops and jitter together (no crashes, so
/// runs still complete and outputs are comparable).
fn lossy_plan() -> FaultPlan {
    FaultPlan {
        seed: 5,
        message_drop_p: 0.3,
        round_jitter: 2,
        node_crash: Vec::new(),
    }
}

/// Fault injection is part of the determinism contract: under an active
/// plan (drops + jitter), the state-exchange executor's outputs, rounds,
/// and full event stream — including `Event::Fault` — are bit-identical
/// between the sequential schedule and every thread count.
#[test]
fn faulty_state_executor_parallel_is_bit_identical() {
    for (i, g) in determinism_graphs().iter().enumerate() {
        let sink = Arc::new(RecordingSink::new());
        let seq = Executor::new(g)
            .with_faults(lossy_plan())
            .with_probe(Probe::new(sink.clone()))
            .run(&StaggerSum, 200)
            .unwrap();
        let seq_events = sink.events();
        for k in THREAD_COUNTS {
            let psink = Arc::new(RecordingSink::new());
            let par = Executor::new(g)
                .with_faults(lossy_plan())
                .with_threads(k)
                .with_probe(Probe::new(psink.clone()))
                .run(&StaggerSum, 200)
                .unwrap();
            assert_eq!(par.outputs, seq.outputs, "graph #{i}, threads={k}");
            assert_eq!(par.rounds, seq.rounds, "graph #{i}, threads={k}");
            assert_eq!(psink.events(), seq_events, "graph #{i}, threads={k}");
        }
    }
}

#[test]
fn faulty_message_executor_parallel_is_bit_identical() {
    for (i, g) in determinism_graphs().iter().enumerate() {
        let sink = Arc::new(RecordingSink::new());
        let seq = MessageExecutor::new(g)
            .with_faults(lossy_plan())
            .with_probe(Probe::new(sink.clone()))
            .run(&StaggerSumMsg, 200)
            .unwrap();
        let seq_events = sink.events();
        for k in THREAD_COUNTS {
            let psink = Arc::new(RecordingSink::new());
            let par = MessageExecutor::new(g)
                .with_faults(lossy_plan())
                .with_threads(k)
                .with_probe(Probe::new(psink.clone()))
                .run(&StaggerSumMsg, 200)
                .unwrap();
            assert_eq!(par.outputs, seq.outputs, "graph #{i}, threads={k}");
            assert_eq!(par.rounds, seq.rounds, "graph #{i}, threads={k}");
            assert_eq!(psink.events(), seq_events, "graph #{i}, threads={k}");
        }
    }
}

#[test]
fn faulty_congest_executor_parallel_is_bit_identical() {
    let width = |m: &u64| (64 - m.leading_zeros()) as usize;
    for (i, g) in determinism_graphs().iter().enumerate() {
        let sink = Arc::new(RecordingSink::new());
        let seq = CongestExecutor::new(g, 64, width)
            .with_faults(lossy_plan())
            .with_probe(Probe::new(sink.clone()))
            .run(&StaggerSumMsg, 200)
            .unwrap();
        let seq_events = sink.events();
        for k in THREAD_COUNTS {
            let psink = Arc::new(RecordingSink::new());
            let par = CongestExecutor::new(g, 64, width)
                .with_faults(lossy_plan())
                .with_threads(k)
                .with_probe(Probe::new(psink.clone()))
                .run(&StaggerSumMsg, 200)
                .unwrap();
            assert_eq!(par.outputs, seq.outputs, "graph #{i}, threads={k}");
            assert_eq!(par.rounds, seq.rounds, "graph #{i}, threads={k}");
            assert_eq!(par.per_round, seq.per_round, "graph #{i}, threads={k}");
            assert_eq!(psink.events(), seq_events, "graph #{i}, threads={k}");
        }
    }
}

/// The lossy plan is not vacuous on a dense graph: drops and stalls both
/// actually fire, and the faults change the computed outputs.
#[test]
fn lossy_plan_actually_injects() {
    let g = graphgen::generators::gnp(57, 0.12, 1);
    let sink = Arc::new(RecordingSink::new());
    let faulty = Executor::new(&g)
        .with_faults(lossy_plan())
        .with_probe(Probe::new(sink.clone()))
        .run(&StaggerSum, 200)
        .unwrap();
    let kinds: Vec<FaultKind> = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Fault { kind, .. } => Some(*kind),
            _ => None,
        })
        .collect();
    assert!(kinds.contains(&FaultKind::Drop), "no drops fired");
    assert!(kinds.contains(&FaultKind::Stall), "no stalls fired");
    let clean = Executor::new(&g).run(&StaggerSum, 200).unwrap();
    assert_ne!(faulty.outputs, clean.outputs, "faults had no effect");
}

/// Crashes surface as `SimError::Crashed` plus per-node `Event::Fault`
/// records, identically under every schedule, on both executor levels.
#[test]
fn crash_runs_fail_identically_seq_and_parallel() {
    let g = graphgen::generators::random_regular(64, 6, 3);
    let plan = FaultPlan {
        seed: 11,
        // All three targets are still live at their crash round under
        // StaggerSum's halt rule (node v halts in round v % 5 + 1).
        node_crash: vec![(2, NodeId(3)), (3, NodeId(44)), (2, NodeId(17))],
        ..FaultPlan::default()
    };
    let sink = Arc::new(RecordingSink::new());
    let seq_err = Executor::new(&g)
        .with_faults(plan.clone())
        .with_probe(Probe::new(sink.clone()))
        .run(&StaggerSum, 100)
        .unwrap_err();
    assert!(matches!(seq_err, SimError::Crashed { crashed: 3, .. }));
    let crash_events: Vec<Event> = sink
        .events()
        .into_iter()
        .filter(|e| matches!(e, Event::Fault { .. }))
        .collect();
    assert_eq!(crash_events.len(), 3);
    // Within a round, crashes are reported in ascending node order.
    assert!(matches!(
        &crash_events[0],
        Event::Fault {
            round: 1,
            kind: FaultKind::Crash,
            node: Some(3),
            count: 1,
            ..
        }
    ));
    assert!(matches!(
        &crash_events[1],
        Event::Fault { node: Some(17), .. }
    ));
    for k in THREAD_COUNTS {
        let psink = Arc::new(RecordingSink::new());
        let par_err = Executor::new(&g)
            .with_faults(plan.clone())
            .with_threads(k)
            .with_probe(Probe::new(psink.clone()))
            .run(&StaggerSum, 100)
            .unwrap_err();
        assert_eq!(par_err, seq_err, "threads={k}");
        assert_eq!(psink.events(), sink.events(), "threads={k}");
    }
    let msg_err = MessageExecutor::new(&g)
        .with_faults(plan)
        .run(&StaggerSumMsg, 100)
        .unwrap_err();
    assert!(matches!(msg_err, SimError::Crashed { crashed: 3, .. }));
}

/// The deterministic violation rule (earliest round, widest message) is
/// schedule-independent: over-budget runs fail identically seq vs parallel.
#[test]
fn congest_violation_is_schedule_independent() {
    let width = |m: &u64| (64 - m.leading_zeros()) as usize;
    let g = graphgen::generators::gnp(40, 0.2, 7);
    let seq = CongestExecutor::new(&g, 3, width)
        .run(&StaggerSumMsg, 100)
        .unwrap_err();
    for k in THREAD_COUNTS {
        let par = CongestExecutor::new(&g, 3, width)
            .with_threads(k)
            .run(&StaggerSumMsg, 100)
            .unwrap_err();
        match (&seq, &par) {
            (
                localsim::CongestError::BandwidthExceeded {
                    bits: b1,
                    round: r1,
                    ..
                },
                localsim::CongestError::BandwidthExceeded {
                    bits: b2,
                    round: r2,
                    ..
                },
            ) => {
                assert_eq!((b1, r1), (b2, r2), "threads={k}");
            }
            other => panic!("expected bandwidth violations, got {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After t rounds both executors agree on every node's t-ball maximum.
    #[test]
    fn executors_agree_on_flood_max(g in arb_graph(), t in 1u64..5) {
        let a = Executor::new(&g).run(&FloodState { t }, t + 2).unwrap();
        let b = MessageExecutor::new(&g).run(&FloodMsg { t }, t + 2).unwrap();
        prop_assert_eq!(&a.outputs, &b.outputs);
        prop_assert_eq!(a.rounds, b.rounds);
        // Ground truth: the max uid within distance t.
        for v in g.vertices() {
            let dist = g.bfs_distances(&[v]);
            let expect = g
                .vertices()
                .filter(|w| dist[w.index()] != usize::MAX && dist[w.index()] as u64 <= t)
                .map(|w| u64::from(w.0))
                .max()
                .unwrap();
            prop_assert_eq!(a.outputs[v.index()], expect, "node {}", v);
        }
    }
}
