//! Equivalence of the two executor levels: the state-exchange
//! [`localsim::Executor`] and the per-port [`localsim::MessageExecutor`]
//! compute the same function when given the same algorithm in both forms.

use graphgen::{Graph, GraphBuilder};
use localsim::{
    broadcast, Executor, LocalAlgorithm, MessageExecutor, MessageProgram, MsgTransition, NodeCtx,
    Outgoing, Transition,
};
use proptest::prelude::*;

/// Flood-max for `t` rounds, state-exchange form.
struct FloodState {
    t: u64,
}

impl LocalAlgorithm for FloodState {
    type State = u64;
    type Output = u64;

    fn init(&self, ctx: &NodeCtx) -> u64 {
        ctx.uid
    }

    fn step(&self, ctx: &NodeCtx, state: &u64, nbrs: &[u64]) -> Transition<u64, u64> {
        let m = nbrs.iter().copied().chain([*state]).max().unwrap_or(*state);
        if ctx.round >= self.t {
            Transition::Halt(m)
        } else {
            Transition::Continue(m)
        }
    }
}

/// Flood-max for `t` rounds, per-port message form.
struct FloodMsg {
    t: u64,
}

impl MessageProgram for FloodMsg {
    type State = u64;
    type Msg = u64;
    type Output = u64;

    fn init(&self, ctx: &NodeCtx) -> (u64, Vec<Outgoing<u64>>) {
        (ctx.uid, broadcast(ctx.degree(), &ctx.uid))
    }

    fn step(
        &self,
        ctx: &NodeCtx,
        state: &mut u64,
        inbox: &[Option<u64>],
    ) -> MsgTransition<u64, u64> {
        let m = inbox
            .iter()
            .flatten()
            .copied()
            .chain([*state])
            .max()
            .unwrap_or(*state);
        *state = m;
        if ctx.round >= self.t {
            MsgTransition::HaltAfter(Vec::new(), m)
        } else {
            MsgTransition::Continue(broadcast(ctx.degree(), &m))
        }
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..20).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..40).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (a, c) in pairs {
                if a != c {
                    b.add_edge(a, c);
                }
            }
            b.build().expect("builder dedups")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After t rounds both executors agree on every node's t-ball maximum.
    #[test]
    fn executors_agree_on_flood_max(g in arb_graph(), t in 1u64..5) {
        let a = Executor::new(&g).run(&FloodState { t }, t + 2).unwrap();
        let b = MessageExecutor::new(&g).run(&FloodMsg { t }, t + 2).unwrap();
        prop_assert_eq!(&a.outputs, &b.outputs);
        prop_assert_eq!(a.rounds, b.rounds);
        // Ground truth: the max uid within distance t.
        for v in g.vertices() {
            let dist = g.bfs_distances(&[v]);
            let expect = g
                .vertices()
                .filter(|w| dist[w.index()] != usize::MAX && dist[w.index()] as u64 <= t)
                .map(|w| u64::from(w.0))
                .max()
                .unwrap();
            prop_assert_eq!(a.outputs[v.index()], expect, "node {}", v);
        }
    }
}
