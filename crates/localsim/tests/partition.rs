//! Degree-weighted worklist partitioning: the balance guarantee of
//! `segments_weighted` and the bit-identity of runs stepped over its
//! segments versus the sequential schedule.
//!
//! The partitioner's contract (see `par.rs`): segments are contiguous,
//! non-empty, cover the worklist in order, and every segment's weight
//! (`deg(v) + 1` summed over its nodes) exceeds the even share
//! `ceil(total / k)` by *less than the heaviest single node* — the best
//! bound any contiguous partition can promise, since a single hub may
//! outweigh the share on its own. The executor suites here pin that
//! hub-heavy worklists (star, lollipop) still step bit-identically to
//! the sequential schedule across thread counts, clean and faulted.

use std::sync::Arc;

use graphgen::{Graph, GraphBuilder, NodeId};
use localsim::{
    segments_weighted, Executor, FaultPlan, LocalAlgorithm, NodeCtx, Probe, RecordingSink,
    Transition,
};
use proptest::prelude::*;

/// Checks the full `segments_weighted` contract for one (graph, live,
/// threads) triple; returns an error message on the first violation.
fn check_contract(offsets: &[usize], live: &[NodeId], threads: usize) -> Result<(), TestCaseError> {
    let segs = segments_weighted(live, threads, offsets);
    let k = threads.min(live.len()).max(1);
    prop_assert!(segs.len() <= k, "{} segments for k={k}", segs.len());
    prop_assert!(!live.is_empty() || segs.len() == 1);

    // Coverage in order, each segment non-empty.
    let flat: Vec<NodeId> = segs.iter().flat_map(|s| s.iter().copied()).collect();
    prop_assert_eq!(flat, live.to_vec());
    for s in &segs {
        prop_assert!(!s.is_empty(), "empty segment");
    }

    // Balance: every segment's weight < ceil(total / k) + max single
    // node weight.
    let weight = |v: NodeId| (offsets[v.index() + 1] - offsets[v.index()]) as u64 + 1;
    let total: u64 = live.iter().map(|&v| weight(v)).sum();
    if total == 0 {
        return Ok(());
    }
    let target = total.div_ceil(k as u64);
    let max_w = live.iter().map(|&v| weight(v)).max().unwrap_or(1);
    for (i, s) in segs.iter().enumerate() {
        let w: u64 = s.iter().map(|&v| weight(v)).sum();
        prop_assert!(
            w < target + max_w,
            "segment #{i} weight {w} >= target {target} + max node weight {max_w} \
             (k={k}, total={total})"
        );
    }
    Ok(())
}

fn arb_graph_and_live() -> impl Strategy<Value = (Graph, Vec<NodeId>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 3);
        let keep = proptest::collection::vec(0u8..2, n..n + 1);
        (edges, keep).prop_map(move |(pairs, keep)| {
            let mut b = GraphBuilder::new(n);
            for (a, c) in pairs {
                if a != c {
                    b.add_edge(a, c);
                }
            }
            let g = b.build().expect("builder dedups");
            // A sorted sub-worklist, as compaction produces mid-run.
            let live: Vec<NodeId> = (0..n as u32)
                .map(NodeId)
                .filter(|v| keep[v.index()] == 1)
                .collect();
            (g, live)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random graphs x random live subsets x thread counts: contiguity,
    /// coverage, non-emptiness, and the `< target + max_single_weight`
    /// imbalance bound all hold.
    #[test]
    fn weighted_segments_satisfy_contract(
        case in arb_graph_and_live(),
        threads in 1usize..10,
    ) {
        let (g, live) = case;
        prop_assume!(!live.is_empty());
        check_contract(g.csr_offsets(), &live, threads)?;
    }
}

/// Adversarially skewed worklists: one hub carrying almost all the
/// weight must not drag a proportional share of leaves into its chunk.
#[test]
fn star_hub_gets_a_thin_chunk() {
    let g = graphgen::generators::star(63); // node 0: degree 63, leaves: degree 1
    let live: Vec<NodeId> = (0..64).map(NodeId).collect();
    let offsets = g.csr_offsets();
    let segs = segments_weighted(&live, 4, offsets);
    assert_eq!(segs.len(), 4);
    // total = 64 + 63*2 = 190, target = 48: the hub (weight 64) must
    // close its segment immediately rather than absorb ~16 leaves the
    // way a count-balanced split would.
    assert_eq!(segs[0], &[NodeId(0)], "hub should sit alone: {segs:?}");
    check_contract(offsets, &live, 4).unwrap();
}

/// A lollipop — K16 head welded to a 48-node path tail. No generator
/// builds this shape; it is the canonical mixed-density worklist (head
/// nodes weigh 16x the tail nodes).
fn lollipop(clique: usize, tail: usize) -> Graph {
    let n = clique + tail;
    let mut b = GraphBuilder::new(n);
    for a in 0..clique {
        for c in a + 1..clique {
            b.add_edge(a as u32, c as u32);
        }
    }
    // Weld the tail to the last clique vertex.
    for i in 0..tail {
        let a = if i == 0 { clique - 1 } else { clique + i - 1 };
        b.add_edge(a as u32, (clique + i) as u32);
    }
    b.build().expect("lollipop edges are simple")
}

#[test]
fn lollipop_segments_respect_weight_bound() {
    let g = lollipop(16, 48);
    let live: Vec<NodeId> = (0..64).map(NodeId).collect();
    for threads in [2, 3, 4, 8] {
        check_contract(g.csr_offsets(), &live, threads).unwrap();
    }
    // The clique head (16 nodes, weight 16 each on average) outweighs
    // the tail; with 4 threads the first segment must not reach past
    // the head plus a sliver of tail.
    let segs = segments_weighted(&live, 4, g.csr_offsets());
    assert!(
        segs[0].len() < 16,
        "first segment swallowed the whole clique head: {} nodes",
        segs[0].len()
    );
}

/// Staggered halting (same shape as the equivalence suite) so worklists
/// compact while the partitioner re-splits them every round.
struct StaggerSum;

impl LocalAlgorithm for StaggerSum {
    type State = u64;
    type Output = u64;

    fn init(&self, ctx: &NodeCtx) -> u64 {
        ctx.uid + 1
    }

    fn step(&self, ctx: &NodeCtx, state: &u64, nbrs: &[u64]) -> Transition<u64, u64> {
        let s = state.wrapping_add(nbrs.iter().sum::<u64>());
        if ctx.round > u64::from(ctx.node.0) % 5 {
            Transition::Halt(s)
        } else {
            Transition::Continue(s)
        }
    }
}

/// Hub-heavy graphs step bit-identically (outputs, rounds, full event
/// stream) under weighted partitioning at every thread count, clean and
/// under a lossy fault plan.
#[test]
fn skewed_graphs_step_bit_identically() {
    let graphs = [graphgen::generators::star(63), lollipop(16, 48)];
    let plans: [Option<FaultPlan>; 2] = [
        None,
        Some(FaultPlan {
            seed: 9,
            message_drop_p: 0.25,
            round_jitter: 2,
            node_crash: Vec::new(),
        }),
    ];
    for g in &graphs {
        for plan in &plans {
            let sink = Arc::new(RecordingSink::new());
            let mut seq = Executor::new(g).with_probe(Probe::new(sink.clone()));
            if let Some(p) = plan {
                seq = seq.with_faults(p.clone());
            }
            let seq = seq.run(&StaggerSum, 200).unwrap();
            let seq_events = sink.events();
            for k in [2, 4, 8] {
                let psink = Arc::new(RecordingSink::new());
                let mut par = Executor::new(g)
                    .with_threads(k)
                    .with_probe(Probe::new(psink.clone()));
                if let Some(p) = plan {
                    par = par.with_faults(p.clone());
                }
                let par = par.run(&StaggerSum, 200).unwrap();
                let tag = format!("threads={k}, faulted={}", plan.is_some());
                assert_eq!(par.outputs, seq.outputs, "{tag}");
                assert_eq!(par.rounds, seq.rounds, "{tag}");
                assert_eq!(psink.events(), seq_events, "{tag}");
            }
        }
    }
}
