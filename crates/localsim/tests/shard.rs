//! Equivalence suite for the sharded backend (thread-hosted workers over
//! loopback TCP): an `N`-shard run must be bit-identical to the
//! single-process executor — same outputs, same round count, same
//! normalized telemetry event stream — on every topology × algorithm ×
//! clean/faulted combination, including after a shard is killed mid-run
//! and resumed from a checkpoint. The multi-*process* variant of these
//! checks (real SIGKILL) lives in the workspace-root `tests/shard.rs`.

use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use graphgen::{generators, Graph};
use localsim::shard::{
    read_frame, serve_connect, serve_connect_with, write_frame, Frame, FrameMeter, FrameSeq,
    WorkerBackend, PROTO_VERSION,
};
use localsim::{
    ChaosKill, Event, Executor, FaultPlan, Liveness, NetFaultPlan, Probe, RecordingSink,
    ShardError, ShardedExecutor, SimError, WireAlgo,
};

const MAX_ROUNDS: u64 = 10_000;

fn clique(n: u32) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n)
        .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
        .collect();
    Graph::from_edges(n as usize, edges).unwrap()
}

fn topologies() -> Vec<(&'static str, Graph)> {
    vec![
        ("path", generators::path(24)),
        ("cycle", generators::cycle(24)),
        ("clique", clique(10)),
    ]
}

type Outcome = Result<(Vec<u64>, u64), SimError>;

/// Runs `algo` on the single-process executor, returning the outcome and
/// the normalized event stream.
fn run_single(g: &Graph, algo: WireAlgo, plan: Option<&FaultPlan>) -> (Outcome, Vec<Event>) {
    let sink = Arc::new(RecordingSink::new());
    let mut ex = Executor::new(g).with_probe(Probe::new(sink.clone()));
    if let Some(plan) = plan {
        ex = ex.with_faults(plan.clone());
    }
    let res = ex.run(&algo, MAX_ROUNDS).map(|r| (r.outputs, r.rounds));
    let events = sink.take().into_iter().map(|e| e.normalized()).collect();
    (res, events)
}

/// Runs `algo` on the sharded backend (thread workers), returning the
/// outcome and the normalized event stream. Non-simulation failures
/// (transport, protocol, budget) panic: the suite treats them as bugs.
fn run_sharded(
    g: &Graph,
    algo: WireAlgo,
    plan: Option<&FaultPlan>,
    shards: usize,
    kills: Vec<ChaosKill>,
    checkpoint_every: u64,
) -> (Outcome, Vec<Event>) {
    let sink = Arc::new(RecordingSink::new());
    let mut ex = ShardedExecutor::new(g)
        .with_shards(shards)
        .with_probe(Probe::new(sink.clone()))
        .with_checkpoint_every(checkpoint_every)
        .with_chaos_kills(kills);
    if let Some(plan) = plan {
        ex = ex.with_faults(plan.clone());
    }
    let res = match ex.run(algo, MAX_ROUNDS) {
        Ok(r) => Ok((r.outputs, r.rounds)),
        Err(ShardError::Sim(e)) => Err(e),
        Err(other) => panic!("sharded run failed outside the simulation: {other}"),
    };
    let events = sink.take().into_iter().map(|e| e.normalized()).collect();
    (res, events)
}

fn faulted_plan() -> FaultPlan {
    "seed=7,drop=0.05,jitter=2".parse().unwrap()
}

/// Wire-chaos variant of [`run_sharded`]: thread workers unless `backend`
/// overrides, wire faults from `net`, liveness policy from `liveness`.
#[allow(clippy::too_many_arguments)]
fn run_sharded_chaos(
    g: &Graph,
    algo: WireAlgo,
    plan: Option<&FaultPlan>,
    shards: usize,
    kills: Vec<ChaosKill>,
    net: Option<NetFaultPlan>,
    liveness: Liveness,
    max_respawns: usize,
    backend: Option<WorkerBackend>,
) -> (Outcome, Vec<Event>) {
    let sink = Arc::new(RecordingSink::new());
    let mut ex = ShardedExecutor::new(g)
        .with_shards(shards)
        .with_probe(Probe::new(sink.clone()))
        .with_checkpoint_every(2)
        .with_chaos_kills(kills)
        .with_liveness(liveness)
        .with_max_respawns(max_respawns);
    if let Some(net) = net {
        ex = ex.with_net_faults(net);
    }
    if let Some(backend) = backend {
        ex = ex.with_backend(backend);
    }
    if let Some(plan) = plan {
        ex = ex.with_faults(plan.clone());
    }
    let res = match ex.run(algo, MAX_ROUNDS) {
        Ok(r) => Ok((r.outputs, r.rounds)),
        Err(ShardError::Sim(e)) => Err(e),
        Err(other) => panic!("sharded run failed outside the simulation: {other}"),
    };
    let events = sink.take().into_iter().map(|e| e.normalized()).collect();
    (res, events)
}

#[test]
fn sharded_matches_single_process_on_every_topology_and_plan() {
    for (name, g) in topologies() {
        for algo in [WireAlgo::Greedy, WireAlgo::Rand { seed: 5 }] {
            for (plan_name, plan) in [("clean", None), ("faulted", Some(faulted_plan()))] {
                let (want, want_events) = run_single(&g, algo, plan.as_ref());
                for shards in [2, 4] {
                    let (got, got_events) = run_sharded(&g, algo, plan.as_ref(), shards, vec![], 0);
                    assert_eq!(
                        got, want,
                        "{name}/{algo}/{plan_name}: {shards}-shard outcome diverged"
                    );
                    assert_eq!(
                        got_events, want_events,
                        "{name}/{algo}/{plan_name}: {shards}-shard event stream diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn crash_faults_fail_identically_across_backends() {
    let plan: FaultPlan = "seed=3,crash=2@2+5@3".parse().unwrap();
    for (name, g) in topologies() {
        let (want, want_events) = run_single(&g, WireAlgo::Countdown, Some(&plan));
        assert!(
            matches!(want, Err(SimError::Crashed { crashed: 2, .. })),
            "{name}: expected a crash failure, got {want:?}"
        );
        for shards in [2, 4] {
            let (got, got_events) =
                run_sharded(&g, WireAlgo::Countdown, Some(&plan), shards, vec![], 0);
            assert_eq!(got, want, "{name}: {shards}-shard crash outcome diverged");
            assert_eq!(
                got_events, want_events,
                "{name}: {shards}-shard crash event stream diverged"
            );
        }
    }
}

#[test]
fn killed_shard_resumes_bit_identical_from_checkpoint() {
    let g = generators::cycle(24);
    for algo in [WireAlgo::Rand { seed: 9 }, WireAlgo::Greedy] {
        for (plan_name, plan) in [("clean", None), ("faulted", Some(faulted_plan()))] {
            let (want, want_events) = run_single(&g, algo, plan.as_ref());
            // Kill at a checkpoint boundary (after round 2 with k=2) and
            // mid-interval (after round 3): both must stitch to the same
            // stream — the replayed rounds re-emit nothing.
            for after_round in [2, 3] {
                let kills = vec![ChaosKill {
                    shard: 1,
                    after_round,
                }];
                let (got, got_events) = run_sharded(&g, algo, plan.as_ref(), 3, kills, 2);
                assert_eq!(
                    got, want,
                    "{algo}/{plan_name}: outcome diverged after kill at round {after_round}"
                );
                assert_eq!(
                    got_events, want_events,
                    "{algo}/{plan_name}: stream diverged after kill at round {after_round}"
                );
            }
        }
    }
}

#[test]
fn kill_before_first_round_recovers_from_the_implicit_checkpoint() {
    let g = generators::path(16);
    let (want, want_events) = run_single(&g, WireAlgo::Greedy, None);
    let kills = vec![ChaosKill {
        shard: 0,
        after_round: 0,
    }];
    // checkpoint_every = 0: only the implicit round-0 checkpoint exists.
    let (got, got_events) = run_sharded(&g, WireAlgo::Greedy, None, 4, kills, 0);
    assert_eq!(got, want);
    assert_eq!(got_events, want_events);
}

#[test]
fn more_shards_than_nodes_collapses_to_nonempty_ranges() {
    let g = generators::path(5);
    let (want, _) = run_single(&g, WireAlgo::Greedy, None);
    let (got, _) = run_sharded(&g, WireAlgo::Greedy, None, 64, vec![], 0);
    assert_eq!(got, want);
}

#[test]
fn round_limit_is_reported_like_the_single_process_executor() {
    let g = generators::path(8);
    let sink = Arc::new(RecordingSink::new());
    let err = ShardedExecutor::new(&g)
        .with_shards(2)
        .with_probe(Probe::new(sink))
        .run(WireAlgo::FloodMax { target: 50 }, 3)
        .unwrap_err();
    match err {
        ShardError::Sim(SimError::RoundLimitExceeded {
            limit,
            still_running,
        }) => {
            assert_eq!(limit, 3);
            assert_eq!(still_running, 8);
        }
        other => panic!("expected a round-limit failure, got {other}"),
    }
}

/// A hang needs a barrier deadline to be detected; a tight heartbeat
/// cadence also exercises keepalive frames (which are chaos-exempt and
/// unmetered, so telemetry stays identical).
fn hang_liveness() -> Liveness {
    Liveness {
        barrier_timeout: Some(Duration::from_millis(300)),
        heartbeat_every: Duration::from_millis(100),
        ..Liveness::default()
    }
}

#[test]
fn every_net_fault_class_recovers_bit_identical() {
    let g = generators::cycle(24);
    let cases: Vec<(&str, NetFaultPlan, Liveness)> = vec![
        (
            "delay",
            NetFaultPlan {
                seed: 3,
                delay_p: 0.3,
                ..NetFaultPlan::default()
            },
            Liveness::default(),
        ),
        (
            "dup",
            NetFaultPlan {
                seed: 3,
                dup_p: 0.3,
                ..NetFaultPlan::default()
            },
            Liveness::default(),
        ),
        (
            "corrupt",
            NetFaultPlan {
                seed: 3,
                corrupt_p: 0.01,
                ..NetFaultPlan::default()
            },
            Liveness::default(),
        ),
        (
            "reset",
            NetFaultPlan {
                resets: vec![(1, 2)],
                ..NetFaultPlan::default()
            },
            Liveness::default(),
        ),
        (
            "hang",
            NetFaultPlan {
                hangs: vec![(1, 2)],
                ..NetFaultPlan::default()
            },
            hang_liveness(),
        ),
    ];
    for algo in [WireAlgo::Greedy, WireAlgo::Rand { seed: 5 }] {
        let (want, want_events) = run_single(&g, algo, None);
        for (name, net, liveness) in &cases {
            let (got, got_events) = run_sharded_chaos(
                &g,
                algo,
                None,
                3,
                vec![],
                Some(net.clone()),
                *liveness,
                10,
                None,
            );
            assert_eq!(got, want, "{algo}/{name}: outcome diverged under chaos");
            assert_eq!(
                got_events, want_events,
                "{algo}/{name}: event stream diverged under chaos"
            );
        }
    }
}

#[test]
fn net_chaos_composes_with_simulated_faults_and_kills() {
    let g = generators::cycle(24);
    let plan = faulted_plan();
    let net = NetFaultPlan {
        seed: 11,
        delay_p: 0.05,
        dup_p: 0.2,
        corrupt_p: 0.005,
        resets: vec![(0, 3)],
        hangs: vec![],
    };
    let (want, want_events) = run_single(&g, WireAlgo::Greedy, Some(&plan));
    let kills = vec![ChaosKill {
        shard: 1,
        after_round: 2,
    }];
    let (got, got_events) = run_sharded_chaos(
        &g,
        WireAlgo::Greedy,
        Some(&plan),
        3,
        kills,
        Some(net),
        Liveness::default(),
        10,
        None,
    );
    assert_eq!(got, want, "composed chaos: outcome diverged");
    assert_eq!(got_events, want_events, "composed chaos: stream diverged");
}

#[test]
fn respawn_exhaustion_degrades_to_in_process_adoption() {
    let g = generators::cycle(24);
    let (want, want_events) = run_single(&g, WireAlgo::Greedy, None);
    let kills = vec![ChaosKill {
        shard: 1,
        after_round: 1,
    }];
    // Budget 0: the first kill exhausts it, so the coordinator must
    // adopt shard 1's range in-process instead of aborting.
    let (got, got_events) = run_sharded_chaos(
        &g,
        WireAlgo::Greedy,
        None,
        3,
        kills,
        None,
        Liveness::default(),
        0,
        None,
    );
    assert_eq!(got, want, "degraded run must still match the reference");
    let degraded: Vec<&Event> = got_events
        .iter()
        .filter(|e| matches!(e, Event::Degraded { .. }))
        .collect();
    match degraded.as_slice() {
        [Event::Degraded {
            scope,
            unit,
            reason,
            ..
        }] => {
            assert_eq!(scope, "shard");
            assert_eq!(*unit, 1);
            assert!(
                reason.contains("respawn budget"),
                "reason should name the budget: {reason}"
            );
        }
        other => panic!("expected exactly one shard Degraded event, got {other:?}"),
    }
    // Apart from the Degraded marker, the stream is the reference stream.
    let filtered: Vec<Event> = got_events
        .into_iter()
        .filter(|e| !matches!(e, Event::Degraded { .. }))
        .collect();
    assert_eq!(filtered, want_events);
}

#[test]
fn worker_death_between_hello_and_init_ack_recovers() {
    let g = generators::cycle(24);
    let (want, want_events) = run_single(&g, WireAlgo::Greedy, None);
    // Spawns 0..3 are the initial shards; spawn 3 is the respawn after
    // the chaos kill. That generation dies mid-handshake (Hello sent,
    // Init read, no InitAck); the retry (spawn 4) serves cleanly.
    let spawns = Arc::new(AtomicUsize::new(0));
    let backend = WorkerBackend::Custom(Arc::new({
        let spawns = spawns.clone();
        move |addr: String| {
            if spawns.fetch_add(1, Ordering::SeqCst) == 3 {
                let mut s = TcpStream::connect(&addr).unwrap();
                let meter = FrameMeter::disabled();
                let (mut tx, mut rx) = (FrameSeq::default(), FrameSeq::default());
                let hello = Frame::Hello {
                    version: PROTO_VERSION,
                }
                .encode();
                write_frame(&mut s, &hello, &meter, &mut tx).unwrap();
                let _ = read_frame(&mut s, &meter, &mut rx);
            } else {
                let _ = serve_connect(&addr);
            }
        }
    }));
    let kills = vec![ChaosKill {
        shard: 1,
        after_round: 1,
    }];
    let (got, got_events) = run_sharded_chaos(
        &g,
        WireAlgo::Greedy,
        None,
        3,
        kills,
        None,
        Liveness::default(),
        4,
        Some(backend),
    );
    assert_eq!(got, want, "handshake death: outcome diverged");
    assert_eq!(got_events, want_events, "handshake death: stream diverged");
    assert!(
        spawns.load(Ordering::SeqCst) >= 5,
        "expected initial spawns + sabotaged respawn + clean retry"
    );
}

/// A [`WorkerBackend::Custom`] that interposes a byte-level proxy between
/// a real worker and the coordinator for the spawn generations selected
/// by `sabotaged`, killing both sockets the first time `trigger` matches
/// a coordinator→worker frame. All other generations serve directly.
fn mitm_backend(
    sabotaged: &'static [usize],
    trigger: fn(&Frame) -> bool,
) -> (Arc<AtomicUsize>, WorkerBackend) {
    let spawns = Arc::new(AtomicUsize::new(0));
    let backend = WorkerBackend::Custom(Arc::new({
        let spawns = spawns.clone();
        move |addr: String| {
            let generation = spawns.fetch_add(1, Ordering::SeqCst);
            if !sabotaged.contains(&generation) {
                let _ = serve_connect(&addr);
                return;
            }
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let proxy_addr = listener.local_addr().unwrap().to_string();
            std::thread::spawn(move || {
                let _ = serve_connect(&proxy_addr);
            });
            let (worker_side, _) = listener.accept().unwrap();
            let coord_side = TcpStream::connect(&addr).unwrap();
            // Worker→coordinator leg: forward frames verbatim (the proxy
            // re-frames, so sequence numbers stay 1:1).
            let pump = std::thread::spawn({
                let mut r = worker_side.try_clone().unwrap();
                let mut w = coord_side.try_clone().unwrap();
                move || {
                    let meter = FrameMeter::disabled();
                    let (mut rx, mut tx) = (FrameSeq::default(), FrameSeq::default());
                    while let Ok(p) = read_frame(&mut r, &meter, &mut rx) {
                        if write_frame(&mut w, &p, &meter, &mut tx).is_err() {
                            break;
                        }
                    }
                }
            });
            // Coordinator→worker leg: forward until the trigger fires,
            // then kill both connections mid-exchange.
            let meter = FrameMeter::disabled();
            let (mut rx, mut tx) = (FrameSeq::default(), FrameSeq::default());
            let mut r = coord_side.try_clone().unwrap();
            let mut w = worker_side.try_clone().unwrap();
            while let Ok(p) = read_frame(&mut r, &meter, &mut rx) {
                if Frame::decode(&p).is_ok_and(|f| trigger(&f)) {
                    break;
                }
                if write_frame(&mut w, &p, &meter, &mut tx).is_err() {
                    break;
                }
            }
            let _ = coord_side.shutdown(Shutdown::Both);
            let _ = worker_side.shutdown(Shutdown::Both);
            let _ = pump.join();
        }
    }));
    (spawns, backend)
}

#[test]
fn worker_death_mid_dump_recovers() {
    let g = generators::cycle(24);
    let (want, want_events) = run_single(&g, WireAlgo::Greedy, None);
    // Initial shard 0 sits behind a proxy that dies on the first
    // checkpoint DumpReq; the respawn serves cleanly and the run
    // restores from the round-0 checkpoint.
    let (_, backend) = mitm_backend(&[0], |f| matches!(f, Frame::DumpReq { .. }));
    let (got, got_events) = run_sharded_chaos(
        &g,
        WireAlgo::Greedy,
        None,
        3,
        vec![],
        None,
        Liveness::default(),
        4,
        Some(backend),
    );
    assert_eq!(got, want, "mid-dump death: outcome diverged");
    assert_eq!(got_events, want_events, "mid-dump death: stream diverged");
}

#[test]
fn worker_death_during_restore_broadcast_recovers() {
    let g = generators::cycle(24);
    let (want, want_events) = run_single(&g, WireAlgo::Greedy, None);
    // Chaos-kill shard 0 at round 2; the recovery broadcast then hits
    // shard 1's proxy, which dies on the Restore frame — a failure
    // *inside* recovery, which must itself recover.
    let (_, backend) = mitm_backend(&[1], |f| matches!(f, Frame::Restore { .. }));
    let kills = vec![ChaosKill {
        shard: 0,
        after_round: 2,
    }];
    let (got, got_events) = run_sharded_chaos(
        &g,
        WireAlgo::Greedy,
        None,
        3,
        kills,
        None,
        Liveness::default(),
        4,
        Some(backend),
    );
    assert_eq!(got, want, "restore-broadcast death: outcome diverged");
    assert_eq!(
        got_events, want_events,
        "restore-broadcast death: stream diverged"
    );
}

#[test]
fn never_connecting_worker_fails_with_connect_timeout_not_a_hang() {
    let g = generators::path(12);
    let backend = WorkerBackend::Custom(Arc::new(|_addr: String| {}));
    let liveness = Liveness {
        connect_timeout: Duration::from_millis(300),
        ..Liveness::default()
    };
    let err = ShardedExecutor::new(&g)
        .with_shards(2)
        .with_backend(backend)
        .with_liveness(liveness)
        .run(WireAlgo::Greedy, 100)
        .unwrap_err();
    assert!(
        !matches!(err, ShardError::Sim(_)),
        "expected a transport-layer failure, got {err}"
    );
}

#[test]
fn orphaned_worker_exits_after_its_read_timeout() {
    // A fake coordinator that accepts the connection and then goes
    // silent without closing the socket: the worker must give up after
    // its read timeout with an error naming the coordinator, not hang.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let worker = std::thread::spawn(move || serve_connect_with(&addr, Duration::from_millis(300)));
    let (sock, _) = listener.accept().unwrap();
    let err = worker.join().unwrap().unwrap_err();
    assert!(
        err.to_string().contains("coordinator"),
        "orphan error should blame the silent coordinator: {err}"
    );
    drop(sock);
}

#[test]
fn checkpoint_files_are_written_at_phase_boundaries() {
    let dir = std::env::temp_dir().join(format!("shard-ckpt-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let g = generators::cycle(12);
    let run = ShardedExecutor::new(&g)
        .with_shards(2)
        .with_checkpoint_every(2)
        .with_checkpoint_dir(Some(dir.clone()))
        .run(WireAlgo::Greedy, MAX_ROUNDS)
        .unwrap();
    assert!(run.rounds >= 2, "greedy on a cycle needs multiple rounds");
    let ckpt0 = dir.join("shard-checkpoint-0000.json");
    let ckpt2 = dir.join("shard-checkpoint-0002.json");
    for path in [&ckpt0, &ckpt2] {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("missing checkpoint {}: {e}", path.display()));
        let value = serde::json::parse(&text).unwrap();
        let states = value.field("states").unwrap();
        let count = match states {
            serde::Value::Seq(items) => items.len(),
            other => panic!("states should be a sequence, got {other:?}"),
        };
        assert_eq!(
            count,
            12,
            "checkpoint {} should carry all 12 states",
            path.display()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
