//! Equivalence suite for the sharded backend (thread-hosted workers over
//! loopback TCP): an `N`-shard run must be bit-identical to the
//! single-process executor — same outputs, same round count, same
//! normalized telemetry event stream — on every topology × algorithm ×
//! clean/faulted combination, including after a shard is killed mid-run
//! and resumed from a checkpoint. The multi-*process* variant of these
//! checks (real SIGKILL) lives in the workspace-root `tests/shard.rs`.

use std::sync::Arc;

use graphgen::{generators, Graph};
use localsim::{
    ChaosKill, Event, Executor, FaultPlan, Probe, RecordingSink, ShardError, ShardedExecutor,
    SimError, WireAlgo,
};

const MAX_ROUNDS: u64 = 10_000;

fn clique(n: u32) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n)
        .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
        .collect();
    Graph::from_edges(n as usize, edges).unwrap()
}

fn topologies() -> Vec<(&'static str, Graph)> {
    vec![
        ("path", generators::path(24)),
        ("cycle", generators::cycle(24)),
        ("clique", clique(10)),
    ]
}

type Outcome = Result<(Vec<u64>, u64), SimError>;

/// Runs `algo` on the single-process executor, returning the outcome and
/// the normalized event stream.
fn run_single(g: &Graph, algo: WireAlgo, plan: Option<&FaultPlan>) -> (Outcome, Vec<Event>) {
    let sink = Arc::new(RecordingSink::new());
    let mut ex = Executor::new(g).with_probe(Probe::new(sink.clone()));
    if let Some(plan) = plan {
        ex = ex.with_faults(plan.clone());
    }
    let res = ex.run(&algo, MAX_ROUNDS).map(|r| (r.outputs, r.rounds));
    let events = sink.take().into_iter().map(|e| e.normalized()).collect();
    (res, events)
}

/// Runs `algo` on the sharded backend (thread workers), returning the
/// outcome and the normalized event stream. Non-simulation failures
/// (transport, protocol, budget) panic: the suite treats them as bugs.
fn run_sharded(
    g: &Graph,
    algo: WireAlgo,
    plan: Option<&FaultPlan>,
    shards: usize,
    kills: Vec<ChaosKill>,
    checkpoint_every: u64,
) -> (Outcome, Vec<Event>) {
    let sink = Arc::new(RecordingSink::new());
    let mut ex = ShardedExecutor::new(g)
        .with_shards(shards)
        .with_probe(Probe::new(sink.clone()))
        .with_checkpoint_every(checkpoint_every)
        .with_chaos_kills(kills);
    if let Some(plan) = plan {
        ex = ex.with_faults(plan.clone());
    }
    let res = match ex.run(algo, MAX_ROUNDS) {
        Ok(r) => Ok((r.outputs, r.rounds)),
        Err(ShardError::Sim(e)) => Err(e),
        Err(other) => panic!("sharded run failed outside the simulation: {other}"),
    };
    let events = sink.take().into_iter().map(|e| e.normalized()).collect();
    (res, events)
}

fn faulted_plan() -> FaultPlan {
    "seed=7,drop=0.05,jitter=2".parse().unwrap()
}

#[test]
fn sharded_matches_single_process_on_every_topology_and_plan() {
    for (name, g) in topologies() {
        for algo in [WireAlgo::Greedy, WireAlgo::Rand { seed: 5 }] {
            for (plan_name, plan) in [("clean", None), ("faulted", Some(faulted_plan()))] {
                let (want, want_events) = run_single(&g, algo, plan.as_ref());
                for shards in [2, 4] {
                    let (got, got_events) = run_sharded(&g, algo, plan.as_ref(), shards, vec![], 0);
                    assert_eq!(
                        got, want,
                        "{name}/{algo}/{plan_name}: {shards}-shard outcome diverged"
                    );
                    assert_eq!(
                        got_events, want_events,
                        "{name}/{algo}/{plan_name}: {shards}-shard event stream diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn crash_faults_fail_identically_across_backends() {
    let plan: FaultPlan = "seed=3,crash=2@2+5@3".parse().unwrap();
    for (name, g) in topologies() {
        let (want, want_events) = run_single(&g, WireAlgo::Countdown, Some(&plan));
        assert!(
            matches!(want, Err(SimError::Crashed { crashed: 2, .. })),
            "{name}: expected a crash failure, got {want:?}"
        );
        for shards in [2, 4] {
            let (got, got_events) =
                run_sharded(&g, WireAlgo::Countdown, Some(&plan), shards, vec![], 0);
            assert_eq!(got, want, "{name}: {shards}-shard crash outcome diverged");
            assert_eq!(
                got_events, want_events,
                "{name}: {shards}-shard crash event stream diverged"
            );
        }
    }
}

#[test]
fn killed_shard_resumes_bit_identical_from_checkpoint() {
    let g = generators::cycle(24);
    for algo in [WireAlgo::Rand { seed: 9 }, WireAlgo::Greedy] {
        for (plan_name, plan) in [("clean", None), ("faulted", Some(faulted_plan()))] {
            let (want, want_events) = run_single(&g, algo, plan.as_ref());
            // Kill at a checkpoint boundary (after round 2 with k=2) and
            // mid-interval (after round 3): both must stitch to the same
            // stream — the replayed rounds re-emit nothing.
            for after_round in [2, 3] {
                let kills = vec![ChaosKill {
                    shard: 1,
                    after_round,
                }];
                let (got, got_events) = run_sharded(&g, algo, plan.as_ref(), 3, kills, 2);
                assert_eq!(
                    got, want,
                    "{algo}/{plan_name}: outcome diverged after kill at round {after_round}"
                );
                assert_eq!(
                    got_events, want_events,
                    "{algo}/{plan_name}: stream diverged after kill at round {after_round}"
                );
            }
        }
    }
}

#[test]
fn kill_before_first_round_recovers_from_the_implicit_checkpoint() {
    let g = generators::path(16);
    let (want, want_events) = run_single(&g, WireAlgo::Greedy, None);
    let kills = vec![ChaosKill {
        shard: 0,
        after_round: 0,
    }];
    // checkpoint_every = 0: only the implicit round-0 checkpoint exists.
    let (got, got_events) = run_sharded(&g, WireAlgo::Greedy, None, 4, kills, 0);
    assert_eq!(got, want);
    assert_eq!(got_events, want_events);
}

#[test]
fn more_shards_than_nodes_collapses_to_nonempty_ranges() {
    let g = generators::path(5);
    let (want, _) = run_single(&g, WireAlgo::Greedy, None);
    let (got, _) = run_sharded(&g, WireAlgo::Greedy, None, 64, vec![], 0);
    assert_eq!(got, want);
}

#[test]
fn round_limit_is_reported_like_the_single_process_executor() {
    let g = generators::path(8);
    let sink = Arc::new(RecordingSink::new());
    let err = ShardedExecutor::new(&g)
        .with_shards(2)
        .with_probe(Probe::new(sink))
        .run(WireAlgo::FloodMax { target: 50 }, 3)
        .unwrap_err();
    match err {
        ShardError::Sim(SimError::RoundLimitExceeded {
            limit,
            still_running,
        }) => {
            assert_eq!(limit, 3);
            assert_eq!(still_running, 8);
        }
        other => panic!("expected a round-limit failure, got {other}"),
    }
}

#[test]
fn checkpoint_files_are_written_at_phase_boundaries() {
    let dir = std::env::temp_dir().join(format!("shard-ckpt-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let g = generators::cycle(12);
    let run = ShardedExecutor::new(&g)
        .with_shards(2)
        .with_checkpoint_every(2)
        .with_checkpoint_dir(Some(dir.clone()))
        .run(WireAlgo::Greedy, MAX_ROUNDS)
        .unwrap();
    assert!(run.rounds >= 2, "greedy on a cycle needs multiple rounds");
    let ckpt0 = dir.join("shard-checkpoint-0000.json");
    let ckpt2 = dir.join("shard-checkpoint-0002.json");
    for path in [&ckpt0, &ckpt2] {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("missing checkpoint {}: {e}", path.display()));
        let value = serde::json::parse(&text).unwrap();
        let states = value.field("states").unwrap();
        let count = match states {
            serde::Value::Seq(items) => items.len(),
            other => panic!("states should be a sequence, got {other:?}"),
        };
        assert_eq!(
            count,
            12,
            "checkpoint {} should carry all 12 states",
            path.display()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
