//! The `default_threads` / `set_default_threads` resolution order, and
//! its interaction with the persistent worker pools.
//!
//! The process-wide default resolves exactly once (first read of
//! `LOCALSIM_THREADS` or first `set_default_threads`, whichever runs
//! first) and never changes. That immutability is what makes the
//! persistent pools safe: a pool's width is snapshotted at lease time,
//! so a mid-run `set_default_threads` cannot resize a live pool — it
//! returns `false` and has no effect. This file is its own test binary
//! (hence its own process) so the `OnceLock` starts unresolved; the
//! whole scenario lives in one `#[test]` because the lock is
//! process-global and test functions share the process.

use localsim::{
    default_threads, set_default_threads, Executor, LocalAlgorithm, NodeCtx, Transition,
};

struct CountRounds;

impl LocalAlgorithm for CountRounds {
    type State = u64;
    type Output = u64;

    fn init(&self, _ctx: &NodeCtx) -> u64 {
        0
    }

    fn step(&self, ctx: &NodeCtx, state: &u64, _nbrs: &[u64]) -> Transition<u64, u64> {
        if ctx.round >= 3 {
            Transition::Halt(*state + 1)
        } else {
            Transition::Continue(*state + 1)
        }
    }
}

#[test]
fn default_is_immutable_after_first_resolution() {
    // The harness does not set LOCALSIM_THREADS, but stay robust if the
    // environment does: whatever the first read resolves to is the
    // pinned value for the rest of the process.
    let resolved = default_threads();
    assert!(resolved >= 1);

    // Too late: the default has been read, so pinning a *different*
    // count must be refused and the resolved value must stay in force.
    assert!(
        !set_default_threads(resolved + 1),
        "set_default_threads succeeded after default_threads resolved"
    );
    assert_eq!(
        default_threads(),
        resolved,
        "refused set still changed the value"
    );

    // Refusal is permanent, not first-call-only.
    assert!(!set_default_threads(resolved));
    assert_eq!(default_threads(), resolved);

    // The frozen default does not cap explicit opt-in: an executor
    // handed `with_threads(4)` leases a 4-slot pool and still steps
    // (bit-identically — see tests/equivalence.rs) even though the
    // process default stayed at `resolved`.
    let g = graphgen::generators::star(16);
    let seq = Executor::new(&g).run(&CountRounds, 10).unwrap();
    let par = Executor::new(&g)
        .with_threads(4)
        .run(&CountRounds, 10)
        .unwrap();
    assert_eq!(par.outputs, seq.outputs);
    assert_eq!(par.rounds, seq.rounds);
    assert_eq!(
        default_threads(),
        resolved,
        "explicit with_threads leaked into the default"
    );
}
