//! Persistent epoch-barrier worker pool.
//!
//! LOCAL-model rounds are tiny — on a path graph a round is a few
//! microseconds of work — so the per-round `std::thread::scope`
//! spawn/join the executors used through PR 4 cost more than the round
//! itself (`BENCH_executors.json` showed `par4` 2–3x *slower* than
//! `seq` on every topology). This module replaces it: OS threads are
//! spawned **once per lease** and then parked on a condvar between
//! rounds; each round is one *epoch* — publish a job, wake the workers,
//! run slot 0 on the caller, and block until the last worker checks in.
//! The steady-state cost of a round is one mutex hand-off and one
//! wake/park cycle per worker instead of a thread create/destroy pair.
//!
//! # Determinism
//!
//! The pool adds no scheduling freedom: worker `i` always receives slot
//! index `i`, so callers that assign segment `i` to slot `i` and merge
//! in segment order keep the bit-identity contract of the scoped path.
//! Dynamic-scheduling callers (`core::pool`) put the shared claim
//! counter *inside* the job, which is exactly what the scoped version
//! did.
//!
//! # Thread-local reuse
//!
//! [`lease`] caches one pool per OS thread: a pipeline that runs
//! hundreds of primitive executors back to back re-uses the same parked
//! workers instead of respawning per run. The cache is keyed by slot
//! count — leasing a different width drops the cached pool (joining its
//! threads) and spawns a fresh one. A nested lease on the same thread
//! (a parallel executor inside a pool job) simply spawns a transient
//! pool, because the cached one is checked out by the outer caller.
//!
//! Pool width is fixed at construction. The process-wide default in
//! [`crate::default_threads`] is resolved once and never changes, so a
//! `set_default_threads` call mid-run cannot resize a live pool — it
//! returns `false` and the established width stays in force (see
//! `tests/threads_config.rs`).

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Locks the epoch state, recovering from a poisoned mutex.
///
/// Poisoning can only happen if a thread panicked *while holding* the
/// state lock (the user job always runs outside it, under
/// `catch_unwind`). The state transitions under the lock are all
/// trivially complete-or-untouched, so the data is still consistent;
/// recovering here means one poisoned epoch reports its original panic
/// instead of cascading `expect` aborts through every parked worker and
/// the next `lease` call.
fn lock_state(m: &Mutex<EpochState>) -> MutexGuard<'_, EpochState> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A borrowed `Fn(usize) + Sync` job with its lifetime erased so parked
/// workers (spawned long before the job existed) can run it.
///
/// # Safety
///
/// The pointee is only dereferenced by workers between the epoch
/// publish and their check-in decrement, and [`WorkerPool::run_epoch`]
/// does not return — not even by unwinding — until every worker has
/// checked in and the job slot is cleared. The borrow therefore always
/// outlives every dereference. The pointee is `Sync`, so sharing the
/// pointer across worker threads is sound.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared references to it may cross
// threads); the pointer itself is only an address.
unsafe impl Send for Job {}

struct EpochState {
    /// Bumped once per epoch; workers use it to detect fresh work.
    epoch: u64,
    job: Option<Job>,
    /// Workers that have not yet checked in for the current epoch.
    remaining: usize,
    shutdown: bool,
    /// First panic payload captured from a worker this epoch.
    panic: Option<PanicPayload>,
}

struct Shared {
    state: Mutex<EpochState>,
    /// Workers park here between epochs.
    work_cv: Condvar,
    /// The caller parks here until `remaining` hits zero.
    done_cv: Condvar,
}

/// A fixed-width pool of parked worker threads driven by per-round
/// epochs. See the module docs for the design.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    slots: usize,
    /// Set once an epoch has propagated a panic (from any slot). A
    /// tainted pool still works — the barrier contained the panic — but
    /// [`PoolLease`] refuses to re-cache it, so thread-local reuse never
    /// hands a pool with a panicked history to an unsuspecting caller.
    panicked: bool,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("slots", &self.slots)
            .finish()
    }
}

impl WorkerPool {
    /// A pool with `slots` logical workers: the caller runs slot 0 in
    /// [`run_epoch`](Self::run_epoch), and `slots - 1` OS threads are
    /// spawned (and immediately parked) for the rest. `slots <= 1`
    /// spawns nothing and runs epochs inline.
    #[must_use]
    pub fn new(slots: usize) -> Self {
        let slots = slots.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(EpochState {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
                panic: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..slots)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("localsim-pool-{slot}"))
                    .spawn(move || worker_loop(&shared, slot))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            slots,
            panicked: false,
        }
    }

    /// Number of logical worker slots (caller included).
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Whether any past epoch propagated a panic out of
    /// [`run_epoch`](Self::run_epoch).
    #[must_use]
    pub fn panicked(&self) -> bool {
        self.panicked
    }

    /// Runs one epoch: `f(0)` on the calling thread and `f(1)` …
    /// `f(slots - 1)` on the parked workers, returning only after every
    /// slot has finished. `f` sees each slot index exactly once per
    /// epoch.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from any slot — after all workers have checked
    /// in, so borrows captured by `f` are dead before unwinding reaches
    /// the caller.
    pub fn run_epoch<F: Fn(usize) + Sync>(&mut self, f: &F) {
        let spawned = self.handles.len();
        if spawned == 0 {
            f(0);
            return;
        }
        let erased: *const (dyn Fn(usize) + Sync) = f;
        // SAFETY: erases the borrow's lifetime so parked workers can hold
        // the pointer; see `Job` for why every dereference happens while
        // the borrow is live.
        let job = Job(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(erased)
        });
        {
            let mut st = lock_state(&self.shared.state);
            debug_assert!(st.job.is_none() && st.remaining == 0, "epoch overlap");
            st.job = Some(job);
            st.epoch = st.epoch.wrapping_add(1);
            st.remaining = spawned;
            self.shared.work_cv.notify_all();
        }
        let caller = catch_unwind(AssertUnwindSafe(|| f(0)));
        let worker_panic = {
            let mut st = lock_state(&self.shared.state);
            while st.remaining > 0 {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            st.job = None;
            st.panic.take()
        };
        // The first panic wins: a caller panic is re-raised before any
        // worker payload, and either taints the pool so the thread-local
        // lease cache will not silently re-issue it.
        if let Err(p) = caller {
            self.panicked = true;
            resume_unwind(p);
        }
        if let Some(p) = worker_panic {
            self.panicked = true;
            resume_unwind(p);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_state(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, slot: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock_state(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen && st.job.is_some() {
                    break;
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            seen = st.epoch;
            *st.job.as_ref().expect("job present at epoch start")
        };
        // SAFETY: see `Job` — the caller blocks in `run_epoch` until we
        // check in below, so the borrow behind the pointer is live.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(slot) }));
        let mut st = lock_state(&shared.state);
        if let Err(p) = result {
            st.panic.get_or_insert(p);
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_one();
        }
    }
}

thread_local! {
    static CACHED: RefCell<Option<WorkerPool>> = const { RefCell::new(None) };
}

/// A checked-out [`WorkerPool`], returned to this thread's cache on
/// drop so the next lease of the same width skips the spawn entirely.
#[derive(Debug)]
pub struct PoolLease {
    pool: Option<WorkerPool>,
}

impl PoolLease {
    /// See [`WorkerPool::run_epoch`].
    pub fn run_epoch<F: Fn(usize) + Sync>(&mut self, f: &F) {
        self.pool
            .as_mut()
            .expect("lease holds a pool until drop")
            .run_epoch(f);
    }

    /// Number of logical worker slots (caller included).
    #[must_use]
    pub fn slots(&self) -> usize {
        self.pool.as_ref().map_or(1, WorkerPool::slots)
    }
}

impl Drop for PoolLease {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            // A pool that propagated a panic is dropped here (joining
            // its workers) instead of being re-cached: the epoch barrier
            // contained the panic, but the cache must not hand the
            // tainted pool to the next lease on this thread.
            if pool.panicked() {
                return;
            }
            // Park the pool for the next lease; if the slot is occupied
            // (nested lease returned first) or thread-local storage is
            // gone (thread exit), just drop it — Drop joins the workers.
            let _ = CACHED.try_with(|c| {
                let mut slot = c.borrow_mut();
                if slot.is_none() {
                    *slot = Some(pool);
                }
            });
        }
    }
}

/// Checks a pool of exactly `slots` logical workers out of this
/// thread's cache, spawning one (and dropping a mismatched cached pool)
/// if needed. Width is fixed for the lease's lifetime — re-reads of
/// [`crate::default_threads`] never resize a live pool.
#[must_use]
pub fn lease(slots: usize) -> PoolLease {
    let cached = CACHED
        .try_with(|c| c.borrow_mut().take())
        .ok()
        .flatten()
        .filter(|p| p.slots() == slots.max(1) && !p.panicked());
    PoolLease {
        pool: Some(cached.unwrap_or_else(|| WorkerPool::new(slots))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_slot_runs_exactly_once_per_epoch() {
        let mut pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..100 {
            pool.run_epoch(&|slot| {
                hits[slot].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn epochs_see_fresh_borrows() {
        // The job borrows round-local data; each epoch must observe the
        // current round's buffer, not a stale one.
        let mut pool = WorkerPool::new(3);
        for round in 0..50u64 {
            let inputs: Vec<u64> = (0..3).map(|s| round * 10 + s).collect();
            let outputs: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
            pool.run_epoch(&|slot| {
                outputs[slot].store(inputs[slot] as usize, Ordering::Relaxed);
            });
            for (s, out) in outputs.iter().enumerate() {
                assert_eq!(out.load(Ordering::Relaxed) as u64, round * 10 + s as u64);
            }
        }
    }

    #[test]
    fn single_slot_runs_inline() {
        let mut pool = WorkerPool::new(1);
        let caller = std::thread::current().id();
        let mut ran_on = None;
        let ran = Mutex::new(&mut ran_on);
        pool.run_epoch(&|slot| {
            assert_eq!(slot, 0);
            **ran.lock().unwrap() = Some(std::thread::current().id());
        });
        assert_eq!(ran_on, Some(caller));
    }

    #[test]
    fn worker_panic_propagates_after_barrier() {
        let mut pool = WorkerPool::new(4);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run_epoch(&|slot| {
                if slot == 2 {
                    panic!("boom in slot 2");
                }
            });
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("boom"), "got {msg:?}");
        // The pool survives a panicked epoch and runs the next one.
        let ok = AtomicUsize::new(0);
        pool.run_epoch(&|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    /// Regression for the epoch-barrier panic path under the lease
    /// cache: a worker panic inside a leased epoch must surface the
    /// *original* payload to the caller (not a poisoned-mutex abort),
    /// and the next `lease` of the same width on this thread must hand
    /// out a healthy pool that runs epochs normally.
    #[test]
    fn lease_again_after_contained_worker_panic() {
        let mut leased = lease(4);
        let err = catch_unwind(AssertUnwindSafe(|| {
            leased.run_epoch(&|slot| {
                if slot == 3 {
                    panic!("leased boom in slot 3");
                }
            });
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(
            msg.contains("leased boom"),
            "original payload lost: {msg:?}"
        );
        // Returning the tainted lease must invalidate the cache slot…
        drop(leased);
        // …so the next lease gets a pool with a clean history that runs
        // a full epoch.
        let mut again = lease(4);
        assert_eq!(again.slots(), 4);
        let hits = AtomicUsize::new(0);
        again.run_epoch(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    /// A caller-slot panic (slot 0) taints the pool the same way a
    /// worker panic does: the lease cache refuses to re-issue it.
    #[test]
    fn caller_panic_also_invalidates_the_cache() {
        let mut pool = WorkerPool::new(2);
        assert!(!pool.panicked());
        let _ = catch_unwind(AssertUnwindSafe(|| {
            pool.run_epoch(&|slot| {
                if slot == 0 {
                    panic!("caller boom");
                }
            });
        }))
        .unwrap_err();
        assert!(pool.panicked());
        // The pool itself still runs epochs — the flag only gates the
        // thread-local cache, not correctness of the barrier.
        let hits = AtomicUsize::new(0);
        pool.run_epoch(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn lease_reuses_cached_pool_of_same_width() {
        let first = lease(3);
        drop(first);
        let again = lease(3);
        assert_eq!(again.slots(), 3);
        drop(again);
        // A different width replaces the cached pool.
        let wider = lease(5);
        assert_eq!(wider.slots(), 5);
    }

    #[test]
    fn nested_lease_gets_its_own_pool() {
        let mut outer = lease(2);
        let mut inner = lease(2);
        let count = AtomicUsize::new(0);
        outer.run_epoch(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        inner.run_epoch(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }
}
