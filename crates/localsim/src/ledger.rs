//! Round accounting for composite algorithms.

use std::fmt;

use serde::{Deserialize, Serialize};
use telemetry::{ChargeKind, Event, Probe};

/// One charged item on a [`RoundLedger`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Which phase or subroutine incurred the cost.
    pub phase: String,
    /// LOCAL rounds charged.
    pub rounds: u64,
}

/// Accumulates the LOCAL-round cost of a composite algorithm, phase by
/// phase.
///
/// Three kinds of charges exist, mirroring how the paper accounts rounds:
///
/// * [`RoundLedger::charge`] — rounds measured by an [`crate::Executor`]
///   run on the real communication graph.
/// * [`RoundLedger::charge_constant`] — a documented `O(1)` cost for a
///   constant-radius local computation (collecting the radius-`r` ball
///   costs `r` rounds; everything computed from it is free).
/// * [`RoundLedger::charge_virtual`] — rounds of a subroutine run on a
///   virtual graph, multiplied by the constant dilation of simulating one
///   virtual round on the real network.
///
/// # Example
///
/// ```
/// use localsim::RoundLedger;
///
/// let mut ledger = RoundLedger::new();
/// ledger.charge("maximal matching", 12);
/// ledger.charge_constant("ACD computation", 2);
/// ledger.charge_virtual("pair coloring", 5, 3);
/// assert_eq!(ledger.total(), 12 + 2 + 15);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoundLedger {
    entries: Vec<LedgerEntry>,
    probe: Probe,
}

impl PartialEq for RoundLedger {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Eq for RoundLedger {}

impl Serialize for RoundLedger {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![("entries".to_string(), self.entries.to_value())])
    }
}

impl<'de> Deserialize<'de> for RoundLedger {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(RoundLedger {
            entries: Vec::from_value(v.field("entries")?)?,
            probe: Probe::disabled(),
        })
    }
}

impl RoundLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty ledger whose charges are mirrored to `probe` as
    /// [`Event::Charge`] events.
    pub fn with_probe(probe: Probe) -> Self {
        RoundLedger {
            entries: Vec::new(),
            probe,
        }
    }

    /// Installs (or replaces) the telemetry probe.
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// The attached probe (disabled by default).
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    fn record(&mut self, phase: String, rounds: u64, kind: ChargeKind) {
        self.probe.emit_with(|| Event::Charge {
            path: phase.clone(),
            rounds,
            kind,
        });
        self.entries.push(LedgerEntry { phase, rounds });
    }

    /// Charges `rounds` measured rounds to `phase`.
    pub fn charge(&mut self, phase: impl Into<String>, rounds: u64) {
        self.record(phase.into(), rounds, ChargeKind::Real);
    }

    /// Charges a documented constant cost for an `O(1)`-local step.
    pub fn charge_constant(&mut self, phase: impl Into<String>, rounds: u64) {
        self.record(phase.into(), rounds, ChargeKind::Constant);
    }

    /// Charges `rounds` virtual-graph rounds at the given `dilation`.
    pub fn charge_virtual(&mut self, phase: impl Into<String>, rounds: u64, dilation: u64) {
        self.record(phase.into(), rounds * dilation, ChargeKind::Virtual);
    }

    /// Appends every entry of `other`, prefixing phases with `prefix/`.
    /// Each absorbed entry surfaces on the probe with its full phase path.
    pub fn absorb(&mut self, prefix: &str, other: RoundLedger) {
        for e in other.entries {
            self.record(
                format!("{prefix}/{}", e.phase),
                e.rounds,
                ChargeKind::Absorbed,
            );
        }
    }

    /// Merges `other` taking the per-entry *maximum* against this ledger's
    /// running total under the same prefix. Used when independent
    /// components run the same pipeline in parallel: the network-wide cost
    /// of a phase is the maximum over components, not the sum.
    pub fn absorb_parallel_max(&mut self, prefix: &str, others: Vec<RoundLedger>) {
        let max_total = others.iter().map(RoundLedger::total).max().unwrap_or(0);
        self.record(
            format!("{prefix} (max component)"),
            max_total,
            ChargeKind::Absorbed,
        );
    }

    /// All entries in charge order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Total rounds charged.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|e| e.rounds).sum()
    }

    /// Total rounds charged to phases whose name contains `needle`.
    pub fn total_for(&self, needle: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.phase.contains(needle))
            .map(|e| e.rounds)
            .sum()
    }

    /// A per-phase breakdown table: one row per top-level phase prefix
    /// (see [`RoundLedger::grouped`]) with its rounds and share of the
    /// total, plus a TOTAL row. This is what `delta-color --profile`
    /// prints.
    pub fn render_table(&self) -> String {
        let total = self.total();
        let mut out = String::new();
        out.push_str(&format!("{:<52} {:>8} {:>7}\n", "phase", "rounds", "%"));
        for (phase, rounds) in self.grouped() {
            let pct = if total == 0 {
                0.0
            } else {
                rounds as f64 * 100.0 / total as f64
            };
            out.push_str(&format!("{phase:<52} {rounds:>8} {pct:>6.1}%\n"));
        }
        out.push_str(&format!("{:<52} {:>8} {:>6.1}%", "TOTAL", total, 100.0));
        out
    }

    /// Totals grouped by phase prefix (the part before the first `/`),
    /// in first-charge order.
    pub fn grouped(&self) -> Vec<(String, u64)> {
        let mut order: Vec<String> = Vec::new();
        let mut totals: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
        for e in &self.entries {
            let prefix = e.phase.split('/').next().unwrap_or(&e.phase).to_string();
            if !totals.contains_key(&prefix) {
                order.push(prefix.clone());
            }
            *totals.entry(prefix).or_default() += e.rounds;
        }
        order
            .into_iter()
            .map(|p| {
                let t = totals[&p];
                (p, t)
            })
            .collect()
    }
}

impl fmt::Display for RoundLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<52} {:>8}", "phase", "rounds")?;
        for e in &self.entries {
            writeln!(f, "{:<52} {:>8}", e.phase, e.rounds)?;
        }
        write!(f, "{:<52} {:>8}", "TOTAL", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_filters() {
        let mut l = RoundLedger::new();
        l.charge("mm", 10);
        l.charge("heg", 20);
        l.charge("mm-cleanup", 5);
        assert_eq!(l.total(), 35);
        assert_eq!(l.total_for("mm"), 15);
        assert_eq!(l.entries().len(), 3);
    }

    #[test]
    fn virtual_charge_multiplies() {
        let mut l = RoundLedger::new();
        l.charge_virtual("pairs", 7, 3);
        assert_eq!(l.total(), 21);
    }

    #[test]
    fn absorb_prefixes() {
        let mut inner = RoundLedger::new();
        inner.charge("matching", 4);
        let mut outer = RoundLedger::new();
        outer.absorb("phase1", inner);
        assert_eq!(outer.entries()[0].phase, "phase1/matching");
        assert_eq!(outer.total(), 4);
    }

    #[test]
    fn parallel_max_takes_max() {
        let mut a = RoundLedger::new();
        a.charge("x", 4);
        let mut b = RoundLedger::new();
        b.charge("x", 9);
        let mut outer = RoundLedger::new();
        outer.absorb_parallel_max("post-shattering", vec![a, b]);
        assert_eq!(outer.total(), 9);
    }

    #[test]
    fn grouped_by_prefix() {
        let mut l = RoundLedger::new();
        l.charge("phase1/matching", 5);
        l.charge("phase1/heg", 7);
        l.charge("phase2/split", 3);
        assert_eq!(
            l.grouped(),
            vec![("phase1".to_string(), 12), ("phase2".to_string(), 3)]
        );
    }

    #[test]
    fn display_contains_total() {
        let mut l = RoundLedger::new();
        l.charge("abc", 2);
        let s = l.to_string();
        assert!(s.contains("abc"));
        assert!(s.contains("TOTAL"));
    }

    #[test]
    fn render_table_shows_percentages() {
        let mut l = RoundLedger::new();
        l.charge("phase1/matching", 30);
        l.charge("phase2/split", 10);
        let table = l.render_table();
        assert!(table.contains("phase1"), "{table}");
        assert!(table.contains("75.0%"), "{table}");
        assert!(table.contains("25.0%"), "{table}");
        assert!(table.lines().last().unwrap().contains("100.0%"), "{table}");
    }

    #[test]
    fn render_table_empty_ledger() {
        let table = RoundLedger::new().render_table();
        assert!(table.contains("TOTAL"));
    }

    #[test]
    fn serde_round_trip_preserves_entries() {
        let mut l = RoundLedger::new();
        l.charge("acd computation", 2);
        l.charge_virtual("phase1/pairs", 7, 3);
        l.charge("easy cliques/greedy", 5);
        let json = serde::json::to_string(&l);
        let back: RoundLedger = serde::json::from_str(&json).unwrap();
        assert_eq!(back, l);
        assert_eq!(back.total(), l.total());
        assert_eq!(back.entries(), l.entries());
    }

    #[test]
    fn charges_surface_on_the_probe_with_paths() {
        use telemetry::RecordingSink;

        let sink = std::sync::Arc::new(RecordingSink::new());
        let mut l = RoundLedger::with_probe(Probe::new(sink.clone()));
        l.charge("mm", 10);
        l.charge_constant("ball", 2);
        l.charge_virtual("pairs", 5, 3);
        let mut inner = RoundLedger::new();
        inner.charge("matching", 4);
        l.absorb("phase1", inner);
        l.absorb_parallel_max("shatter", vec![]);

        let events = sink.events();
        assert_eq!(
            events,
            vec![
                Event::Charge {
                    path: "mm".into(),
                    rounds: 10,
                    kind: ChargeKind::Real
                },
                Event::Charge {
                    path: "ball".into(),
                    rounds: 2,
                    kind: ChargeKind::Constant
                },
                Event::Charge {
                    path: "pairs".into(),
                    rounds: 15,
                    kind: ChargeKind::Virtual
                },
                Event::Charge {
                    path: "phase1/matching".into(),
                    rounds: 4,
                    kind: ChargeKind::Absorbed
                },
                Event::Charge {
                    path: "shatter (max component)".into(),
                    rounds: 0,
                    kind: ChargeKind::Absorbed
                },
            ]
        );
        assert_eq!(l.total(), 31);
    }
}
