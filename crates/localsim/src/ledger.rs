//! Round accounting for composite algorithms.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One charged item on a [`RoundLedger`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Which phase or subroutine incurred the cost.
    pub phase: String,
    /// LOCAL rounds charged.
    pub rounds: u64,
}

/// Accumulates the LOCAL-round cost of a composite algorithm, phase by
/// phase.
///
/// Three kinds of charges exist, mirroring how the paper accounts rounds:
///
/// * [`RoundLedger::charge`] — rounds measured by an [`crate::Executor`]
///   run on the real communication graph.
/// * [`RoundLedger::charge_constant`] — a documented `O(1)` cost for a
///   constant-radius local computation (collecting the radius-`r` ball
///   costs `r` rounds; everything computed from it is free).
/// * [`RoundLedger::charge_virtual`] — rounds of a subroutine run on a
///   virtual graph, multiplied by the constant dilation of simulating one
///   virtual round on the real network.
///
/// # Example
///
/// ```
/// use localsim::RoundLedger;
///
/// let mut ledger = RoundLedger::new();
/// ledger.charge("maximal matching", 12);
/// ledger.charge_constant("ACD computation", 2);
/// ledger.charge_virtual("pair coloring", 5, 3);
/// assert_eq!(ledger.total(), 12 + 2 + 15);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundLedger {
    entries: Vec<LedgerEntry>,
}

impl RoundLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `rounds` measured rounds to `phase`.
    pub fn charge(&mut self, phase: impl Into<String>, rounds: u64) {
        self.entries.push(LedgerEntry { phase: phase.into(), rounds });
    }

    /// Charges a documented constant cost for an `O(1)`-local step.
    pub fn charge_constant(&mut self, phase: impl Into<String>, rounds: u64) {
        self.charge(phase, rounds);
    }

    /// Charges `rounds` virtual-graph rounds at the given `dilation`.
    pub fn charge_virtual(&mut self, phase: impl Into<String>, rounds: u64, dilation: u64) {
        self.charge(phase, rounds * dilation);
    }

    /// Appends every entry of `other`, prefixing phases with `prefix/`.
    pub fn absorb(&mut self, prefix: &str, other: RoundLedger) {
        for e in other.entries {
            self.entries.push(LedgerEntry {
                phase: format!("{prefix}/{}", e.phase),
                rounds: e.rounds,
            });
        }
    }

    /// Merges `other` taking the per-entry *maximum* against this ledger's
    /// running total under the same prefix. Used when independent
    /// components run the same pipeline in parallel: the network-wide cost
    /// of a phase is the maximum over components, not the sum.
    pub fn absorb_parallel_max(&mut self, prefix: &str, others: Vec<RoundLedger>) {
        let max_total = others.iter().map(RoundLedger::total).max().unwrap_or(0);
        self.entries.push(LedgerEntry { phase: format!("{prefix} (max component)"), rounds: max_total });
    }

    /// All entries in charge order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Total rounds charged.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|e| e.rounds).sum()
    }

    /// Total rounds charged to phases whose name contains `needle`.
    pub fn total_for(&self, needle: &str) -> u64 {
        self.entries.iter().filter(|e| e.phase.contains(needle)).map(|e| e.rounds).sum()
    }

    /// Totals grouped by phase prefix (the part before the first `/`),
    /// in first-charge order.
    pub fn grouped(&self) -> Vec<(String, u64)> {
        let mut order: Vec<String> = Vec::new();
        let mut totals: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
        for e in &self.entries {
            let prefix = e.phase.split('/').next().unwrap_or(&e.phase).to_string();
            if !totals.contains_key(&prefix) {
                order.push(prefix.clone());
            }
            *totals.entry(prefix).or_default() += e.rounds;
        }
        order.into_iter().map(|p| {
            let t = totals[&p];
            (p, t)
        }).collect()
    }
}

impl fmt::Display for RoundLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<52} {:>8}", "phase", "rounds")?;
        for e in &self.entries {
            writeln!(f, "{:<52} {:>8}", e.phase, e.rounds)?;
        }
        write!(f, "{:<52} {:>8}", "TOTAL", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_filters() {
        let mut l = RoundLedger::new();
        l.charge("mm", 10);
        l.charge("heg", 20);
        l.charge("mm-cleanup", 5);
        assert_eq!(l.total(), 35);
        assert_eq!(l.total_for("mm"), 15);
        assert_eq!(l.entries().len(), 3);
    }

    #[test]
    fn virtual_charge_multiplies() {
        let mut l = RoundLedger::new();
        l.charge_virtual("pairs", 7, 3);
        assert_eq!(l.total(), 21);
    }

    #[test]
    fn absorb_prefixes() {
        let mut inner = RoundLedger::new();
        inner.charge("matching", 4);
        let mut outer = RoundLedger::new();
        outer.absorb("phase1", inner);
        assert_eq!(outer.entries()[0].phase, "phase1/matching");
        assert_eq!(outer.total(), 4);
    }

    #[test]
    fn parallel_max_takes_max() {
        let mut a = RoundLedger::new();
        a.charge("x", 4);
        let mut b = RoundLedger::new();
        b.charge("x", 9);
        let mut outer = RoundLedger::new();
        outer.absorb_parallel_max("post-shattering", vec![a, b]);
        assert_eq!(outer.total(), 9);
    }

    #[test]
    fn grouped_by_prefix() {
        let mut l = RoundLedger::new();
        l.charge("phase1/matching", 5);
        l.charge("phase1/heg", 7);
        l.charge("phase2/split", 3);
        assert_eq!(
            l.grouped(),
            vec![("phase1".to_string(), 12), ("phase2".to_string(), 3)]
        );
    }

    #[test]
    fn display_contains_total() {
        let mut l = RoundLedger::new();
        l.charge("abc", 2);
        let s = l.to_string();
        assert!(s.contains("abc"));
        assert!(s.contains("TOTAL"));
    }
}
