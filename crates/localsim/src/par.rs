//! Shared machinery for the executors' deterministic parallel stepping
//! path: worklist segmentation, disjoint buffer splitting, and the
//! opt-in default thread count.
//!
//! A LOCAL round is embarrassingly parallel — every node reads only the
//! *previous* round's neighbor state — so the executors can step disjoint
//! contiguous slices of the live worklist on separate threads and merge
//! the results in segment order. Because each node's step sees exactly
//! the same inputs as in the sequential schedule, and all merges happen
//! in ascending segment order, outputs, round counts, and telemetry
//! event streams are bit-identical to the sequential path.

use std::sync::OnceLock;

use graphgen::NodeId;

static THREADS: OnceLock<usize> = OnceLock::new();

/// The process-wide default thread count for executors, read once from
/// the `LOCALSIM_THREADS` environment variable: values `>= 2` enable the
/// parallel stepping path, `1` (or unset) keeps the sequential path, and
/// `0` or an unparsable value falls back to sequential with a one-time
/// notice on stderr (so a typo'd setting never goes silently ignored).
///
/// [`set_default_threads`] overrides the environment (the CLI's
/// `--threads K` flag uses it); the first of the two to run wins, and the
/// value never changes afterwards.
///
/// Primitives construct executors with
/// `Executor::new(g).with_threads(default_threads())`, so a pipeline can
/// be parallelized end to end without touching any call site. This is
/// safe to flip freely: the parallel path is bit-identical to the
/// sequential one (see `docs/PERFORMANCE.md`).
pub fn default_threads() -> usize {
    *THREADS.get_or_init(|| match std::env::var("LOCALSIM_THREADS") {
        Err(_) => 1,
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(k) if k >= 2 => k,
            Ok(1) => 1,
            _ => {
                // OnceLock guarantees this fires at most once per process.
                eprintln!(
                    "localsim: LOCALSIM_THREADS={raw:?} is not a thread count >= 1; \
                     stepping sequentially"
                );
                1
            }
        },
    })
}

/// Pins the process-wide default thread count, overriding the
/// `LOCALSIM_THREADS` environment variable. Returns `false` if the
/// default was already resolved (by an earlier call or an earlier
/// [`default_threads`] read) — the established value stays in force, so
/// callers that care should invoke this before any executor runs.
///
/// This is also what keeps the persistent worker pools safe: every
/// [`crate::pool::lease`] snapshots its width from the value in force
/// when the executor run starts, and a pool's width never changes after
/// construction. A mid-run `set_default_threads` therefore cannot
/// resize a live pool — it returns `false` and has no effect (the error
/// path is pinned by `tests/threads_config.rs`).
pub fn set_default_threads(k: usize) -> bool {
    THREADS.set(k.max(1)).is_ok()
}

/// Splits a sorted live worklist into at most `threads` contiguous,
/// non-empty segments of near-equal size.
#[cfg(test)]
pub(crate) fn segments(live: &[NodeId], threads: usize) -> Vec<&[NodeId]> {
    let k = threads.min(live.len()).max(1);
    let chunk = live.len().div_ceil(k);
    live.chunks(chunk).collect()
}

/// Splits a sorted live worklist into at most `threads` contiguous,
/// non-empty segments balanced by *degree weight* rather than node
/// count.
///
/// A node costs `deg(v) + 1` (the gather is linear in degree; `+ 1`
/// keeps isolated nodes from being free), looked up through the CSR
/// `offsets` table. Segments are closed greedily once they reach the
/// even share `ceil(total / k)`, so on a star or clique-with-tail the
/// hub's chunk stops growing the moment the hub is in it instead of
/// dragging `n / k` leaves along with it.
///
/// Guarantees, for `k = min(threads, live.len())` segments or fewer:
/// segments are contiguous, non-empty, cover `live` in order, and every
/// segment's weight is `< ceil(total / k) + max_single_weight` — i.e.
/// the imbalance over the even share is less than the heaviest single
/// node, which is the best any contiguous partition can promise
/// (pinned by `tests/partition.rs`, which property-tests this bound
/// through the crate root's `#[doc(hidden)]` re-export).
pub fn segments_weighted<'a>(
    live: &'a [NodeId],
    threads: usize,
    offsets: &[usize],
) -> Vec<&'a [NodeId]> {
    let k = threads.min(live.len()).max(1);
    if k <= 1 {
        return vec![live];
    }
    let weight = |v: NodeId| (offsets[v.index() + 1] - offsets[v.index()]) as u64 + 1;
    let total: u64 = live.iter().map(|&v| weight(v)).sum();
    let target = total.div_ceil(k as u64);
    let mut out = Vec::with_capacity(k);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &v) in live.iter().enumerate() {
        acc += weight(v);
        // Close the segment once it reaches the even share — or when the
        // nodes left (i included) are down to one per remaining segment,
        // so every segment stays non-empty.
        let segments_left = k - out.len();
        let must_close = segments_left > 1 && live.len() - i <= segments_left;
        if (acc >= target || must_close) && out.len() + 1 < k {
            out.push(&live[start..=i]);
            start = i + 1;
            acc = 0;
        }
    }
    out.push(&live[start..]);
    debug_assert!(out.iter().all(|s| !s.is_empty()));
    out
}

/// The half-open node-index range covered by each segment of a sorted
/// worklist. Ranges are pairwise disjoint and ascending because the
/// worklist is sorted by node index.
pub(crate) fn segment_ranges(segs: &[&[NodeId]]) -> Vec<(usize, usize)> {
    segs.iter()
        .map(|s| (s[0].index(), s[s.len() - 1].index() + 1))
        .collect()
}

/// Splits one buffer into disjoint mutable sub-slices, one per range.
///
/// `ranges` must be ascending and non-overlapping (as produced by
/// [`segment_ranges`]); the slice for `(lo, hi)` covers exactly the
/// elements `lo..hi` of `data`, so a worker owning segment `i` indexes
/// it with `v.index() - lo`.
pub(crate) fn split_ranges<'a, T>(
    data: &'a mut [T],
    ranges: &[(usize, usize)],
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut rest: &'a mut [T] = data;
    let mut base = 0usize;
    for &(lo, hi) in ranges {
        let tail = std::mem::take(&mut rest);
        let (_skipped, tail) = tail.split_at_mut(lo - base);
        let (mine, tail) = tail.split_at_mut(hi - lo);
        out.push(mine);
        rest = tail;
        base = hi;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<NodeId> {
        xs.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn segments_cover_worklist_in_order() {
        let live = ids(&[1, 4, 5, 9, 12]);
        let segs = segments(&live, 2);
        assert_eq!(segs.len(), 2);
        let flat: Vec<NodeId> = segs.iter().flat_map(|s| s.iter().copied()).collect();
        assert_eq!(flat, live);
        // More threads than nodes degrades to one node per segment.
        assert_eq!(segments(&live, 64).len(), live.len());
    }

    #[test]
    fn split_ranges_are_disjoint_and_addressable() {
        let live = ids(&[1, 4, 5, 9, 12]);
        let segs = segments(&live, 3);
        let ranges = segment_ranges(&segs);
        let mut buf: Vec<i32> = (0..14).collect();
        let slices = split_ranges(&mut buf, &ranges);
        assert_eq!(slices.len(), segs.len());
        for (seg, ((lo, hi), slice)) in segs.iter().zip(ranges.iter().zip(slices)) {
            assert_eq!(slice.len(), hi - lo);
            for v in *seg {
                // The owning worker's view of node v.
                assert_eq!(slice[v.index() - lo], v.index() as i32);
            }
        }
    }
}
