//! A synchronous simulator for the LOCAL model of distributed computing.
//!
//! In the LOCAL model ([Lin92]) a communication network is an `n`-node
//! graph; computation proceeds in synchronous rounds in which every node
//! exchanges *unbounded* messages with its neighbors and performs unbounded
//! local computation. The complexity measure is the number of rounds until
//! every node has produced its output.
//!
//! Because messages are unbounded, a node may always transmit its entire
//! local state; any LOCAL algorithm can be written in the
//! *state-exchange* form this crate executes: in each round every node
//! reads the current state of each neighbor and computes its next state (or
//! halts with an output). [`Executor`] runs such a [`LocalAlgorithm`] over a
//! [`graphgen::Graph`] with double-buffered states — all nodes step against
//! the *previous* round's states, exactly matching synchronous message
//! delivery — and counts the rounds. Because a round only reads the
//! previous round, every executor also offers an opt-in, deterministic
//! parallel stepping path (`with_threads`, see `docs/PERFORMANCE.md`)
//! whose outputs and telemetry are bit-identical to the sequential one.
//!
//! Composite algorithms charge their subroutine costs to a [`RoundLedger`],
//! including `O(1)`-local steps (constant-radius computations the model
//! allows for free beyond the communication needed to collect the ball) and
//! virtual-graph executions (which multiply rounds by a constant dilation).
//!
//! # Example: every node halts with the maximum id in its 1-ball
//!
//! ```
//! use graphgen::{Graph, NodeId};
//! use localsim::{Executor, LocalAlgorithm, NodeCtx, Transition};
//!
//! struct MaxOfBall;
//!
//! impl LocalAlgorithm for MaxOfBall {
//!     type State = u64;
//!     type Output = u64;
//!
//!     fn init(&self, ctx: &NodeCtx) -> u64 {
//!         ctx.uid
//!     }
//!
//!     fn step(
//!         &self,
//!         ctx: &NodeCtx,
//!         state: &u64,
//!         neighbors: &[u64],
//!     ) -> Transition<u64, u64> {
//!         let _ = ctx;
//!         Transition::Halt(neighbors.iter().copied().chain([*state]).max().unwrap())
//!     }
//! }
//!
//! let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
//! let run = Executor::new(&g).run(&MaxOfBall, 10)?;
//! assert_eq!(run.rounds, 1);
//! assert_eq!(run.outputs[1], 2); // node 1 sees ids {0, 1, 2}
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod congest;
mod exec;
mod faults;
mod ledger;
mod msg;
mod par;
pub mod pool;
pub mod shard;

pub use congest::{CongestError, CongestExecutor, CongestResult, RoundBits, CONGEST_SCOPE};
pub use exec::{Executor, LocalAlgorithm, NodeCtx, RunResult, SimError, Transition, EXEC_SCOPE};
pub use faults::FaultPlan;
pub use ledger::{LedgerEntry, RoundLedger};
pub use msg::{broadcast, MessageExecutor, MessageProgram, MsgTransition, Outgoing, MSG_SCOPE};
pub use par::{default_threads, set_default_threads};
// Internal partitioning helper, re-exported (hidden) so the partition
// property suite in `tests/partition.rs` can pin its balance guarantee.
#[doc(hidden)]
pub use par::segments_weighted;
pub use pool::{lease as pool_lease, PoolLease, WorkerPool};
pub use shard::{
    verify_wire_coloring, ChaosKill, Liveness, NetDir, NetFaultPlan, ShardError, ShardedExecutor,
    WireAlgo, WorkerBackend,
};

// Re-exported so simulator users can attach probes without naming the
// telemetry crate explicitly.
pub use telemetry::{
    ChargeKind, Event, FanoutSink, FaultKind, FlightRecorder, Histogram, JsonlSink, LocalHistogram,
    MetricCounter, MetricsHub, NullSink, Probe, RecordingSink, Registry, Sink, Watermark,
    WorkerLaneSnapshot, METRICS_SCHEMA_VERSION,
};
