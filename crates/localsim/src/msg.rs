//! The per-port message-passing executor: the LOCAL model's native
//! interface, one message per incident edge per round.
//!
//! [`crate::Executor`] runs algorithms in *state-exchange* form (each node
//! broadcasts its whole state), which is universal for the LOCAL model but
//! obscures what is actually communicated. [`MessageExecutor`] runs
//! [`MessageProgram`]s that keep private per-node state and address
//! individual ports — the right level for algorithms whose analysis counts
//! *messages* (and the basis for a CONGEST mode, where per-port messages
//! would be size-capped).

use std::sync::Mutex;

use graphgen::{Graph, NodeId};
use telemetry::{Event, FaultKind, Probe, Registry};

use crate::exec::{NodeCtx, RunResult, SimError};
use crate::faults::FaultPlan;
use crate::par;
use crate::pool;

/// Scope string under which [`MessageExecutor`] emits per-round events.
pub const MSG_SCOPE: &str = "localsim/msg";

/// Slot-indexed work cells for one parallel phase-1 epoch: each cell is
/// `(segment, segment base index, that segment's state slice)`, taken
/// by pool slot `i` through a shared reference.
type MsgWorkCells<'a, S> = Vec<Mutex<Option<(&'a [NodeId], usize, &'a mut [S])>>>;

/// What a node does after processing one round of messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgTransition<M, O> {
    /// Keep running, sending the given messages next round.
    Continue(Vec<Outgoing<M>>),
    /// Send the given messages, then halt with an output.
    HaltAfter(Vec<Outgoing<M>>, O),
}

/// An outgoing message: which port (index into the node's adjacency list)
/// and the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing<M> {
    /// Index into the sender's sorted adjacency list.
    pub port: usize,
    /// The payload.
    pub msg: M,
}

impl<M> Outgoing<M> {
    /// Convenience constructor.
    pub fn new(port: usize, msg: M) -> Self {
        Outgoing { port, msg }
    }
}

/// Broadcast helper: the same message on every port.
pub fn broadcast<M: Clone>(degree: usize, msg: &M) -> Vec<Outgoing<M>> {
    (0..degree).map(|p| Outgoing::new(p, msg.clone())).collect()
}

/// A distributed algorithm in stateful per-port message form.
pub trait MessageProgram {
    /// Private per-node state.
    type State;
    /// Message payload.
    type Msg: Clone;
    /// Per-node output on halting.
    type Output;

    /// Initial state and the messages sent before the first round.
    fn init(&self, ctx: &NodeCtx) -> (Self::State, Vec<Outgoing<Self::Msg>>);

    /// Processes one round's inbox (`inbox[p]` = message received on port
    /// `p`, if any) and decides what to send next.
    fn step(
        &self,
        ctx: &NodeCtx,
        state: &mut Self::State,
        inbox: &[Option<Self::Msg>],
    ) -> MsgTransition<Self::Msg, Self::Output>;
}

/// Runs [`MessageProgram`]s over a graph with synchronous delivery.
#[derive(Debug)]
pub struct MessageExecutor<'g> {
    graph: &'g Graph,
    probe: Probe,
    threads: usize,
    faults: Option<FaultPlan>,
}

/// Writes `outs` from `v` into the flat inbox arena for the next round,
/// recording every touched slot so the arena can be cleared in place.
/// Returns the number of messages sent (dropped ones included — they
/// were transmitted, then lost).
///
/// The arena is port-indexed through the graph's CSR offsets: slot
/// `offsets[w] + q` is port `q` of node `w`. The receiving port is an
/// O(1) lookup in the precomputed reverse-port table (indexed by the
/// *sender's* slot), replacing a per-message binary search.
///
/// With an active fault plan, each message is dropped iff the plan's
/// seed-keyed decision for `(round, destination slot)` fires — a pure
/// function of the slot, so delivery order never matters.
#[allow(clippy::too_many_arguments)]
fn deliver<M>(
    graph: &Graph,
    offsets: &[usize],
    rev: &[u32],
    arena: &mut [Option<M>],
    dirty: &mut Vec<usize>,
    v: NodeId,
    outs: Vec<Outgoing<M>>,
    faults: Option<(&FaultPlan, u64)>,
    dropped: &mut i64,
) -> i64 {
    let sent = outs.len() as i64;
    let nbrs = graph.neighbors(v);
    let base = offsets[v.index()];
    for out in outs {
        let w = nbrs[out.port];
        let slot = offsets[w.index()] + rev[base + out.port] as usize;
        if let Some((plan, round)) = faults {
            if plan.drops_message(round, slot) {
                *dropped += 1;
                continue;
            }
        }
        arena[slot] = Some(out.msg);
        dirty.push(slot);
    }
    sent
}

/// Carries a stalled node's undelivered inbox over to the next round's
/// arena (bounded-asynchrony semantics: a stalled node's messages wait on
/// the link). A slot already written by this round's delivery keeps the
/// newer message — the link buffers one message per port.
fn retain_inbox<M: Clone>(
    offsets: &[usize],
    cur: &[Option<M>],
    nxt: &mut [Option<M>],
    dirty: &mut Vec<usize>,
    v: NodeId,
) {
    for slot in offsets[v.index()]..offsets[v.index() + 1] {
        if cur[slot].is_some() && nxt[slot].is_none() {
            nxt[slot] = cur[slot].clone();
            dirty.push(slot);
        }
    }
}

impl<'g> MessageExecutor<'g> {
    /// An executor over `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        MessageExecutor {
            graph,
            probe: Probe::disabled(),
            threads: 1,
            faults: None,
        }
    }

    /// Injects the given seed-deterministic [`FaultPlan`] into every run:
    /// per-message drops (decided per destination slot and round), node
    /// crashes (frozen like halted nodes, reported via
    /// [`telemetry::Event::Fault`] and [`SimError::Crashed`]), and
    /// bounded-asynchrony stalls (a stalled node's pending inbox waits on
    /// the link). Faulty runs stay bit-identical between the sequential
    /// and parallel stepping paths (see `docs/FAULTS.md`). An inactive
    /// plan is a no-op.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan.is_active().then_some(plan);
        self
    }

    /// Attaches a telemetry probe; every run then emits one
    /// [`telemetry::Event::Round`] per round under the [`MSG_SCOPE`] scope
    /// (live nodes, halts, messages sent, inbox bytes).
    #[must_use]
    pub fn with_probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Opts into deterministic parallel stepping with `k` worker threads
    /// (`k <= 1` keeps the sequential path).
    ///
    /// Rounds split into two phases: node steps run in parallel over
    /// contiguous worklist segments (reading only the previous round's
    /// inboxes), then all deliveries are applied in ascending node order
    /// on the calling thread — so outputs and telemetry are bit-identical
    /// to the sequential schedule regardless of `k`.
    #[must_use]
    pub fn with_threads(mut self, k: usize) -> Self {
        self.threads = k.max(1);
        self
    }

    /// Runs `prog` until every node halts; counts communication rounds.
    ///
    /// Inboxes live in two flat port-indexed arenas (one slice of length
    /// 2m for the whole graph) that are swapped every round and cleared
    /// in place via a dirty list — no per-round allocation — and halted
    /// nodes are skipped via a compacting live worklist.
    ///
    /// # Errors
    ///
    /// [`SimError::RoundLimitExceeded`] past `max_rounds`;
    /// [`SimError::Crashed`] if an injected fault plan crashed nodes
    /// before they could output.
    pub fn run<P>(&self, prog: &P, max_rounds: u64) -> Result<RunResult<P::Output>, SimError>
    where
        P: MessageProgram + Sync,
        P::State: Send,
        P::Msg: Send + Sync,
        P::Output: Send,
    {
        let n = self.graph.n();
        if n == 0 {
            return Ok(RunResult {
                outputs: Vec::new(),
                rounds: 0,
            });
        }
        // Per-run invariants, hoisted out of the per-node hot loop.
        let graph = self.graph;
        let max_degree = graph.max_degree();
        let offsets = graph.csr_offsets();
        let rev = graph.reverse_ports();
        let total_ports = offsets[n];
        let make_ctx = move |v: NodeId, round: u64| NodeCtx {
            node: v,
            uid: u64::from(v.0),
            neighbors: graph.neighbors(v),
            round,
            n,
            max_degree,
        };
        let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
        let mut cur: Vec<Option<P::Msg>> = (0..total_ports).map(|_| None).collect();
        let mut nxt: Vec<Option<P::Msg>> = (0..total_ports).map(|_| None).collect();
        let mut dirty_cur: Vec<usize> = Vec::new();
        let mut dirty_nxt: Vec<usize> = Vec::new();
        let mut registry = Registry::new();
        let c_live = registry.counter("live_nodes");
        let c_halted = registry.counter("halted");
        let c_msgs = registry.counter("messages_sent");
        let c_inbox = registry.counter("inbox_bytes");
        let g_halted_frac = registry.gauge("halted_fraction");
        // Metric handles (None when no hub is attached — the hot loop then
        // takes no timestamps). `msg.arena_peak` / `msg.dirty_slots` track
        // inbox-arena occupancy and compaction work via the dirty list.
        let hub = self.probe.metrics();
        let m_rounds = hub.map(|h| h.counter("msg.rounds"));
        let m_arena_peak = hub.map(|h| h.watermark("msg.arena_peak"));
        let m_dirty = hub.map(|h| h.counter("msg.dirty_slots"));
        let m_round_ns = hub.map(|h| h.histogram("msg.round_ns"));
        // Fault machinery — inert unless a plan is active, so fault-free
        // runs keep byte-identical telemetry.
        let inert = FaultPlan::default();
        let plan = self.faults.as_ref().unwrap_or(&inert);
        let drop_on = plan.message_drop_p > 0.0;
        let jitter_on = plan.round_jitter > 0;
        let crash_sched = plan.crash_schedule();
        let c_dropped = drop_on.then(|| registry.counter("messages_dropped"));
        let c_stalled = jitter_on.then(|| registry.counter("stalled_nodes"));
        let drop_ctx = |round: u64| drop_on.then_some((plan, round));
        let mut crashed = 0usize;
        let mut init_dropped = 0i64;
        let mut states: Vec<P::State> = Vec::with_capacity(n);
        {
            let mut first_outs = Vec::with_capacity(n);
            for v in graph.vertices() {
                let (st, outs) = prog.init(&make_ctx(v, 0));
                states.push(st);
                first_outs.push(outs);
            }
            for (v, outs) in graph.vertices().zip(first_outs) {
                c_msgs.add(deliver(
                    graph,
                    offsets,
                    rev,
                    &mut cur,
                    &mut dirty_cur,
                    v,
                    outs,
                    drop_ctx(0),
                    &mut init_dropped,
                ));
            }
        }
        let mut live_list: Vec<NodeId> = graph.vertices().collect();
        let mut rounds = 0u64;
        // Parallel phase-1 machinery: the worker pool is leased once per
        // run (first parallel round) and parked between rounds; the
        // per-slot transition buffers persist across rounds.
        let mut pool_lease: Option<pool::PoolLease> = None;
        #[allow(clippy::type_complexity)]
        let transition_bufs: Vec<
            Mutex<Vec<(NodeId, Option<MsgTransition<P::Msg, P::Output>>)>>,
        > = (0..if self.threads > 1 { self.threads } else { 0 })
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        while !live_list.is_empty() {
            if rounds >= max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: max_rounds,
                    still_running: live_list.len(),
                });
            }
            rounds += 1;
            // Crashes fire at the start of their round, before any node
            // steps; the node's pending inbox dies with it.
            if let Some(nodes) = crash_sched.get(&rounds) {
                for &v in nodes {
                    if let Ok(pos) = live_list.binary_search(&v) {
                        live_list.remove(pos);
                        crashed += 1;
                        self.probe.emit_with(|| Event::Fault {
                            scope: MSG_SCOPE.to_string(),
                            round: rounds - 1,
                            kind: FaultKind::Crash,
                            node: Some(u64::from(v.0)),
                            count: 1,
                        });
                    }
                }
            }
            c_live.set(live_list.len() as i64);
            if let Some(c) = &m_rounds {
                c.incr();
            }
            let round_start = m_round_ns.as_ref().map(|_| std::time::Instant::now());
            // Drops are accounted to the round event of the round in which
            // the executor processed the send; init-time sends fold into
            // the first round's event.
            let mut dropped = std::mem::take(&mut init_dropped);
            let mut stalled = 0i64;
            if self.probe.enabled() {
                let pending = cur.iter().filter(|m| m.is_some()).count();
                c_inbox.set((pending * std::mem::size_of::<P::Msg>()) as i64);
            }
            if self.threads > 1 && live_list.len() > 1 {
                // Phase 1 (parallel): step every live node against the
                // read-only current arena, collecting transitions. Pool
                // slot i owns segment i; the degree-weighted split keeps
                // hub-heavy segments from serializing the round.
                let segs = par::segments_weighted(&live_list, self.threads, offsets);
                let ranges = par::segment_ranges(&segs);
                let state_slices = par::split_ranges(&mut states, &ranges);
                let cur_ref = &cur;
                let plan_ref = plan;
                // Phase 1 collects `None` for stalled nodes so phase 2 can
                // carry their inboxes over in the same ascending order the
                // sequential schedule uses.
                let work: MsgWorkCells<'_, P::State> = segs
                    .iter()
                    .zip(ranges.iter())
                    .zip(state_slices)
                    .map(|((seg, &(lo, _)), st_s)| Mutex::new(Some((*seg, lo, st_s))))
                    .collect();
                let pool = pool_lease.get_or_insert_with(|| pool::lease(self.threads));
                pool.run_epoch(&|slot| {
                    let Some((seg, lo, st_s)) = work
                        .get(slot)
                        .and_then(|m| m.lock().expect("work slot poisoned").take())
                    else {
                        return;
                    };
                    let mut out = transition_bufs[slot].lock().expect("buffer poisoned");
                    for &v in seg {
                        if jitter_on && plan_ref.stalls(v, rounds) {
                            out.push((v, None));
                            continue;
                        }
                        let ctx = make_ctx(v, rounds);
                        let inbox = &cur_ref[offsets[v.index()]..offsets[v.index() + 1]];
                        let t = prog.step(&ctx, &mut st_s[v.index() - lo], inbox);
                        out.push((v, Some(t)));
                    }
                });
                // Phase 2 (sequential, ascending node order): deliver and
                // account, exactly as the sequential schedule would —
                // draining the slot buffers in segment order (allocations
                // survive for the next round).
                let seg_count = segs.len();
                drop(work);
                live_list.clear();
                for buf in transition_bufs.iter().take(seg_count) {
                    let mut buf = buf.lock().expect("buffer poisoned");
                    for (v, t) in buf.drain(..) {
                        match t {
                            None => {
                                retain_inbox(offsets, &cur, &mut nxt, &mut dirty_nxt, v);
                                stalled += 1;
                                live_list.push(v);
                            }
                            Some(MsgTransition::Continue(outs)) => {
                                c_msgs.add(deliver(
                                    graph,
                                    offsets,
                                    rev,
                                    &mut nxt,
                                    &mut dirty_nxt,
                                    v,
                                    outs,
                                    drop_ctx(rounds),
                                    &mut dropped,
                                ));
                                live_list.push(v);
                            }
                            Some(MsgTransition::HaltAfter(outs, o)) => {
                                c_msgs.add(deliver(
                                    graph,
                                    offsets,
                                    rev,
                                    &mut nxt,
                                    &mut dirty_nxt,
                                    v,
                                    outs,
                                    drop_ctx(rounds),
                                    &mut dropped,
                                ));
                                outputs[v.index()] = Some(o);
                                c_halted.inc();
                            }
                        }
                    }
                }
            } else {
                // Manual compaction instead of `Vec::retain`: the retain
                // closure boundary measurably taxes fine-grained steps
                // (see docs/PERFORMANCE.md); an index loop writes the
                // survivor list in the same single ascending pass.
                let mut kept = 0usize;
                for i in 0..live_list.len() {
                    let v = live_list[i];
                    if jitter_on && plan.stalls(v, rounds) {
                        // Stalled: skip the step; pending messages wait on
                        // the link for the next round.
                        retain_inbox(offsets, &cur, &mut nxt, &mut dirty_nxt, v);
                        stalled += 1;
                        live_list[kept] = v;
                        kept += 1;
                        continue;
                    }
                    let ctx = make_ctx(v, rounds);
                    let inbox = &cur[offsets[v.index()]..offsets[v.index() + 1]];
                    match prog.step(&ctx, &mut states[v.index()], inbox) {
                        MsgTransition::Continue(outs) => {
                            c_msgs.add(deliver(
                                graph,
                                offsets,
                                rev,
                                &mut nxt,
                                &mut dirty_nxt,
                                v,
                                outs,
                                drop_ctx(rounds),
                                &mut dropped,
                            ));
                            live_list[kept] = v;
                            kept += 1;
                        }
                        MsgTransition::HaltAfter(outs, o) => {
                            c_msgs.add(deliver(
                                graph,
                                offsets,
                                rev,
                                &mut nxt,
                                &mut dirty_nxt,
                                v,
                                outs,
                                drop_ctx(rounds),
                                &mut dropped,
                            ));
                            outputs[v.index()] = Some(o);
                            c_halted.inc();
                        }
                    }
                }
                live_list.truncate(kept);
            }
            if dropped > 0 {
                if let Some(c) = &c_dropped {
                    c.add(dropped);
                }
                self.probe.emit_with(|| Event::Fault {
                    scope: MSG_SCOPE.to_string(),
                    round: rounds - 1,
                    kind: FaultKind::Drop,
                    node: None,
                    count: dropped as u64,
                });
            }
            if stalled > 0 {
                if let Some(c) = &c_stalled {
                    c.add(stalled);
                }
                self.probe.emit_with(|| Event::Fault {
                    scope: MSG_SCOPE.to_string(),
                    round: rounds - 1,
                    kind: FaultKind::Stall,
                    node: None,
                    count: stalled as u64,
                });
            }
            // Recycle the consumed arena: clear only the touched slots,
            // then swap it in as next round's write buffer.
            if let Some(w) = &m_arena_peak {
                w.record(dirty_cur.len() as u64);
            }
            if let Some(c) = &m_dirty {
                c.add(dirty_cur.len() as u64);
            }
            for slot in dirty_cur.drain(..) {
                cur[slot] = None;
            }
            std::mem::swap(&mut cur, &mut nxt);
            std::mem::swap(&mut dirty_cur, &mut dirty_nxt);
            g_halted_frac.set((n - live_list.len()) as f64 / n as f64);
            registry.emit_round(&self.probe, MSG_SCOPE, rounds - 1);
            if let (Some(h), Some(start)) = (&m_round_ns, round_start) {
                h.observe(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
        }
        if crashed > 0 {
            return Err(SimError::Crashed { crashed, rounds });
        }
        Ok(RunResult {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("all halted"))
                .collect(),
            rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::Graph;

    /// Relaying BFS from node 0: each node forwards the wave once and
    /// halts with its BFS distance.
    struct RelayBfs;

    impl MessageProgram for RelayBfs {
        type State = ();
        type Msg = u64;
        type Output = u64;

        fn init(&self, ctx: &NodeCtx) -> ((), Vec<Outgoing<u64>>) {
            if ctx.node == NodeId(0) {
                ((), broadcast(ctx.degree(), &1))
            } else {
                ((), Vec::new())
            }
        }

        fn step(
            &self,
            ctx: &NodeCtx,
            _state: &mut (),
            inbox: &[Option<u64>],
        ) -> MsgTransition<u64, u64> {
            if ctx.node == NodeId(0) {
                return MsgTransition::HaltAfter(Vec::new(), 0);
            }
            if let Some(&d) = inbox.iter().flatten().min() {
                MsgTransition::HaltAfter(broadcast(ctx.degree(), &(d + 1)), d)
            } else {
                MsgTransition::Continue(Vec::new())
            }
        }
    }

    #[test]
    fn relay_bfs_computes_distances() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (1, 4)]).unwrap();
        let run = MessageExecutor::new(&g).run(&RelayBfs, 10).unwrap();
        assert_eq!(run.outputs, vec![0, 1, 2, 3, 2]);
        assert_eq!(run.rounds, 3, "last node hears the wave in round 3");
    }

    /// Token accumulation with private state: each node counts distinct
    /// rounds in which it received anything, for three rounds.
    struct CountRounds;

    impl MessageProgram for CountRounds {
        type State = u32;
        type Msg = ();
        type Output = u32;

        fn init(&self, ctx: &NodeCtx) -> (u32, Vec<Outgoing<()>>) {
            (0, broadcast(ctx.degree(), &()))
        }

        fn step(
            &self,
            ctx: &NodeCtx,
            state: &mut u32,
            inbox: &[Option<()>],
        ) -> MsgTransition<(), u32> {
            if inbox.iter().any(Option::is_some) {
                *state += 1;
            }
            if ctx.round >= 3 {
                MsgTransition::HaltAfter(Vec::new(), *state)
            } else {
                MsgTransition::Continue(broadcast(ctx.degree(), &()))
            }
        }
    }

    #[test]
    fn private_state_persists() {
        let g = graphgen::generators::cycle(6);
        let run = MessageExecutor::new(&g).run(&CountRounds, 10).unwrap();
        assert!(run.outputs.iter().all(|&c| c == 3));
    }

    /// Ports deliver to the right neighbor: sum of leaf uids at the center.
    struct PingPong;

    impl MessageProgram for PingPong {
        type State = ();
        type Msg = u64;
        type Output = u64;

        fn init(&self, ctx: &NodeCtx) -> ((), Vec<Outgoing<u64>>) {
            ((), broadcast(ctx.degree(), &ctx.uid))
        }

        fn step(
            &self,
            _ctx: &NodeCtx,
            _state: &mut (),
            inbox: &[Option<u64>],
        ) -> MsgTransition<u64, u64> {
            MsgTransition::HaltAfter(Vec::new(), inbox.iter().flatten().sum())
        }
    }

    #[test]
    fn ports_deliver_to_the_right_neighbor() {
        let g = graphgen::generators::star(3);
        let run = MessageExecutor::new(&g).run(&PingPong, 5).unwrap();
        assert_eq!(run.outputs[0], 1 + 2 + 3);
        assert_eq!(run.outputs[1], 0);
    }

    #[test]
    fn round_budget_enforced() {
        struct Forever;
        impl MessageProgram for Forever {
            type State = ();
            type Msg = ();
            type Output = ();
            fn init(&self, _ctx: &NodeCtx) -> ((), Vec<Outgoing<()>>) {
                ((), Vec::new())
            }
            fn step(
                &self,
                _ctx: &NodeCtx,
                _s: &mut (),
                _i: &[Option<()>],
            ) -> MsgTransition<(), ()> {
                MsgTransition::Continue(Vec::new())
            }
        }
        let g = graphgen::generators::cycle(4);
        assert!(matches!(
            MessageExecutor::new(&g).run(&Forever, 3),
            Err(SimError::RoundLimitExceeded { limit: 3, .. })
        ));
    }

    #[test]
    fn empty_graph_ok() {
        let g = Graph::from_edges(0, []).unwrap();
        let run = MessageExecutor::new(&g).run(&PingPong, 1).unwrap();
        assert!(run.outputs.is_empty());
    }

    #[test]
    fn probe_counts_messages_and_inbox_bytes() {
        use telemetry::{Event, Probe, RecordingSink};

        let sink = std::sync::Arc::new(RecordingSink::new());
        let g = graphgen::generators::star(3); // center + 3 leaves, 3 edges
        let run = MessageExecutor::new(&g)
            .with_probe(Probe::new(sink.clone()))
            .run(&PingPong, 5)
            .unwrap();
        assert_eq!(run.rounds, 1);
        assert_eq!(sink.rounds_seen(MSG_SCOPE), 1);
        let events = sink.events();
        let Event::Round { counters, .. } = &events[0] else {
            panic!("expected a round event, got {:?}", events[0]);
        };
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        // init: center broadcasts 3, each leaf sends 1 -> 6 messages; every
        // one of them sits in an inbox at the start of round 0.
        assert_eq!(get("messages_sent"), 6);
        assert_eq!(get("inbox_bytes"), 6 * std::mem::size_of::<u64>() as i64);
        assert_eq!(get("live_nodes"), 4);
        assert_eq!(get("halted"), 4);
    }
}
