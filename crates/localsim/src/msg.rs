//! The per-port message-passing executor: the LOCAL model's native
//! interface, one message per incident edge per round.
//!
//! [`crate::Executor`] runs algorithms in *state-exchange* form (each node
//! broadcasts its whole state), which is universal for the LOCAL model but
//! obscures what is actually communicated. [`MessageExecutor`] runs
//! [`MessageProgram`]s that keep private per-node state and address
//! individual ports — the right level for algorithms whose analysis counts
//! *messages* (and the basis for a CONGEST mode, where per-port messages
//! would be size-capped).

use graphgen::{Graph, NodeId};
use telemetry::{Probe, Registry};

use crate::exec::{NodeCtx, RunResult, SimError};

/// Scope string under which [`MessageExecutor`] emits per-round events.
pub const MSG_SCOPE: &str = "localsim/msg";

/// What a node does after processing one round of messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgTransition<M, O> {
    /// Keep running, sending the given messages next round.
    Continue(Vec<Outgoing<M>>),
    /// Send the given messages, then halt with an output.
    HaltAfter(Vec<Outgoing<M>>, O),
}

/// An outgoing message: which port (index into the node's adjacency list)
/// and the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing<M> {
    /// Index into the sender's sorted adjacency list.
    pub port: usize,
    /// The payload.
    pub msg: M,
}

impl<M> Outgoing<M> {
    /// Convenience constructor.
    pub fn new(port: usize, msg: M) -> Self {
        Outgoing { port, msg }
    }
}

/// Broadcast helper: the same message on every port.
pub fn broadcast<M: Clone>(degree: usize, msg: &M) -> Vec<Outgoing<M>> {
    (0..degree).map(|p| Outgoing::new(p, msg.clone())).collect()
}

/// A distributed algorithm in stateful per-port message form.
pub trait MessageProgram {
    /// Private per-node state.
    type State;
    /// Message payload.
    type Msg: Clone;
    /// Per-node output on halting.
    type Output;

    /// Initial state and the messages sent before the first round.
    fn init(&self, ctx: &NodeCtx) -> (Self::State, Vec<Outgoing<Self::Msg>>);

    /// Processes one round's inbox (`inbox[p]` = message received on port
    /// `p`, if any) and decides what to send next.
    fn step(
        &self,
        ctx: &NodeCtx,
        state: &mut Self::State,
        inbox: &[Option<Self::Msg>],
    ) -> MsgTransition<Self::Msg, Self::Output>;
}

/// Runs [`MessageProgram`]s over a graph with synchronous delivery.
#[derive(Debug)]
pub struct MessageExecutor<'g> {
    graph: &'g Graph,
    probe: Probe,
}

impl<'g> MessageExecutor<'g> {
    /// An executor over `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        MessageExecutor {
            graph,
            probe: Probe::disabled(),
        }
    }

    /// Attaches a telemetry probe; every run then emits one
    /// [`telemetry::Event::Round`] per round under the [`MSG_SCOPE`] scope
    /// (live nodes, halts, messages sent, inbox bytes).
    #[must_use]
    pub fn with_probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    fn ctx<'a>(&'a self, v: NodeId, round: u64) -> NodeCtx<'a> {
        NodeCtx {
            node: v,
            uid: v.0 as u64,
            neighbors: self.graph.neighbors(v),
            round,
            n: self.graph.n(),
            max_degree: self.graph.max_degree(),
        }
    }

    /// Port of `v` that leads to `w`.
    fn port_of(&self, v: NodeId, w: NodeId) -> usize {
        self.graph
            .neighbors(v)
            .binary_search(&w)
            .expect("w is a neighbor of v")
    }

    /// Runs `prog` until every node halts; counts communication rounds.
    ///
    /// # Errors
    ///
    /// [`SimError::RoundLimitExceeded`] past `max_rounds`.
    pub fn run<P: MessageProgram>(
        &self,
        prog: &P,
        max_rounds: u64,
    ) -> Result<RunResult<P::Output>, SimError> {
        let n = self.graph.n();
        if n == 0 {
            return Ok(RunResult {
                outputs: Vec::new(),
                rounds: 0,
            });
        }
        let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
        let mut inboxes: Vec<Vec<Option<P::Msg>>> = self
            .graph
            .vertices()
            .map(|v| vec![None; self.graph.degree(v)])
            .collect();
        let mut registry = Registry::new();
        let c_live = registry.counter("live_nodes");
        let c_halted = registry.counter("halted");
        let c_msgs = registry.counter("messages_sent");
        let c_inbox = registry.counter("inbox_bytes");
        let g_halted_frac = registry.gauge("halted_fraction");
        let deliver = {
            let c_msgs = c_msgs.clone();
            move |inboxes: &mut Vec<Vec<Option<P::Msg>>>, v: NodeId, outs: Vec<Outgoing<P::Msg>>| {
                c_msgs.add(outs.len() as i64);
                for out in outs {
                    let w = self.graph.neighbors(v)[out.port];
                    let back = self.port_of(w, v);
                    inboxes[w.index()][back] = Some(out.msg);
                }
            }
        };
        let mut states: Vec<P::State> = Vec::with_capacity(n);
        {
            let mut first_outs = Vec::with_capacity(n);
            for v in self.graph.vertices() {
                let (st, outs) = prog.init(&self.ctx(v, 0));
                states.push(st);
                first_outs.push(outs);
            }
            for (v, outs) in self.graph.vertices().zip(first_outs) {
                deliver(&mut inboxes, v, outs);
            }
        }
        let mut live = n;
        let mut rounds = 0u64;
        while live > 0 {
            if rounds >= max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: max_rounds,
                    still_running: live,
                });
            }
            rounds += 1;
            c_live.set(live as i64);
            if self.probe.enabled() {
                let pending: usize = inboxes
                    .iter()
                    .map(|ib| ib.iter().filter(|m| m.is_some()).count())
                    .sum();
                c_inbox.set((pending * std::mem::size_of::<P::Msg>()) as i64);
            }
            let mut next: Vec<Vec<Option<P::Msg>>> = self
                .graph
                .vertices()
                .map(|v| vec![None; self.graph.degree(v)])
                .collect();
            for v in self.graph.vertices() {
                if outputs[v.index()].is_some() {
                    continue;
                }
                let ctx = self.ctx(v, rounds);
                match prog.step(&ctx, &mut states[v.index()], &inboxes[v.index()]) {
                    MsgTransition::Continue(outs) => deliver(&mut next, v, outs),
                    MsgTransition::HaltAfter(outs, o) => {
                        deliver(&mut next, v, outs);
                        outputs[v.index()] = Some(o);
                        live -= 1;
                        c_halted.inc();
                    }
                }
            }
            inboxes = next;
            g_halted_frac.set((n - live) as f64 / n as f64);
            registry.emit_round(&self.probe, MSG_SCOPE, rounds - 1);
        }
        Ok(RunResult {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("all halted"))
                .collect(),
            rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::Graph;

    /// Relaying BFS from node 0: each node forwards the wave once and
    /// halts with its BFS distance.
    struct RelayBfs;

    impl MessageProgram for RelayBfs {
        type State = ();
        type Msg = u64;
        type Output = u64;

        fn init(&self, ctx: &NodeCtx) -> ((), Vec<Outgoing<u64>>) {
            if ctx.node == NodeId(0) {
                ((), broadcast(ctx.degree(), &1))
            } else {
                ((), Vec::new())
            }
        }

        fn step(
            &self,
            ctx: &NodeCtx,
            _state: &mut (),
            inbox: &[Option<u64>],
        ) -> MsgTransition<u64, u64> {
            if ctx.node == NodeId(0) {
                return MsgTransition::HaltAfter(Vec::new(), 0);
            }
            if let Some(&d) = inbox.iter().flatten().min() {
                MsgTransition::HaltAfter(broadcast(ctx.degree(), &(d + 1)), d)
            } else {
                MsgTransition::Continue(Vec::new())
            }
        }
    }

    #[test]
    fn relay_bfs_computes_distances() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (1, 4)]).unwrap();
        let run = MessageExecutor::new(&g).run(&RelayBfs, 10).unwrap();
        assert_eq!(run.outputs, vec![0, 1, 2, 3, 2]);
        assert_eq!(run.rounds, 3, "last node hears the wave in round 3");
    }

    /// Token accumulation with private state: each node counts distinct
    /// rounds in which it received anything, for three rounds.
    struct CountRounds;

    impl MessageProgram for CountRounds {
        type State = u32;
        type Msg = ();
        type Output = u32;

        fn init(&self, ctx: &NodeCtx) -> (u32, Vec<Outgoing<()>>) {
            (0, broadcast(ctx.degree(), &()))
        }

        fn step(
            &self,
            ctx: &NodeCtx,
            state: &mut u32,
            inbox: &[Option<()>],
        ) -> MsgTransition<(), u32> {
            if inbox.iter().any(Option::is_some) {
                *state += 1;
            }
            if ctx.round >= 3 {
                MsgTransition::HaltAfter(Vec::new(), *state)
            } else {
                MsgTransition::Continue(broadcast(ctx.degree(), &()))
            }
        }
    }

    #[test]
    fn private_state_persists() {
        let g = graphgen::generators::cycle(6);
        let run = MessageExecutor::new(&g).run(&CountRounds, 10).unwrap();
        assert!(run.outputs.iter().all(|&c| c == 3));
    }

    /// Ports deliver to the right neighbor: sum of leaf uids at the center.
    struct PingPong;

    impl MessageProgram for PingPong {
        type State = ();
        type Msg = u64;
        type Output = u64;

        fn init(&self, ctx: &NodeCtx) -> ((), Vec<Outgoing<u64>>) {
            ((), broadcast(ctx.degree(), &ctx.uid))
        }

        fn step(
            &self,
            _ctx: &NodeCtx,
            _state: &mut (),
            inbox: &[Option<u64>],
        ) -> MsgTransition<u64, u64> {
            MsgTransition::HaltAfter(Vec::new(), inbox.iter().flatten().sum())
        }
    }

    #[test]
    fn ports_deliver_to_the_right_neighbor() {
        let g = graphgen::generators::star(3);
        let run = MessageExecutor::new(&g).run(&PingPong, 5).unwrap();
        assert_eq!(run.outputs[0], 1 + 2 + 3);
        assert_eq!(run.outputs[1], 0);
    }

    #[test]
    fn round_budget_enforced() {
        struct Forever;
        impl MessageProgram for Forever {
            type State = ();
            type Msg = ();
            type Output = ();
            fn init(&self, _ctx: &NodeCtx) -> ((), Vec<Outgoing<()>>) {
                ((), Vec::new())
            }
            fn step(
                &self,
                _ctx: &NodeCtx,
                _s: &mut (),
                _i: &[Option<()>],
            ) -> MsgTransition<(), ()> {
                MsgTransition::Continue(Vec::new())
            }
        }
        let g = graphgen::generators::cycle(4);
        assert!(matches!(
            MessageExecutor::new(&g).run(&Forever, 3),
            Err(SimError::RoundLimitExceeded { limit: 3, .. })
        ));
    }

    #[test]
    fn empty_graph_ok() {
        let g = Graph::from_edges(0, []).unwrap();
        let run = MessageExecutor::new(&g).run(&PingPong, 1).unwrap();
        assert!(run.outputs.is_empty());
    }

    #[test]
    fn probe_counts_messages_and_inbox_bytes() {
        use telemetry::{Event, Probe, RecordingSink};

        let sink = std::sync::Arc::new(RecordingSink::new());
        let g = graphgen::generators::star(3); // center + 3 leaves, 3 edges
        let run = MessageExecutor::new(&g)
            .with_probe(Probe::new(sink.clone()))
            .run(&PingPong, 5)
            .unwrap();
        assert_eq!(run.rounds, 1);
        assert_eq!(sink.rounds_seen(MSG_SCOPE), 1);
        let events = sink.events();
        let Event::Round { counters, .. } = &events[0] else {
            panic!("expected a round event, got {:?}", events[0]);
        };
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        // init: center broadcasts 3, each leaf sends 1 -> 6 messages; every
        // one of them sits in an inbox at the start of round 0.
        assert_eq!(get("messages_sent"), 6);
        assert_eq!(get("inbox_bytes"), 6 * std::mem::size_of::<u64>() as i64);
        assert_eq!(get("live_nodes"), 4);
        assert_eq!(get("halted"), 4);
    }
}
