//! Length-prefixed frame transport shared by the shard coordinator and
//! workers.
//!
//! A frame on the wire is `[u32 payload length, little-endian][payload]`;
//! the first payload byte is the frame tag (see [`super::proto`]). The
//! codec below is deliberately tiny — fixed-width little-endian integers
//! and length-prefixed strings — so both sides of the connection agree on
//! byte layout without pulling a serialization framework into the hot
//! per-round path.

use std::io::{self, Read, Write};

use telemetry::{MetricCounter, MetricsHub};

/// Refuse frames larger than this (64 MiB): a corrupted length prefix
/// must not trigger an unbounded allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Counts frames and bytes crossing the coordinator's side of the wire
/// into a [`MetricsHub`] (`shard.bytes_sent`, `shard.bytes_recv`,
/// `shard.frames`); a disabled meter costs nothing.
#[derive(Clone, Default)]
pub struct FrameMeter {
    sent: Option<MetricCounter>,
    recv: Option<MetricCounter>,
    frames: Option<MetricCounter>,
}

impl FrameMeter {
    /// A meter that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A meter feeding the shard wire counters of `hub`.
    #[must_use]
    pub fn new(hub: &MetricsHub) -> Self {
        FrameMeter {
            sent: Some(hub.counter("shard.bytes_sent")),
            recv: Some(hub.counter("shard.bytes_recv")),
            frames: Some(hub.counter("shard.frames")),
        }
    }
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8], meter: &FrameMeter) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    if let Some(c) = &meter.sent {
        c.add(4 + payload.len() as u64);
    }
    if let Some(c) = &meter.frames {
        c.incr();
    }
    Ok(())
}

/// Reads one frame payload; blocks until the full frame arrives.
pub fn read_frame(r: &mut impl Read, meter: &FrameMeter) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if let Some(c) = &meter.recv {
        c.add(4 + len as u64);
    }
    if let Some(c) = &meter.frames {
        c.incr();
    }
    Ok(payload)
}

/// Little-endian payload builder.
#[derive(Default)]
pub struct Enc(pub Vec<u8>);

impl Enc {
    /// An empty payload starting with `tag`.
    #[must_use]
    pub fn tagged(tag: u8) -> Self {
        Enc(vec![tag])
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `u32` sequence.
    pub fn u32s(&mut self, vs: &[u32]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.u32(v);
        }
    }

    /// Appends a length-prefixed `u64` sequence.
    pub fn u64s(&mut self, vs: &[u64]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.u64(v);
        }
    }

    /// Appends a length-prefixed byte sequence.
    pub fn bytes(&mut self, vs: &[u8]) {
        self.u32(vs.len() as u32);
        self.0.extend_from_slice(vs);
    }

    /// Appends a length-prefixed `(u32, u64)` pair sequence.
    pub fn pairs(&mut self, vs: &[(u32, u64)]) {
        self.u32(vs.len() as u32);
        for &(a, b) in vs {
            self.u32(a);
            self.u64(b);
        }
    }
}

fn truncated() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "truncated frame payload")
}

/// Cursor over a received payload; every read is bounds-checked so a
/// malformed frame surfaces as an error, never a panic.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A cursor over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(truncated)?;
        if end > self.buf.len() {
            return Err(truncated());
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a byte.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 string field"))
    }

    /// Reads a length-prefixed `u32` sequence.
    pub fn u32s(&mut self) -> io::Result<Vec<u32>> {
        let len = self.u32()? as usize;
        (0..len).map(|_| self.u32()).collect()
    }

    /// Reads a length-prefixed `u64` sequence.
    pub fn u64s(&mut self) -> io::Result<Vec<u64>> {
        let len = self.u32()? as usize;
        (0..len).map(|_| self.u64()).collect()
    }

    /// Reads a length-prefixed byte sequence.
    pub fn bytes(&mut self) -> io::Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed `(u32, u64)` pair sequence.
    pub fn pairs(&mut self) -> io::Result<Vec<(u32, u64)>> {
        let len = self.u32()? as usize;
        (0..len).map(|_| Ok((self.u32()?, self.u64()?))).collect()
    }

    /// Fails unless the whole payload was consumed.
    pub fn finish(self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes after frame payload",
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips_every_field_kind() {
        let mut e = Enc::tagged(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.str("boundary ports");
        e.u32s(&[1, 2, 3]);
        e.u64s(&[]);
        e.bytes(&[0xFF, 0x00]);
        e.pairs(&[(9, 1 << 40)]);
        let mut d = Dec::new(&e.0);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.str().unwrap(), "boundary ports");
        assert_eq!(d.u32s().unwrap(), [1, 2, 3]);
        assert!(d.u64s().unwrap().is_empty());
        assert_eq!(d.bytes().unwrap(), [0xFF, 0x00]);
        assert_eq!(d.pairs().unwrap(), [(9, 1 << 40)]);
        d.finish().unwrap();
    }

    #[test]
    fn truncated_and_trailing_payloads_are_errors_not_panics() {
        let mut e = Enc::tagged(1);
        e.u64(5);
        let mut d = Dec::new(&e.0[..4]);
        d.u8().unwrap();
        assert!(d.u64().is_err());
        let mut d = Dec::new(&e.0);
        d.u8().unwrap();
        assert!(d.finish().is_err());
        // A declared length past the buffer end must not allocate/panic.
        let mut d = Dec::new(&[10, 0, 0, 0, 1]);
        assert!(d.u32s().is_err());
    }

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", &FrameMeter::disabled()).unwrap();
        write_frame(&mut buf, b"", &FrameMeter::disabled()).unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, &FrameMeter::disabled()).unwrap(),
            b"hello"
        );
        assert!(read_frame(&mut r, &FrameMeter::disabled())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn oversized_length_prefix_is_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut &buf[..], &FrameMeter::disabled()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn meter_counts_bytes_and_frames() {
        let hub = MetricsHub::new();
        let meter = FrameMeter::new(&hub);
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc", &meter).unwrap();
        read_frame(&mut &buf[..], &meter).unwrap();
        assert_eq!(hub.counter("shard.bytes_sent").get(), 7);
        assert_eq!(hub.counter("shard.bytes_recv").get(), 7);
        assert_eq!(hub.counter("shard.frames").get(), 2);
    }
}
