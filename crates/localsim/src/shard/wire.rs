//! Length-prefixed frame transport shared by the shard coordinator and
//! workers.
//!
//! A v3 frame on the wire is
//! `[varint total length][varint sequence][4-byte LE FNV-1a checksum][payload]`,
//! where the total length covers everything after the prefix and the
//! checksum covers the sequence varint plus the payload. The first
//! payload byte is the frame tag (see [`super::proto`]). Sequence
//! numbers start at 0 per connection and direction: a receiver accepts
//! exactly the next expected sequence, silently drops duplicates below
//! it (so chaos-injected frame duplication is idempotent), and refuses
//! gaps above it; the checksum catches truncation and corruption that
//! TCP's own checksum let through or a chaos plan injected. All
//! integers inside payloads are LEB128 varints, node-id lists travel as
//! ascending deltas, and algorithm states go through [`rot`]/[`unrot`]
//! so their tag bits (parked in the *top* bits of the `u64` by every
//! [`super::WireAlgo`]) move into the low byte and a typical state
//! varint is 1–3 bytes instead of 9–10. The codec is still deliberately
//! tiny — no serialization framework in the hot per-round path.
//!
//! [`FrameConn`] is the coordinator's side of a connection: nonblocking,
//! with a pull-parsed receive buffer (so `RoundDone` frames from all
//! shards are drained by readiness polling, not serial blocking reads)
//! and single-syscall assembled writes.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use telemetry::{MetricCounter, MetricsHub};

/// Refuse frames larger than this (64 MiB): a corrupted length prefix
/// must not trigger an unbounded allocation, and a worker must not jam
/// the protocol with a reply the coordinator would refuse to read.
pub const MAX_FRAME: usize = 64 << 20;

/// Worst-case v3 header bytes after the length prefix: a 10-byte
/// sequence varint plus the 4-byte checksum.
const MAX_HEADER: usize = 14;

/// FNV-1a over the concatenation of `parts` — the v3 frame checksum.
/// 32 bits is plenty against the accidental corruption this guards (TCP
/// already rules out most of it); it is not a cryptographic MAC.
fn fnv1a32(parts: &[&[u8]]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for part in parts {
        for &b in *part {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}

/// Per-connection sequence state for the v3 frame header. The writer
/// stamps frames with `next_tx` and increments; the reader accepts
/// exactly `next_rx`, drops anything below it as a duplicate, and
/// refuses gaps above it. One `FrameSeq` serves both directions of a
/// bidirectional connection (each side writes its own stream).
#[derive(Debug, Default, Clone)]
pub struct FrameSeq {
    /// Sequence the next outgoing frame will carry.
    pub next_tx: u64,
    /// Sequence the next accepted incoming frame must carry.
    pub next_rx: u64,
}

/// Splits a v3 frame body (everything after the length prefix) into
/// `(sequence, payload)` after verifying the checksum.
fn split_body(body: &[u8]) -> io::Result<(u64, &[u8])> {
    let mut d = Dec::new(body);
    let seq = d.u64().map_err(|_| invalid("truncated frame header"))?;
    let head = body.len() - d.remaining();
    let rest = &body[head..];
    if rest.len() < 4 {
        return Err(invalid("truncated frame checksum"));
    }
    let stamped = u32::from_le_bytes(rest[..4].try_into().expect("4-byte slice"));
    let payload = &rest[4..];
    let computed = fnv1a32(&[&body[..head], payload]);
    if stamped != computed {
        return Err(invalid(&format!(
            "frame checksum mismatch (stamped {stamped:#010x}, computed {computed:#010x})"
        )));
    }
    if payload.len() > MAX_FRAME {
        return Err(invalid(&format!(
            "frame payload {} exceeds the {MAX_FRAME}-byte cap",
            payload.len()
        )));
    }
    Ok((seq, payload))
}

/// Bounded exponential backoff with deterministic jitter for the
/// coordinator's readiness-poll loops: the first 64 sweeps only yield,
/// then sleeps grow from 100µs toward a 3.2ms base (6.4ms with jitter)
/// so a stalled barrier burns microseconds of CPU, not a core.
pub(crate) fn backoff(spins: &mut u32) {
    *spins += 1;
    if *spins < 64 {
        std::thread::yield_now();
        return;
    }
    let exp = (*spins - 64).min(5);
    let base = 100u64 << exp;
    let jitter = crate::faults::mix(u64::from(*spins)) % base;
    std::thread::sleep(Duration::from_micros(base + jitter));
}

/// How many bytes the varint length prefix of a `len`-byte payload
/// occupies (the 64 MiB cap keeps this at most 4).
fn prefix_len(len: usize) -> usize {
    varint_len(len as u64)
}

/// Bytes needed to encode `v` as a LEB128 varint.
#[must_use]
pub fn varint_len(v: u64) -> usize {
    (64 - (v | 1).leading_zeros() as usize).div_ceil(7)
}

/// Appends `v` as a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Maps an algorithm state to its wire form: rotating left by two moves
/// the top-of-word phase tags (`Greedy`'s decided bit, `Rand`'s two-bit
/// phase) into the low bits, so small payloads stay small varints. A
/// pure bijection — the transport neither knows nor cares which
/// algorithm produced the state.
#[inline]
#[must_use]
pub fn rot(state: u64) -> u64 {
    state.rotate_left(2)
}

/// Inverse of [`rot`].
#[inline]
#[must_use]
pub fn unrot(wire: u64) -> u64 {
    wire.rotate_right(2)
}

/// Counts frames and bytes crossing the coordinator's side of the wire
/// into a [`MetricsHub`] (`shard.bytes_sent`, `shard.bytes_recv`,
/// `shard.frames`); a disabled meter costs nothing.
#[derive(Clone, Default)]
pub struct FrameMeter {
    sent: Option<MetricCounter>,
    recv: Option<MetricCounter>,
    frames: Option<MetricCounter>,
}

impl FrameMeter {
    /// A meter that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A meter feeding the shard wire counters of `hub`.
    #[must_use]
    pub fn new(hub: &MetricsHub) -> Self {
        FrameMeter {
            sent: Some(hub.counter("shard.bytes_sent")),
            recv: Some(hub.counter("shard.bytes_recv")),
            frames: Some(hub.counter("shard.frames")),
        }
    }

    fn count_sent(&self, wire_bytes: usize) {
        if let Some(c) = &self.sent {
            c.add(wire_bytes as u64);
        }
        if let Some(c) = &self.frames {
            c.incr();
        }
    }

    fn count_recv(&self, wire_bytes: usize) {
        if let Some(c) = &self.recv {
            c.add(wire_bytes as u64);
        }
        if let Some(c) = &self.frames {
            c.incr();
        }
    }
}

/// Checks a payload against [`MAX_FRAME`] (at the cap is allowed,
/// matching the read side).
fn check_cap(len: usize) -> io::Result<()> {
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    Ok(())
}

/// Assembles a full v3 frame
/// `[varint len][varint seq][checksum][payload]` into `frame`,
/// replacing its contents, after enforcing the frame cap.
pub fn frame_bytes(payload: &[u8], seq: u64, frame: &mut Vec<u8>) -> io::Result<()> {
    check_cap(payload.len())?;
    let mut head = Vec::with_capacity(10);
    put_varint(&mut head, seq);
    let crc = fnv1a32(&[&head, payload]);
    let total = head.len() + 4 + payload.len();
    frame.clear();
    frame.reserve(prefix_len(total) + total);
    put_varint(frame, total as u64);
    frame.extend_from_slice(&head);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(payload);
    Ok(())
}

/// Writes one frame stamped with the connection's next transmit
/// sequence, as a single `write_all`, and flushes. Allocates a frame
/// buffer per call — fine for handshakes and tests; hot paths reuse a
/// scratch via [`write_frame_buf`] or go through [`FrameConn::send`].
pub fn write_frame(
    w: &mut impl Write,
    payload: &[u8],
    meter: &FrameMeter,
    seq: &mut FrameSeq,
) -> io::Result<()> {
    let mut frame = Vec::new();
    write_frame_buf(w, payload, &mut frame, meter, seq)
}

/// [`write_frame`] with a caller-provided scratch buffer, so the
/// per-round worker reply costs one buffer reuse and one syscall.
pub fn write_frame_buf(
    w: &mut impl Write,
    payload: &[u8],
    frame: &mut Vec<u8>,
    meter: &FrameMeter,
    seq: &mut FrameSeq,
) -> io::Result<()> {
    frame_bytes(payload, seq.next_tx, frame)?;
    w.write_all(frame)?;
    w.flush()?;
    seq.next_tx += 1;
    meter.count_sent(frame.len());
    Ok(())
}

/// Reads one frame payload; blocks until the full frame arrives, and
/// transparently drops duplicated frames (sequence below the next
/// expected). Pair with a buffered reader — the varint prefix is read
/// byte by byte.
pub fn read_frame(
    r: &mut impl Read,
    meter: &FrameMeter,
    seq: &mut FrameSeq,
) -> io::Result<Vec<u8>> {
    loop {
        let mut len = 0u64;
        let mut shift = 0u32;
        let mut prefix = 0usize;
        loop {
            let mut byte = [0u8; 1];
            r.read_exact(&mut byte)?;
            prefix += 1;
            len |= u64::from(byte[0] & 0x7F) << shift;
            if byte[0] & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift > 28 {
                // 5 continuation groups already exceed the 64 MiB cap.
                return Err(invalid("frame length prefix too long"));
            }
        }
        let len = usize::try_from(len).map_err(|_| invalid("frame length overflows usize"))?;
        if len > MAX_FRAME + MAX_HEADER {
            return Err(invalid(&format!(
                "frame length {len} exceeds the {MAX_FRAME}-byte cap"
            )));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        meter.count_recv(prefix + len);
        let (got, payload) = split_body(&body)?;
        match got.cmp(&seq.next_rx) {
            std::cmp::Ordering::Less => continue, // duplicate: drop silently
            std::cmp::Ordering::Equal => {
                seq.next_rx += 1;
                return Ok(payload.to_vec());
            }
            std::cmp::Ordering::Greater => {
                return Err(invalid(&format!(
                    "frame sequence gap (got {got}, expected {})",
                    seq.next_rx
                )))
            }
        }
    }
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Varint payload builder.
#[derive(Default)]
pub struct Enc(pub Vec<u8>);

impl Enc {
    /// An empty payload starting with `tag`.
    #[must_use]
    pub fn tagged(tag: u8) -> Self {
        Enc(vec![tag])
    }

    /// [`Enc::tagged`] with capacity reserved from a frame-length hint,
    /// so large frames (Init, Restore) build without regrowth.
    #[must_use]
    pub fn with_hint(tag: u8, hint: usize) -> Self {
        let mut buf = Vec::with_capacity(hint + 1);
        buf.push(tag);
        Enc(buf)
    }

    /// Appends a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    /// Appends a `u32` as a varint.
    pub fn u32(&mut self, v: u32) {
        put_varint(&mut self.0, u64::from(v));
    }

    /// Appends a `u64` as a varint.
    pub fn u64(&mut self, v: u64) {
        put_varint(&mut self.0, v);
    }

    /// Appends an algorithm state ([`rot`]-transformed varint).
    pub fn state(&mut self, s: u64) {
        put_varint(&mut self.0, rot(s));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed byte sequence.
    pub fn bytes(&mut self, vs: &[u8]) {
        self.u32(vs.len() as u32);
        self.0.extend_from_slice(vs);
    }

    /// Appends a strictly ascending id list as deltas: count, first id,
    /// then gaps (`id[i] - id[i-1]`, always >= 1).
    pub fn ids(&mut self, vs: &[u32]) {
        self.u32(vs.len() as u32);
        let mut prev = 0u32;
        for (i, &v) in vs.iter().enumerate() {
            debug_assert!(i == 0 || v > prev, "id list must be strictly ascending");
            self.u32(if i == 0 { v } else { v - prev });
            prev = v;
        }
    }

    /// Appends a length-prefixed state sequence (each [`Enc::state`]).
    pub fn states(&mut self, vs: &[u64]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.state(v);
        }
    }

    /// Appends `(node, state)` pairs with strictly ascending node ids:
    /// delta-encoded ids, [`rot`]-varint states.
    pub fn pairs_states(&mut self, vs: &[(u32, u64)]) {
        self.u32(vs.len() as u32);
        let mut prev = 0u32;
        for (i, &(v, s)) in vs.iter().enumerate() {
            debug_assert!(i == 0 || v > prev, "pair ids must be strictly ascending");
            self.u32(if i == 0 { v } else { v - prev });
            self.state(s);
            prev = v;
        }
    }

    /// Appends `(node, value)` pairs with strictly ascending node ids
    /// and plain varint values (outputs — small, untagged).
    pub fn pairs_vals(&mut self, vs: &[(u32, u64)]) {
        self.u32(vs.len() as u32);
        let mut prev = 0u32;
        for (i, &(v, o)) in vs.iter().enumerate() {
            debug_assert!(i == 0 || v > prev, "pair ids must be strictly ascending");
            self.u32(if i == 0 { v } else { v - prev });
            self.u64(o);
            prev = v;
        }
    }
}

fn truncated() -> io::Error {
    invalid("truncated frame payload")
}

/// Cursor over a received payload; every read is bounds-checked so a
/// malformed frame surfaces as an error, never a panic.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A cursor over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(truncated)?;
        if end > self.buf.len() {
            return Err(truncated());
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a byte.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a varint `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8().map_err(|_| truncated())?;
            if shift == 63 && byte > 1 {
                return Err(invalid("varint overflows u64"));
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(invalid("varint longer than 10 bytes"));
            }
        }
    }

    /// Reads a varint that must fit a `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        u32::try_from(self.u64()?).map_err(|_| invalid("varint overflows u32"))
    }

    /// Reads an algorithm state (inverse of [`Enc::state`]).
    pub fn state(&mut self) -> io::Result<u64> {
        Ok(unrot(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string with a single copy: the
    /// bytes are validated in place as borrowed UTF-8, then copied once
    /// into the owned result.
    pub fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| invalid("non-UTF-8 string field"))?;
        Ok(s.to_owned())
    }

    /// Reads a length-prefixed byte sequence.
    pub fn bytes(&mut self) -> io::Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a delta-encoded strictly ascending id list.
    pub fn ids(&mut self) -> io::Result<Vec<u32>> {
        let len = self.u32()? as usize;
        if len > self.buf.len() - self.pos.min(self.buf.len()) {
            return Err(truncated());
        }
        let mut out = Vec::with_capacity(len);
        let mut prev = 0u32;
        for i in 0..len {
            let d = self.u32()?;
            if i > 0 && d == 0 {
                return Err(invalid("id list not strictly ascending"));
            }
            prev = prev.checked_add(d).ok_or_else(|| invalid("id overflow"))?;
            out.push(prev);
        }
        Ok(out)
    }

    /// Reads a length-prefixed state sequence.
    pub fn states(&mut self) -> io::Result<Vec<u64>> {
        let len = self.u32()? as usize;
        if len > self.buf.len() - self.pos.min(self.buf.len()) {
            return Err(truncated());
        }
        (0..len).map(|_| self.state()).collect()
    }

    /// Reads pairs written by [`Enc::pairs_states`].
    pub fn pairs_states(&mut self) -> io::Result<Vec<(u32, u64)>> {
        self.pairs_with(Dec::state)
    }

    /// Reads pairs written by [`Enc::pairs_vals`].
    pub fn pairs_vals(&mut self) -> io::Result<Vec<(u32, u64)>> {
        self.pairs_with(Dec::u64)
    }

    fn pairs_with(
        &mut self,
        read_val: impl Fn(&mut Self) -> io::Result<u64>,
    ) -> io::Result<Vec<(u32, u64)>> {
        let len = self.u32()? as usize;
        if len > self.buf.len() - self.pos.min(self.buf.len()) {
            return Err(truncated());
        }
        let mut out = Vec::with_capacity(len);
        let mut prev = 0u32;
        for i in 0..len {
            let d = self.u32()?;
            if i > 0 && d == 0 {
                return Err(invalid("pair ids not strictly ascending"));
            }
            prev = prev.checked_add(d).ok_or_else(|| invalid("id overflow"))?;
            out.push((prev, read_val(self)?));
        }
        Ok(out)
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the whole payload was consumed.
    pub fn finish(self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(invalid("trailing bytes after frame payload"))
        }
    }
}

/// The coordinator's half of one worker connection: nonblocking, with a
/// parse-as-you-go receive buffer and whole-frame single-write sends.
///
/// Reads never block — [`FrameConn::poll`] returns `Ok(None)` until a
/// complete frame is buffered, which lets the coordinator sweep all
/// shards for `RoundDone`s instead of waiting on each in turn. Writes
/// spin on `WouldBlock` (loopback buffers make that rare) but always
/// land the whole frame.
pub struct FrameConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    rpos: usize,
    wbuf: Vec<u8>,
    seq: FrameSeq,
}

/// Chaos to apply to one outgoing frame; the default applies none.
/// Computed by the coordinator from its `NetFaultPlan` and handed to
/// [`FrameConn::send_with`], keeping the transport itself policy-free.
#[derive(Debug, Default, Clone, Copy)]
pub struct TxFault {
    /// Sleep this long before the frame hits the wire.
    pub delay: Option<Duration>,
    /// Write the assembled frame twice (same sequence number — the
    /// receiver's dedup must absorb it).
    pub dup: bool,
    /// Flip one byte inside the checksummed region, so the receiver's
    /// checksum rejects the frame.
    pub corrupt: bool,
}

impl FrameConn {
    /// Wraps an established (blocking) stream, switching it to
    /// nonblocking mode. Sequence state starts fresh (0/0): a respawned
    /// worker gets a new `FrameConn` and a new sequence space.
    ///
    /// # Errors
    ///
    /// Propagates the `set_nonblocking` failure.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        Ok(FrameConn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            seq: FrameSeq::default(),
        })
    }

    /// Sends one frame stamped with the next transmit sequence.
    ///
    /// # Errors
    ///
    /// Frame-cap violations and transport failures.
    pub fn send(&mut self, payload: &[u8], meter: &FrameMeter) -> io::Result<()> {
        self.send_with(payload, meter, &TxFault::default())
    }

    /// [`FrameConn::send`] with injected wire faults: optional delay
    /// before the write, duplication (the frame bytes are written
    /// twice), and corruption (one byte inside the checksummed region
    /// is flipped after assembly). Duplicates are metered as real wire
    /// bytes because they are.
    ///
    /// # Errors
    ///
    /// Frame-cap violations and transport failures.
    pub fn send_with(
        &mut self,
        payload: &[u8],
        meter: &FrameMeter,
        fault: &TxFault,
    ) -> io::Result<()> {
        let seq = self.seq.next_tx;
        frame_bytes(payload, seq, &mut self.wbuf)?;
        self.seq.next_tx += 1;
        if fault.corrupt {
            // Flip the last byte: always inside payload-or-checksum,
            // never the length prefix, so the receiver reads a whole
            // frame and then rejects it.
            let last = self.wbuf.len() - 1;
            self.wbuf[last] ^= 0xFF;
        }
        if let Some(d) = fault.delay {
            std::thread::sleep(d);
        }
        self.write_wbuf()?;
        meter.count_sent(self.wbuf.len());
        if fault.dup {
            self.write_wbuf()?;
            meter.count_sent(self.wbuf.len());
        }
        Ok(())
    }

    fn write_wbuf(&mut self) -> io::Result<()> {
        let mut off = 0usize;
        while off < self.wbuf.len() {
            match self.stream.write(&self.wbuf[off..]) {
                Ok(0) => return Err(io::Error::from(io::ErrorKind::WriteZero)),
                Ok(k) => off += k,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::yield_now(),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Sends pre-framed bytes (a full v3 frame, e.g. the cached `Init`
    /// frame) without re-assembly. Only valid as the *first* frame on a
    /// fresh connection: the cached bytes carry sequence 0, which is
    /// why the coordinator may replay them verbatim on every respawn.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn send_framed(&mut self, frame: &[u8], meter: &FrameMeter) -> io::Result<()> {
        debug_assert_eq!(
            self.seq.next_tx, 0,
            "pre-framed bytes carry sequence 0 and must open the connection"
        );
        let mut off = 0usize;
        while off < frame.len() {
            match self.stream.write(&frame[off..]) {
                Ok(0) => return Err(io::Error::from(io::ErrorKind::WriteZero)),
                Ok(k) => off += k,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::yield_now(),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.seq.next_tx += 1;
        meter.count_sent(frame.len());
        Ok(())
    }

    /// Pumps the socket without blocking; returns a complete frame
    /// payload if one is buffered, `Ok(None)` if the worker has not
    /// answered yet, and an error on EOF or transport failure.
    /// Duplicated frames (sequence already accepted) are dropped here,
    /// invisibly to the caller.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the peer hung up, cap/format/checksum/
    /// sequence violations, and transport failures.
    pub fn poll(&mut self, meter: &FrameMeter) -> io::Result<Option<Vec<u8>>> {
        loop {
            if let Some(body) = self.try_parse(meter)? {
                let (got, payload) = split_body(&body)?;
                match got.cmp(&self.seq.next_rx) {
                    std::cmp::Ordering::Less => continue, // duplicate: drop
                    std::cmp::Ordering::Equal => {
                        self.seq.next_rx += 1;
                        return Ok(Some(payload.to_vec()));
                    }
                    std::cmp::Ordering::Greater => {
                        return Err(invalid(&format!(
                            "frame sequence gap (got {got}, expected {})",
                            self.seq.next_rx
                        )))
                    }
                }
            }
            let mut tmp = [0u8; 64 * 1024];
            match self.stream.read(&mut tmp) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "worker connection closed",
                    ))
                }
                Ok(k) => {
                    if self.rpos > 0 && self.rpos == self.rbuf.len() {
                        self.rbuf.clear();
                        self.rpos = 0;
                    }
                    self.rbuf.extend_from_slice(&tmp[..k]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Blocking receive built from [`FrameConn::poll`], yielding the
    /// CPU between sweeps (workers may share the cores) and honoring an
    /// optional deadline: past it,
    /// the wait ends in a `TimedOut` error instead of spinning forever
    /// on a hung worker. Sweeps back off exponentially (bounded, with
    /// deterministic jitter) while waiting.
    ///
    /// # Errors
    ///
    /// As [`FrameConn::poll`], plus `TimedOut` past the deadline.
    pub fn recv_deadline(
        &mut self,
        meter: &FrameMeter,
        deadline: Option<Instant>,
    ) -> io::Result<Vec<u8>> {
        let mut spins = 0u32;
        loop {
            if let Some(payload) = self.poll(meter)? {
                return Ok(payload);
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "worker did not answer before the deadline",
                ));
            }
            backoff(&mut spins);
        }
    }

    /// Attempts to parse one complete frame *body* (sequence varint +
    /// checksum + payload, checksum not yet verified) from the receive
    /// buffer.
    fn try_parse(&mut self, meter: &FrameMeter) -> io::Result<Option<Vec<u8>>> {
        let avail = &self.rbuf[self.rpos..];
        let mut len = 0u64;
        let mut shift = 0u32;
        let mut used = 0usize;
        loop {
            let Some(&byte) = avail.get(used) else {
                return Ok(None); // prefix itself incomplete
            };
            used += 1;
            len |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift > 28 {
                return Err(invalid("frame length prefix too long"));
            }
        }
        let len = usize::try_from(len).map_err(|_| invalid("frame length overflows usize"))?;
        if len > MAX_FRAME + MAX_HEADER {
            return Err(invalid(&format!(
                "frame length {len} exceeds the {MAX_FRAME}-byte cap"
            )));
        }
        if avail.len() < used + len {
            return Ok(None);
        }
        let body = avail[used..used + len].to_vec();
        self.rpos += used + len;
        if self.rpos == self.rbuf.len() || self.rpos > 64 * 1024 {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        meter.count_recv(used + len);
        Ok(Some(body))
    }

    /// Shuts down both directions of the underlying socket (used by the
    /// chaos kill and connection-reset hooks).
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_boundary_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "length of {v}");
            let mut d = Dec::new(&buf);
            assert_eq!(d.u64().unwrap(), v);
            d.finish().unwrap();
        }
    }

    #[test]
    fn state_rotation_shrinks_tagged_states() {
        // Greedy decided flag (bit 63) and Rand phase tags (bits 62–63)
        // must land in the low bits on the wire.
        for (state, max_bytes) in [
            (0u64, 1usize),
            ((1 << 63) | 5, 1 + 1),   // greedy decided color 5
            ((2 << 62) | 17, 1 + 1),  // rand decided color 17
            ((1 << 62) | 300, 2 + 1), // rand proposing color 300
            (u64::MAX, 10),
        ] {
            assert_eq!(unrot(rot(state)), state);
            assert!(
                varint_len(rot(state)) <= max_bytes,
                "state {state:#x} took {} wire bytes",
                varint_len(rot(state))
            );
        }
    }

    #[test]
    fn codec_round_trips_every_field_kind() {
        let mut e = Enc::tagged(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.str("boundary ports");
        e.ids(&[1, 2, 3, 900]);
        e.states(&[(1 << 63) | 4, 0]);
        e.bytes(&[0xFF, 0x00]);
        e.pairs_states(&[(9, 1 << 62), (40, 3)]);
        e.pairs_vals(&[(2, 7)]);
        let mut d = Dec::new(&e.0);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.str().unwrap(), "boundary ports");
        assert_eq!(d.ids().unwrap(), [1, 2, 3, 900]);
        assert_eq!(d.states().unwrap(), [(1 << 63) | 4, 0]);
        assert_eq!(d.bytes().unwrap(), [0xFF, 0x00]);
        assert_eq!(d.pairs_states().unwrap(), [(9, 1 << 62), (40, 3)]);
        assert_eq!(d.pairs_vals().unwrap(), [(2, 7)]);
        d.finish().unwrap();
    }

    #[test]
    fn truncated_and_trailing_payloads_are_errors_not_panics() {
        let mut e = Enc::tagged(1);
        e.u64(u64::MAX);
        let mut d = Dec::new(&e.0[..4]);
        d.u8().unwrap();
        assert!(d.u64().is_err());
        let mut d = Dec::new(&e.0);
        d.u8().unwrap();
        assert!(d.finish().is_err());
        // A declared length past the buffer end must not allocate/panic.
        let mut d = Dec::new(&[0xFF, 0xFF, 0xFF, 0xFF, 1]);
        assert!(d.ids().is_err());
        // Non-ascending id lists are refused.
        let mut e = Enc::tagged(1);
        e.u32(2); // count
        e.u32(5); // first id
        e.u32(0); // zero gap
        let mut d = Dec::new(&e.0);
        d.u8().unwrap();
        assert!(d.ids().is_err());
    }

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let mut buf = Vec::new();
        let mut tx = FrameSeq::default();
        write_frame(&mut buf, b"hello", &FrameMeter::disabled(), &mut tx).unwrap();
        write_frame(&mut buf, b"", &FrameMeter::disabled(), &mut tx).unwrap();
        let mut r = &buf[..];
        let mut rx = FrameSeq::default();
        assert_eq!(
            read_frame(&mut r, &FrameMeter::disabled(), &mut rx).unwrap(),
            b"hello"
        );
        assert!(read_frame(&mut r, &FrameMeter::disabled(), &mut rx)
            .unwrap()
            .is_empty());
        assert_eq!(rx.next_rx, 2);
    }

    #[test]
    fn frame_cap_is_enforced_at_exactly_one_byte_over() {
        let meter = FrameMeter::disabled();
        // At the cap and one under: round trip.
        for len in [MAX_FRAME - 1, MAX_FRAME] {
            let payload = vec![0x5Au8; len];
            let mut buf = Vec::new();
            write_frame(&mut buf, &payload, &meter, &mut FrameSeq::default()).unwrap();
            let got = read_frame(&mut &buf[..], &meter, &mut FrameSeq::default()).unwrap();
            assert_eq!(got.len(), len);
            assert_eq!(got[len / 2], 0x5A);
        }
        // One over: the writer refuses before any bytes hit the wire.
        let over = vec![0u8; MAX_FRAME + 1];
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, &over, &meter, &mut FrameSeq::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(buf.is_empty(), "no partial frame may be written");
        // ... and the reader refuses a forged oversized prefix (past
        // the header allowance).
        let mut forged = Vec::new();
        put_varint(&mut forged, (MAX_FRAME + MAX_HEADER + 1) as u64);
        let err = read_frame(&mut &forged[..], &meter, &mut FrameSeq::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_length_prefix_is_refused() {
        // An absurdly long varint prefix (> 5 bytes) is refused without
        // allocating.
        let buf = [0xFFu8; 10];
        let err = read_frame(
            &mut &buf[..],
            &FrameMeter::disabled(),
            &mut FrameSeq::default(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn meter_counts_bytes_and_frames() {
        let hub = MetricsHub::new();
        let meter = FrameMeter::new(&hub);
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc", &meter, &mut FrameSeq::default()).unwrap();
        read_frame(&mut &buf[..], &meter, &mut FrameSeq::default()).unwrap();
        // 1-byte length prefix + 1-byte sequence varint + 4 checksum
        // bytes + 3 payload bytes.
        assert_eq!(hub.counter("shard.bytes_sent").get(), 9);
        assert_eq!(hub.counter("shard.bytes_recv").get(), 9);
        assert_eq!(hub.counter("shard.frames").get(), 2);
    }

    #[test]
    fn checksum_catches_single_byte_corruption_everywhere() {
        let meter = FrameMeter::disabled();
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload", &meter, &mut FrameSeq::default()).unwrap();
        // Flip every byte after the length prefix in turn: each must be
        // rejected as InvalidData (corrupting the prefix itself changes
        // the framing, which is the cap test's territory).
        for i in 1..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xFF;
            let err = read_frame(&mut &bad[..], &meter, &mut FrameSeq::default()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "byte {i}");
        }
    }

    #[test]
    fn duplicate_frames_are_dropped_and_gaps_refused() {
        let meter = FrameMeter::disabled();
        // Writer emits frames 0 and 1, then replays both (a chaos dup
        // of the whole tail); the reader must see each payload once.
        let mut tx = FrameSeq::default();
        let mut first = Vec::new();
        write_frame(&mut first, b"alpha", &meter, &mut tx).unwrap();
        let mut second = Vec::new();
        write_frame(&mut second, b"beta", &meter, &mut tx).unwrap();
        let mut third = Vec::new();
        write_frame(&mut third, b"gamma", &meter, &mut tx).unwrap();
        let mut stream = Vec::new();
        stream.extend_from_slice(&first);
        stream.extend_from_slice(&first); // duplicate
        stream.extend_from_slice(&second);
        stream.extend_from_slice(&first); // stale replay
        stream.extend_from_slice(&third);
        let mut r = &stream[..];
        let mut rx = FrameSeq::default();
        assert_eq!(read_frame(&mut r, &meter, &mut rx).unwrap(), b"alpha");
        assert_eq!(read_frame(&mut r, &meter, &mut rx).unwrap(), b"beta");
        assert_eq!(read_frame(&mut r, &meter, &mut rx).unwrap(), b"gamma");
        // A sequence gap (frame 2 skipped straight to 5) is an error.
        let mut skipped = Vec::new();
        let mut far = FrameSeq {
            next_tx: 5,
            next_rx: 0,
        };
        write_frame(&mut skipped, b"late", &meter, &mut far).unwrap();
        let err = read_frame(&mut &skipped[..], &meter, &mut rx).unwrap_err();
        assert!(err.to_string().contains("sequence gap"), "{err}");
    }

    #[test]
    fn frame_conn_round_trips_over_loopback_including_at_cap() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let worker = std::thread::spawn(move || {
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            let meter = FrameMeter::disabled();
            let mut seq = FrameSeq::default();
            // Echo frames back until the coordinator hangs up.
            loop {
                match read_frame(&mut stream, &meter, &mut seq) {
                    Ok(payload) => {
                        write_frame(&mut stream, &payload, &meter, &mut seq).unwrap();
                    }
                    Err(_) => return,
                }
            }
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = FrameConn::new(stream).unwrap();
        let meter = FrameMeter::disabled();
        // Small frame, empty frame, multi-frame pipelining, and a frame
        // exactly at the cap all survive the nonblocking path.
        conn.send(b"ping", &meter).unwrap();
        conn.send(b"", &meter).unwrap();
        assert_eq!(conn.recv_deadline(&meter, None).unwrap(), b"ping");
        assert!(conn.recv_deadline(&meter, None).unwrap().is_empty());
        let big = vec![0xA5u8; MAX_FRAME];
        conn.send(&big, &meter).unwrap();
        let echoed = conn.recv_deadline(&meter, None).unwrap();
        assert_eq!(echoed.len(), MAX_FRAME);
        assert!(echoed == big);
        // One byte over the cap is refused locally.
        let over = vec![0u8; MAX_FRAME + 1];
        assert!(conn.send(&over, &meter).is_err());
        drop(conn);
        worker.join().unwrap();
    }

    #[test]
    fn frame_conn_absorbs_duplicates_and_rejects_corruption() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let worker = std::thread::spawn(move || {
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            let meter = FrameMeter::disabled();
            let mut seq = FrameSeq::default();
            // The worker sees exactly one copy of each duplicated frame.
            let mut seen = Vec::new();
            for _ in 0..2 {
                seen.push(read_frame(&mut stream, &meter, &mut seq).unwrap());
            }
            write_frame(&mut stream, b"ack", &meter, &mut seq).unwrap();
            // Hold the socket open until the peer is done asserting.
            let _ = read_frame(&mut stream, &meter, &mut seq);
            seen
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = FrameConn::new(stream).unwrap();
        let meter = FrameMeter::disabled();
        let dup = TxFault {
            dup: true,
            ..TxFault::default()
        };
        conn.send_with(b"first", &meter, &dup).unwrap();
        conn.send_with(
            b"second",
            &meter,
            &TxFault {
                delay: Some(Duration::from_micros(50)),
                ..TxFault::default()
            },
        )
        .unwrap();
        assert_eq!(conn.recv_deadline(&meter, None).unwrap(), b"ack");
        conn.shutdown();
        assert_eq!(
            worker.join().unwrap(),
            vec![b"first".to_vec(), b"second".to_vec()]
        );

        // Corruption: a corrupted frame must fail the receiver's
        // checksum, not deliver garbage.
        let mut tx = FrameSeq::default();
        let mut good = Vec::new();
        write_frame(&mut good, b"intact", &FrameMeter::disabled(), &mut tx).unwrap();
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        let err = read_frame(
            &mut &bad[..],
            &FrameMeter::disabled(),
            &mut FrameSeq::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }
}
