//! What a worker knows about the graph: the `Frame::Init` graph payload.
//!
//! Version 2 of the protocol ships topology in one of two shapes, chosen
//! by the coordinator per shard by exact encoded size:
//!
//! - **Full** (mode byte 0): the whole graph in `graphgen::io` binary
//!   CSR form. Encoded once and reused for every shard (and every
//!   respawn); wins on dense graphs where interval runs collapse (a
//!   clique is one run per vertex).
//! - **Sub** (mode byte 1): only what this shard can see — the owned
//!   range's full adjacency (global ids, ascending, so neighbor ports
//!   line up with the full graph's CSR), plus the global `n`, `Δ`, and
//!   optionally the owned range's global port base (needed only when a
//!   fault plan indexes the drop stream by global port). Wins on sparse
//!   graphs where a shard's neighborhood is a sliver of `m`.
//!
//! Everything else a worker needs is derivable: ghost ids are the
//! foreign ids in the owned adjacency, and init states are pure
//! functions of `(id, n, Δ)` for every [`super::WireAlgo`], so no ghost
//! adjacency ever travels.

use std::io;

use graphgen::io::{decode_graph, decode_runs, encode_graph, encode_runs};
use graphgen::{Graph, NodeId};

use super::wire::{put_varint, Dec};

const MODE_FULL: u8 = 0;
const MODE_SUB: u8 = 1;

/// The owned-range slice of a graph (see module docs for the format).
pub struct SubTopology {
    n: usize,
    max_degree: usize,
    lo: usize,
    hi: usize,
    /// Global port index of the first owned port (`csr_offsets()[lo]` of
    /// the full graph); `usize::MAX` when not shipped.
    port_base: usize,
    /// Local CSR over the owned range: `offsets[v - lo]..offsets[v - lo + 1]`
    /// indexes `adj`.
    offsets: Vec<usize>,
    adj: Vec<NodeId>,
}

/// A worker's view of the topology.
pub enum Topology {
    /// The whole graph (mode byte 0).
    Full(Graph),
    /// Owned-range adjacency only (mode byte 1).
    Sub(SubTopology),
}

/// Encodes the full-graph payload: mode byte 0 + binary CSR.
#[must_use]
pub fn encode_full(g: &Graph) -> Vec<u8> {
    let mut out = vec![MODE_FULL];
    out.extend_from_slice(&encode_graph(g));
    out
}

/// Encodes the sub-topology payload for the owned range `lo..hi`;
/// `with_ports` ships the global port base (required by fault plans
/// with message drops, whose RNG stream is indexed by global port).
#[must_use]
pub fn encode_sub(g: &Graph, lo: usize, hi: usize, with_ports: bool) -> Vec<u8> {
    let mut out = vec![MODE_SUB];
    put_varint(&mut out, g.n() as u64);
    put_varint(&mut out, g.max_degree() as u64);
    put_varint(&mut out, lo as u64);
    put_varint(&mut out, hi as u64);
    out.push(u8::from(with_ports));
    if with_ports {
        put_varint(&mut out, g.csr_offsets()[lo] as u64);
    }
    let mut shifted: Vec<NodeId> = Vec::new();
    for v in lo..hi {
        // Full adjacency (both directions) per owned vertex, interval-
        // coded; ids may start at 0, so shift by one to satisfy the
        // strictly-positive-gap invariant of the run encoding.
        shifted.clear();
        shifted.extend(
            g.neighbors(NodeId(v as u32))
                .iter()
                .map(|w| NodeId(w.0 + 1)),
        );
        encode_runs(&mut out, 0, &shifted);
    }
    out
}

fn protocol(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl Topology {
    /// Decodes an `Init` graph payload for the owned range `start..end`.
    ///
    /// # Errors
    ///
    /// Malformed payloads, unknown mode bytes, and payloads whose owned
    /// range disagrees with the `Init` frame's.
    pub fn decode(bytes: &[u8], start: usize, end: usize) -> io::Result<Topology> {
        let mut d = Dec::new(bytes);
        match d.u8()? {
            MODE_FULL => {
                let g = decode_graph(&bytes[1..])
                    .map_err(|e| protocol(format!("bad full-graph payload: {e}")))?;
                if start > end || end > g.n() {
                    return Err(protocol(format!(
                        "owned range {start}..{end} outside 0..{}",
                        g.n()
                    )));
                }
                Ok(Topology::Full(g))
            }
            MODE_SUB => {
                let n = d.u64()? as usize;
                if n >= u32::MAX as usize {
                    return Err(protocol(format!("vertex count {n} overflows u32")));
                }
                let max_degree = d.u64()? as usize;
                let lo = d.u64()? as usize;
                let hi = d.u64()? as usize;
                if lo != start || hi != end || hi > n {
                    return Err(protocol(format!(
                        "sub-topology range {lo}..{hi} disagrees with init range \
                         {start}..{end} (n = {n})"
                    )));
                }
                let with_ports = match d.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(protocol(format!("bad port flag {other}"))),
                };
                let port_base = if with_ports {
                    d.u64()? as usize
                } else {
                    usize::MAX
                };
                let mut pos = bytes.len() - d.remaining();
                let mut offsets = Vec::with_capacity(hi - lo + 1);
                offsets.push(0usize);
                let mut adj: Vec<NodeId> = Vec::new();
                for v in lo..hi {
                    // Shifted ids run 1..=n, hence the `n + 1` limit;
                    // the sink undoes the shift from `encode_sub`.
                    decode_runs(bytes, &mut pos, 0, n as u32 + 1, |w| {
                        adj.push(NodeId(w - 1));
                    })
                    .map_err(|e| protocol(format!("bad adjacency for vertex {v}: {e}")))?;
                    offsets.push(adj.len());
                }
                if pos != bytes.len() {
                    return Err(protocol("trailing bytes after sub-topology".to_string()));
                }
                if offsets.windows(2).any(|w| w[1] - w[0] > max_degree) {
                    return Err(protocol("owned degree exceeds declared Δ".to_string()));
                }
                Ok(Topology::Sub(SubTopology {
                    n,
                    max_degree,
                    lo,
                    hi,
                    port_base,
                    offsets,
                    adj,
                }))
            }
            other => Err(protocol(format!("unknown topology mode {other}"))),
        }
    }

    /// Global vertex count.
    #[must_use]
    pub fn n(&self) -> usize {
        match self {
            Topology::Full(g) => g.n(),
            Topology::Sub(s) => s.n,
        }
    }

    /// Global maximum degree.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        match self {
            Topology::Full(g) => g.max_degree(),
            Topology::Sub(s) => s.max_degree,
        }
    }

    /// Neighbors of `v` in ascending order (CSR port order). For a
    /// sub-topology, only owned vertices are known.
    ///
    /// # Panics
    ///
    /// On a sub-topology when `v` is outside the owned range — callers
    /// only gather for owned vertices.
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        match self {
            Topology::Full(g) => g.neighbors(v),
            Topology::Sub(s) => {
                let vi = v.index();
                assert!(
                    vi >= s.lo && vi < s.hi,
                    "sub-topology neighbors of unowned vertex {vi}"
                );
                &s.adj[s.offsets[vi - s.lo]..s.offsets[vi - s.lo + 1]]
            }
        }
    }

    /// Global port index of the first port of owned vertex range
    /// `start..`, i.e. `csr_offsets()[start]` of the full graph.
    /// `None` when the payload did not ship port information.
    #[must_use]
    pub fn global_port_base(&self, start: usize) -> Option<usize> {
        match self {
            Topology::Full(g) => Some(g.csr_offsets()[start]),
            Topology::Sub(s) => (s.port_base != usize::MAX).then_some(s.port_base),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique(n: u32) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
            .collect();
        Graph::from_edges(n as usize, edges).unwrap()
    }

    #[test]
    fn sub_topology_matches_the_full_graph_on_the_owned_range() {
        for g in [
            graphgen::generators::path(24),
            graphgen::generators::cycle(24),
            graphgen::generators::gnp(60, 0.1, 13),
            clique(12),
        ] {
            let n = g.n();
            for (lo, hi) in [(0, n), (0, n / 2), (n / 3, 2 * n / 3), (n - 1, n), (5, 5)] {
                for with_ports in [false, true] {
                    let bytes = encode_sub(&g, lo, hi, with_ports);
                    let topo = Topology::decode(&bytes, lo, hi).unwrap();
                    assert_eq!(topo.n(), n);
                    assert_eq!(topo.max_degree(), g.max_degree());
                    for v in lo..hi {
                        assert_eq!(
                            topo.neighbors(NodeId(v as u32)),
                            g.neighbors(NodeId(v as u32)),
                            "vertex {v} of range {lo}..{hi}"
                        );
                    }
                    assert_eq!(
                        topo.global_port_base(lo),
                        with_ports.then(|| g.csr_offsets()[lo])
                    );
                }
            }
        }
    }

    #[test]
    fn full_mode_round_trips_and_knows_every_port_base() {
        let g = graphgen::generators::gnp(40, 0.15, 7);
        let bytes = encode_full(&g);
        let topo = Topology::decode(&bytes, 10, 30).unwrap();
        assert_eq!(topo.n(), g.n());
        for v in 0..g.n() {
            assert_eq!(
                topo.neighbors(NodeId(v as u32)),
                g.neighbors(NodeId(v as u32))
            );
        }
        assert_eq!(topo.global_port_base(10), Some(g.csr_offsets()[10]));
        // The range must fit the decoded graph.
        assert!(Topology::decode(&bytes, 10, g.n() + 1).is_err());
    }

    #[test]
    fn sub_encoding_of_a_sparse_shard_beats_the_full_graph() {
        // A shard of a long path sees O(owned) edges; the full graph is
        // O(n). The per-shard payload must reflect that.
        let g = graphgen::generators::path(10_000);
        let full = encode_full(&g);
        let sub = encode_sub(&g, 0, 100, false);
        assert!(
            sub.len() * 10 < full.len(),
            "sub = {} bytes, full = {} bytes",
            sub.len(),
            full.len()
        );
    }

    #[test]
    fn malformed_payloads_are_refused() {
        let g = graphgen::generators::path(8);
        // Unknown mode byte.
        assert!(Topology::decode(&[7], 0, 8).is_err());
        // Range mismatch between payload and Init frame.
        let bytes = encode_sub(&g, 2, 6, false);
        assert!(Topology::decode(&bytes, 2, 5).is_err());
        assert!(Topology::decode(&bytes, 3, 6).is_err());
        // Truncation anywhere is an error, not a panic.
        for cut in 1..bytes.len() {
            assert!(Topology::decode(&bytes[..cut], 2, 6).is_err());
        }
        // Trailing bytes are refused.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(Topology::decode(&padded, 2, 6).is_err());
        // Bad port flag.
        let mut flag = bytes;
        let flag_pos = 1 + 4; // n, Δ, lo, hi are single-byte varints here
        flag[flag_pos] = 9;
        assert!(Topology::decode(&flag, 2, 6).is_err());
    }
}
