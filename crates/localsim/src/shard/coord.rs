//! The shard coordinator: partitions the graph, drives the round clock
//! over TCP loopback, aggregates telemetry, and recovers killed shards
//! from checkpoints.
//!
//! The coordinator is the sharded counterpart of [`crate::Executor`]:
//! it emits the *same* event stream (crash/drop/stall faults, per-round
//! registry snapshots under [`EXEC_SCOPE`]) and returns the same
//! [`RunResult`]/[`SimError`] outcomes, so an `N`-shard run is
//! interchangeable with — and testable against — a single-process run.
//! Per-round wire activity lands in the metrics hub instead
//! (`shard.bytes_sent`, `shard.bytes_recv`, `shard.frames`,
//! `shard.round_ns`, `shard.barrier_wait_ns`, `shard.init_bytes`,
//! `shard.ghost_updates_sent`, `shard.ghost_suppressed`), because
//! wall-clock and byte counts are not part of the simulated semantics.
//!
//! The wire path is built for throughput: `Init` frames are encoded
//! once (binary CSR or per-shard sub-topology, whichever is smaller)
//! and the cached bytes are replayed verbatim on every respawn; ghost
//! routing uses scatter lists built once per run ([`GhostPlan`]); and
//! the round barrier drains `RoundDone` frames by readiness-polling
//! every shard instead of serial blocking reads, so a slow shard never
//! delays reading the others.

use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use graphgen::{Graph, NodeId};
use serde::Value;
use telemetry::{Event, FaultKind, MetricCounter, Probe, Registry};

use super::algo::WireAlgo;
use super::netfault::{Liveness, NetDir, NetFaultPlan, NET_DELAY};
use super::proto::{encode_fault_plan, Frame, GhostUpdates, PROTO_VERSION};
use super::topology::{encode_full, encode_sub};
use super::wire::{self, frame_bytes, Dec, FrameConn, FrameMeter, TxFault};
use super::worker::ShardState;
use crate::exec::{LocalAlgorithm, NodeCtx, RunResult, SimError, EXEC_SCOPE};
use crate::faults::FaultPlan;
use crate::par::segments_weighted;

/// How a worker shard is hosted.
#[derive(Clone)]
pub enum WorkerBackend {
    /// Worker loops run on threads of this process, still speaking the
    /// full TCP protocol over loopback. The default; used by tests and
    /// benchmarks.
    Threads,
    /// Each worker is a separate OS process: `program` is spawned with
    /// `args` plus the coordinator's `host:port` appended as the final
    /// argument (the CLI's `shard-serve --connect` contract).
    Process {
        /// Executable to spawn (typically `std::env::current_exe`).
        program: PathBuf,
        /// Arguments before the appended address.
        args: Vec<String>,
    },
    /// Test hook: each "worker" is whatever the closure does with the
    /// coordinator's `host:port`, run on a fresh thread. Lets the
    /// liveness tests interpose byte-level proxies or deliberately
    /// half-dead workers without a process boundary.
    #[doc(hidden)]
    Custom(Arc<dyn Fn(String) + Send + Sync>),
}

impl std::fmt::Debug for WorkerBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerBackend::Threads => f.write_str("Threads"),
            WorkerBackend::Process { program, args } => f
                .debug_struct("Process")
                .field("program", program)
                .field("args", args)
                .finish(),
            WorkerBackend::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

/// A deterministic fault injection for the *runtime* layer (as opposed
/// to [`FaultPlan`], which injects faults into the simulated network):
/// kill one shard after the coordinator completes a given round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosKill {
    /// Shard index to kill.
    pub shard: usize,
    /// Fire after this many rounds have completed (`0` kills before the
    /// first round). With the process backend this is a SIGKILL.
    pub after_round: u64,
}

/// Why a sharded run failed.
#[derive(Debug)]
pub enum ShardError {
    /// The simulation itself failed, exactly as the single-process
    /// executor would report it.
    Sim(SimError),
    /// A transport failure that recovery could not absorb.
    Io(String),
    /// A protocol violation (bad handshake, unexpected frame, worker
    /// error report) — not retried.
    Protocol(String),
    /// A shard kept dying past the respawn budget. Since protocol v3
    /// the coordinator *adopts* such a shard in-process instead of
    /// failing; the variant remains for API stability and for callers
    /// matching historical traces.
    RespawnBudgetExhausted {
        /// The repeatedly failing shard.
        shard: usize,
        /// The exhausted budget.
        budget: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Sim(e) => write!(f, "{e}"),
            ShardError::Io(msg) => write!(f, "shard transport error: {msg}"),
            ShardError::Protocol(msg) => write!(f, "shard protocol error: {msg}"),
            ShardError::RespawnBudgetExhausted { shard, budget } => {
                write!(f, "shard {shard} exhausted its respawn budget of {budget}")
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl From<SimError> for ShardError {
    fn from(e: SimError) -> Self {
        ShardError::Sim(e)
    }
}

/// A full-cluster snapshot: everything needed to rewind every shard and
/// the coordinator's own aggregates to a round boundary. Assembled from
/// per-shard [`Frame::Dump`]s (plus coordinator-local outputs); round 0
/// is an implicit checkpoint computed without any wire traffic.
#[derive(Clone)]
struct Checkpoint {
    round: u64,
    states: Vec<u64>,
    live_bitmap: Vec<u8>,
    seen: Vec<u64>,
    outputs: Vec<Option<u64>>,
    crashed: usize,
    live_count: usize,
}

impl Checkpoint {
    /// Renders the checkpoint as a JSON value for on-disk phase
    /// snapshots (outputs as parallel node/value arrays).
    fn to_value(&self) -> Value {
        let pairs: Vec<(u32, u64)> = self
            .outputs
            .iter()
            .enumerate()
            .filter_map(|(v, o)| o.map(|o| (v as u32, o)))
            .collect();
        Value::Map(vec![
            ("schema_version".to_string(), Value::U64(1)),
            ("round".to_string(), Value::U64(self.round)),
            ("crashed".to_string(), Value::U64(self.crashed as u64)),
            ("live".to_string(), Value::U64(self.live_count as u64)),
            (
                "states".to_string(),
                Value::Seq(self.states.iter().map(|&s| Value::U64(s)).collect()),
            ),
            (
                "live_bitmap".to_string(),
                Value::Seq(
                    self.live_bitmap
                        .iter()
                        .map(|&b| Value::U64(u64::from(b)))
                        .collect(),
                ),
            ),
            (
                "seen".to_string(),
                Value::Seq(self.seen.iter().map(|&s| Value::U64(s)).collect()),
            ),
            (
                "output_nodes".to_string(),
                Value::Seq(
                    pairs
                        .iter()
                        .map(|&(v, _)| Value::U64(u64::from(v)))
                        .collect(),
                ),
            ),
            (
                "output_values".to_string(),
                Value::Seq(pairs.iter().map(|&(_, o)| Value::U64(o)).collect()),
            ),
        ])
    }
}

/// One shard's hosting handle.
enum WorkerHandle {
    Thread,
    Process(std::process::Child),
}

/// A round-trip failure: either one shard died (recoverable by respawn
/// + restore) or the protocol itself broke (fatal).
enum TripFail {
    Shard(usize),
    Fatal(ShardError),
}

/// The ghost-routing plan, built once per run instead of per round:
/// the per-shard ghost and boundary id universes (shared with the
/// workers, which derive identical lists from their topology), and for
/// every boundary node the scatter list of shards reading it.
struct GhostPlan {
    /// `ghost_ids[s]`: sorted foreign neighbors of shard `s`'s range —
    /// the universe `RoundGo` ghosts are packed against.
    ghost_ids: Vec<Vec<u32>>,
    /// `boundary_ids[s]`: sorted owned vertices of shard `s` with a
    /// foreign neighbor — the universe `RoundDone` boundary updates are
    /// packed against.
    boundary_ids: Vec<Vec<u32>>,
    /// `readers[s][i]`: shards whose ghost set contains
    /// `boundary_ids[s][i]`.
    readers: Vec<Vec<Vec<usize>>>,
}

impl GhostPlan {
    fn build(graph: &Graph, ranges: &[(u32, u32)]) -> GhostPlan {
        let shard_count = ranges.len();
        let mut ghost_ids: Vec<Vec<u32>> = vec![Vec::new(); shard_count];
        let mut boundary_ids: Vec<Vec<u32>> = vec![Vec::new(); shard_count];
        for (s, &(lo, hi)) in ranges.iter().enumerate() {
            let (lo, hi) = (lo as usize, hi as usize);
            for v in lo..hi {
                let mut foreign = false;
                for w in graph.neighbors(NodeId(v as u32)) {
                    if w.index() < lo || w.index() >= hi {
                        foreign = true;
                        ghost_ids[s].push(w.0);
                    }
                }
                if foreign {
                    boundary_ids[s].push(v as u32);
                }
            }
            ghost_ids[s].sort_unstable();
            ghost_ids[s].dedup();
        }
        let mut readers: Vec<Vec<Vec<usize>>> = boundary_ids
            .iter()
            .map(|b| vec![Vec::new(); b.len()])
            .collect();
        for (t, ghosts) in ghost_ids.iter().enumerate() {
            for &g in ghosts {
                // Ranges are contiguous and cover every vertex, so the
                // owner is the first range ending past g; a ghost is by
                // construction a boundary node of its owner.
                let owner = ranges.partition_point(|&(_, end)| end <= g);
                let idx = boundary_ids[owner]
                    .binary_search(&g)
                    .expect("a ghost is a boundary node of its owning shard");
                readers[owner][idx].push(t);
            }
        }
        GhostPlan {
            ghost_ids,
            boundary_ids,
            readers,
        }
    }
}

/// Aggregated results of one round across all shards, merged in shard
/// order so every derived figure matches the sequential schedule.
#[derive(Default)]
struct RoundAgg {
    msgs: u64,
    dropped: u64,
    stalled: u64,
    halts: Vec<(u32, u64)>,
    /// Changed boundary states routed to the shards reading them,
    /// becoming the next round's `RoundGo` ghosts. Per-shard lists stay
    /// ascending because sources are merged in shard (= id) order.
    next_ghosts: Vec<Vec<(u32, u64)>>,
}

/// Runs [`WireAlgo`]s over a graph partitioned across worker shards.
pub struct ShardedExecutor<'g> {
    graph: &'g Graph,
    shards: usize,
    probe: Probe,
    faults: Option<FaultPlan>,
    backend: WorkerBackend,
    checkpoint_every: u64,
    checkpoint_dir: Option<PathBuf>,
    max_respawns: usize,
    kills: Vec<ChaosKill>,
    net_faults: Option<NetFaultPlan>,
    liveness: Liveness,
}

impl<'g> ShardedExecutor<'g> {
    /// A coordinator over `graph` with thread-backed workers, no
    /// telemetry, no faults, and no periodic checkpoints (the implicit
    /// round-0 checkpoint still makes every shard kill recoverable).
    pub fn new(graph: &'g Graph) -> Self {
        ShardedExecutor {
            graph,
            shards: 1,
            probe: Probe::disabled(),
            faults: None,
            backend: WorkerBackend::Threads,
            checkpoint_every: 0,
            checkpoint_dir: None,
            max_respawns: 4,
            kills: Vec::new(),
            net_faults: None,
            liveness: Liveness::default(),
        }
    }

    /// Sets the worker count; ranges are degree-weighted contiguous
    /// vertex slices, so shards beyond the vertex count stay empty and
    /// are not spawned.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Attaches a telemetry probe; the run then emits the identical
    /// per-round event stream a single-process [`crate::Executor`] run
    /// would, plus `shard.*` wire metrics into the probe's hub.
    #[must_use]
    pub fn with_probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Injects a seed-deterministic [`FaultPlan`], exactly like
    /// [`crate::Executor::with_faults`]. An inactive plan is a no-op.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan.is_active().then_some(plan);
        self
    }

    /// Selects how workers are hosted.
    #[must_use]
    pub fn with_backend(mut self, backend: WorkerBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Takes a full-cluster checkpoint every `k` rounds (`0` disables
    /// periodic checkpoints; round 0 is always an implicit checkpoint).
    #[must_use]
    pub fn with_checkpoint_every(mut self, k: u64) -> Self {
        self.checkpoint_every = k;
        self
    }

    /// Also writes each checkpoint to `dir` as an atomic JSON snapshot
    /// (`shard-checkpoint-<round>.json`), the shard analogue of the
    /// supervisor's phase snapshots.
    #[must_use]
    pub fn with_checkpoint_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.checkpoint_dir = dir;
        self
    }

    /// Caps how many times any single shard may be respawned.
    #[must_use]
    pub fn with_max_respawns(mut self, budget: usize) -> Self {
        self.max_respawns = budget;
        self
    }

    /// Injects runtime-layer shard kills (each fires once).
    #[must_use]
    pub fn with_chaos_kills(mut self, kills: Vec<ChaosKill>) -> Self {
        self.kills = kills;
        self
    }

    /// Injects a seed-deterministic *wire-level* [`NetFaultPlan`]:
    /// per-frame delay, duplication, and corruption, plus scheduled
    /// connection resets and worker hangs. An inactive plan is a no-op.
    /// Every decision is keyed by a per-connection counter of
    /// chaos-eligible frames, so the same plan replays bit-identically.
    #[must_use]
    pub fn with_net_faults(mut self, plan: NetFaultPlan) -> Self {
        self.net_faults = plan.is_active().then_some(plan);
        self
    }

    /// Overrides the coordinator's [`Liveness`] policy: connect and
    /// barrier timeouts, heartbeat cadence, and the read timeout handed
    /// to thread-backed workers.
    #[must_use]
    pub fn with_liveness(mut self, liveness: Liveness) -> Self {
        self.liveness = liveness;
        self
    }

    /// Runs `algo` across the shards until every node halts.
    ///
    /// # Errors
    ///
    /// [`ShardError::Sim`] carries exactly the [`SimError`] a
    /// single-process run would return (round budget, crashes); the
    /// other variants report runtime failures the recovery path could
    /// not absorb.
    pub fn run(&self, algo: WireAlgo, max_rounds: u64) -> Result<RunResult<u64>, ShardError> {
        let n = self.graph.n();
        if n == 0 {
            return Ok(RunResult {
                outputs: Vec::new(),
                rounds: 0,
            });
        }
        let mut cluster = Cluster::start(self, algo)?;
        let result = self.drive(&mut cluster, algo, max_rounds);
        cluster.shutdown();
        result
    }

    #[allow(clippy::too_many_lines)]
    fn drive(
        &self,
        cluster: &mut Cluster,
        algo: WireAlgo,
        max_rounds: u64,
    ) -> Result<RunResult<u64>, ShardError> {
        let graph = self.graph;
        let n = graph.n();
        let offsets = graph.csr_offsets();
        let max_degree = graph.max_degree();
        let shard_count = cluster.ranges.len();

        // Scatter lists and pack universes, built once; per-round ghost
        // routing is then pure index arithmetic.
        let gplan = GhostPlan::build(graph, &cluster.ranges);

        // Registry mirroring exec.rs registration order exactly — the
        // emitted Round events must be indistinguishable.
        let mut registry = Registry::new();
        let c_live = registry.counter("live_nodes");
        let c_halted = registry.counter("halted");
        let c_msgs = registry.counter("messages_sent");
        let g_halted_frac = registry.gauge("halted_fraction");
        let inert = FaultPlan::default();
        let plan = self.faults.as_ref().unwrap_or(&inert);
        let drop_on = plan.message_drop_p > 0.0;
        let jitter_on = plan.round_jitter > 0;
        let crash_sched = plan.crash_schedule();
        let c_dropped = drop_on.then(|| registry.counter("messages_dropped"));
        let c_stalled = jitter_on.then(|| registry.counter("stalled_nodes"));
        let hub = self.probe.metrics();
        let h_round = hub.map(|h| h.histogram("shard.round_ns"));
        let h_barrier = hub.map(|h| h.histogram("shard.barrier_wait_ns"));

        // The implicit round-0 checkpoint: init states are computed
        // locally (init is pure), so recovery is possible before the
        // first periodic dump ever happens.
        let init_states: Vec<u64> = graph
            .vertices()
            .map(|v| {
                algo.init(&NodeCtx {
                    node: v,
                    uid: u64::from(v.0),
                    neighbors: graph.neighbors(v),
                    round: 0,
                    n,
                    max_degree,
                })
            })
            .collect();
        let seen0 = if drop_on {
            let mut seen = Vec::with_capacity(offsets[n]);
            for v in graph.vertices() {
                seen.extend(graph.neighbors(v).iter().map(|w| init_states[w.index()]));
            }
            seen
        } else {
            Vec::new()
        };
        let mut ckpt = Checkpoint {
            round: 0,
            states: init_states,
            live_bitmap: full_bitmap(n),
            seen: seen0,
            outputs: vec![None; n],
            crashed: 0,
            live_count: n,
        };
        self.persist_checkpoint(&ckpt)?;

        let mut alive = vec![true; n];
        let mut outputs: Vec<Option<u64>> = vec![None; n];
        let mut live_count = n;
        let mut crashed = 0usize;
        let mut rounds = 0u64;
        // Live owned nodes per shard, kept in lockstep with `alive`: a
        // shard at zero is idle and round trips skip it entirely.
        let ranges = cluster.ranges.clone();
        let owner = |v: u32| ranges.partition_point(|&(_, end)| end <= v);
        let count_live = |alive: &[bool]| -> Vec<usize> {
            ranges
                .iter()
                .map(|&(lo, hi)| (lo..hi).filter(|&v| alive[v as usize]).count())
                .collect()
        };
        let mut shard_live: Vec<usize> =
            ranges.iter().map(|&(lo, hi)| (hi - lo) as usize).collect();
        // Rounds already emitted to the probe. A restore rewinds
        // `rounds` but never `emitted`: replayed rounds recompute state
        // silently, so the stitched stream equals an uninterrupted one.
        let mut emitted = 0u64;
        let mut pending_ghosts: Vec<Vec<(u32, u64)>> = vec![Vec::new(); shard_count];
        let mut kills = self.kills.clone();
        // Scheduled wire faults fire once each, like chaos kills.
        let mut resets: Vec<(u64, u64)> = self
            .net_faults
            .as_ref()
            .map(|p| p.resets.clone())
            .unwrap_or_default();
        let mut hangs: Vec<(u64, u64)> = self
            .net_faults
            .as_ref()
            .map(|p| p.hangs.clone())
            .unwrap_or_default();

        while live_count > 0 {
            if rounds >= max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: max_rounds,
                    still_running: live_count,
                }
                .into());
            }
            while let Some(pos) = kills.iter().position(|k| k.after_round == rounds) {
                let kill = kills.remove(pos);
                cluster.kill_shard(kill.shard);
            }
            while let Some(pos) = resets.iter().position(|&(_, r)| r == rounds) {
                let (s, _) = resets.remove(pos);
                cluster.reset_shard(s as usize);
            }
            while let Some(pos) = hangs.iter().position(|&(_, r)| r == rounds) {
                let (s, _) = hangs.remove(pos);
                cluster.mute_shard(s as usize);
            }
            let r = rounds + 1;
            // Plan order drives event emission; the wire wants the list
            // sorted (crash application is order-independent).
            let crashes_now: Vec<u32> = crash_sched
                .get(&r)
                .map(|nodes| {
                    nodes
                        .iter()
                        .filter(|v| alive[v.index()])
                        .map(|v| v.0)
                        .collect()
                })
                .unwrap_or_default();
            let mut crashes_wire = crashes_now.clone();
            crashes_wire.sort_unstable();
            crashes_wire.dedup();
            let round_start = Instant::now();
            let active: Vec<bool> = shard_live.iter().map(|&c| c > 0).collect();
            let agg = match cluster.round_trip(
                r,
                &crashes_wire,
                &mut pending_ghosts,
                &gplan,
                &active,
                h_barrier.as_deref(),
            ) {
                Ok(agg) => agg,
                Err(TripFail::Shard(s)) => {
                    self.recover_and_report(cluster, s, &ckpt)?;
                    rounds = ckpt.round;
                    restore_volatile(
                        &ckpt,
                        &mut alive,
                        &mut outputs,
                        &mut live_count,
                        &mut crashed,
                    );
                    // A rewind can revive nodes on shards that had gone
                    // idle; recount liveness from the restored bitmap.
                    shard_live = count_live(&alive);
                    // The Restore carried every node's state, so the
                    // delta exchange restarts from a synchronized
                    // baseline with nothing pending.
                    pending_ghosts = vec![Vec::new(); shard_count];
                    continue;
                }
                Err(TripFail::Fatal(e)) => return Err(e),
            };

            let emitting = r > emitted;
            for &v in &crashes_now {
                alive[v as usize] = false;
                crashed += 1;
                live_count -= 1;
                shard_live[owner(v)] -= 1;
                if emitting {
                    self.probe.emit_with(|| Event::Fault {
                        scope: EXEC_SCOPE.to_string(),
                        round: r - 1,
                        kind: FaultKind::Crash,
                        node: Some(u64::from(v)),
                        count: 1,
                    });
                }
            }
            if emitting {
                c_live.set(live_count as i64);
            }
            for &(v, o) in &agg.halts {
                alive[v as usize] = false;
                outputs[v as usize] = Some(o);
                live_count -= 1;
                shard_live[owner(v)] -= 1;
            }
            pending_ghosts = agg.next_ghosts;
            if emitting {
                c_msgs.add(agg.msgs as i64);
                c_halted.add(agg.halts.len() as i64);
                if agg.dropped > 0 {
                    if let Some(c) = &c_dropped {
                        c.add(agg.dropped as i64);
                    }
                    self.probe.emit_with(|| Event::Fault {
                        scope: EXEC_SCOPE.to_string(),
                        round: r - 1,
                        kind: FaultKind::Drop,
                        node: None,
                        count: agg.dropped,
                    });
                }
                if agg.stalled > 0 {
                    if let Some(c) = &c_stalled {
                        c.add(agg.stalled as i64);
                    }
                    self.probe.emit_with(|| Event::Fault {
                        scope: EXEC_SCOPE.to_string(),
                        round: r - 1,
                        kind: FaultKind::Stall,
                        node: None,
                        count: agg.stalled,
                    });
                }
                g_halted_frac.set((n - live_count) as f64 / n as f64);
                registry.emit_round(&self.probe, EXEC_SCOPE, r - 1);
                emitted = r;
            }
            rounds = r;
            if let Some(h) = &h_round {
                h.observe(u64::try_from(round_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }

            if self.checkpoint_every > 0
                && r.is_multiple_of(self.checkpoint_every)
                && live_count > 0
            {
                match cluster.checkpoint_trip(r) {
                    Ok((states, live_bitmap, seen)) => {
                        ckpt = Checkpoint {
                            round: r,
                            states,
                            live_bitmap,
                            seen,
                            outputs: outputs.clone(),
                            crashed,
                            live_count,
                        };
                        self.persist_checkpoint(&ckpt)?;
                    }
                    Err(TripFail::Shard(s)) => {
                        self.recover_and_report(cluster, s, &ckpt)?;
                        rounds = ckpt.round;
                        restore_volatile(
                            &ckpt,
                            &mut alive,
                            &mut outputs,
                            &mut live_count,
                            &mut crashed,
                        );
                        shard_live = count_live(&alive);
                        pending_ghosts = vec![Vec::new(); shard_count];
                    }
                    Err(TripFail::Fatal(e)) => return Err(e),
                }
            }
        }

        if crashed > 0 {
            return Err(SimError::Crashed { crashed, rounds }.into());
        }
        Ok(RunResult {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("all nodes halted"))
                .collect(),
            rounds,
        })
    }

    /// Runs recovery for `failed` and surfaces every shard the cluster
    /// adopted along the way (respawn budget exhausted) as an
    /// [`Event::Degraded`] — the run continues with those ranges served
    /// in-process from the checkpoint instead of aborting.
    fn recover_and_report(
        &self,
        cluster: &mut Cluster,
        failed: usize,
        ckpt: &Checkpoint,
    ) -> Result<(), ShardError> {
        for s in cluster.recover(failed, ckpt)? {
            self.probe.emit_with(|| Event::Degraded {
                scope: "shard".to_string(),
                unit: s as u64,
                reason: format!(
                    "respawn budget of {} exhausted; range adopted in-process",
                    cluster.max_respawns
                ),
                rounds: ckpt.round,
            });
        }
        Ok(())
    }

    /// Writes `ckpt` into the checkpoint dir (atomic tmp + rename), if
    /// one is configured.
    fn persist_checkpoint(&self, ckpt: &Checkpoint) -> Result<(), ShardError> {
        let Some(dir) = &self.checkpoint_dir else {
            return Ok(());
        };
        std::fs::create_dir_all(dir)
            .map_err(|e| ShardError::Io(format!("cannot create checkpoint dir: {e}")))?;
        let name = format!("shard-checkpoint-{:04}.json", ckpt.round);
        let tmp = dir.join(format!(".{name}.tmp"));
        let path = dir.join(name);
        let json = serde::json::to_string(&ckpt.to_value());
        std::fs::write(&tmp, json + "\n")
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| ShardError::Io(format!("cannot write checkpoint {}: {e}", path.display())))
    }
}

fn full_bitmap(n: usize) -> Vec<u8> {
    let mut bm = vec![0u8; n.div_ceil(8)];
    for v in 0..n {
        bm[v / 8] |= 1 << (v % 8);
    }
    bm
}

fn restore_volatile(
    ckpt: &Checkpoint,
    alive: &mut [bool],
    outputs: &mut Vec<Option<u64>>,
    live_count: &mut usize,
    crashed: &mut usize,
) {
    for (v, a) in alive.iter_mut().enumerate() {
        *a = ckpt.live_bitmap[v / 8] & (1 << (v % 8)) != 0;
    }
    *outputs = ckpt.outputs.clone();
    *live_count = ckpt.live_count;
    *crashed = ckpt.crashed;
}

/// Checks a worker's opening frame: it must be a [`Frame::Hello`]
/// carrying exactly [`PROTO_VERSION`]. An old worker binary gets a
/// clear version-mismatch error instead of undecodable garbage later.
fn validate_hello(s: usize, hello: &Frame) -> Result<(), ShardError> {
    match hello {
        Frame::Hello { version } if *version == PROTO_VERSION => Ok(()),
        Frame::Hello { version } => Err(ShardError::Protocol(format!(
            "shard {s} speaks protocol {version}, expected {PROTO_VERSION} \
             (coordinator and worker binaries must match)"
        ))),
        other => Err(ShardError::Protocol(format!(
            "shard {s} opened with {other:?} instead of Hello"
        ))),
    }
}

/// The live worker fleet: listener, per-shard connections and hosting
/// handles, plus the cached per-shard `Init` frames that re-`Init` a
/// respawned worker without re-encoding the graph.
struct Cluster {
    listener: TcpListener,
    addr: String,
    conns: Vec<Option<FrameConn>>,
    handles: Vec<WorkerHandle>,
    respawns: Vec<usize>,
    ranges: Vec<(u32, u32)>,
    backend: WorkerBackend,
    /// Fully framed (length prefix included) `Init` bytes per shard,
    /// encoded once at startup and replayed verbatim on respawn.
    init_frames: Vec<Vec<u8>>,
    max_respawns: usize,
    meter: FrameMeter,
    liveness: Liveness,
    chaos: Option<NetFaultPlan>,
    /// Hang injection: replies from a muted shard are read and
    /// discarded, simulating a worker that is alive but wedged. Only the
    /// barrier deadline clears it (via kill + respawn).
    muted: Vec<bool>,
    /// Shards served in-process after exhausting their respawn budget
    /// (graceful degradation). `None` = still remote.
    adopted: Vec<Option<ShardState>>,
    /// Replies produced by adopted shards, drained in FIFO order —
    /// exactly the delivery order a connection would give.
    local_replies: Vec<VecDeque<Frame>>,
    /// When the coordinator last wrote to each shard; drives the idle
    /// heartbeat that keeps worker read timeouts from firing.
    last_send: Vec<Instant>,
    /// Per-connection counters of chaos-eligible frames (reset on every
    /// attach): the chaos plan keys on these, never on wall-clock-driven
    /// traffic like heartbeats, so decisions replay bit-identically.
    chaos_tx: Vec<u64>,
    chaos_rx: Vec<u64>,
    c_init_bytes: Option<MetricCounter>,
    c_ghost_sent: Option<MetricCounter>,
    c_ghost_suppressed: Option<MetricCounter>,
    c_adopted: Option<MetricCounter>,
}

impl Cluster {
    /// Binds the loopback listener, spawns one worker per non-empty
    /// partition range, and completes the Hello/Init handshake with
    /// each.
    fn start(exec: &ShardedExecutor, algo: WireAlgo) -> Result<Cluster, ShardError> {
        let graph = exec.graph;
        let all: Vec<NodeId> = graph.vertices().collect();
        let segs = segments_weighted(&all, exec.shards, graph.csr_offsets());
        let ranges: Vec<(u32, u32)> = segs
            .iter()
            .filter(|seg| !seg.is_empty())
            .map(|seg| (seg[0].0, seg[seg.len() - 1].0 + 1))
            .collect();
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| ShardError::Io(format!("cannot bind loopback listener: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ShardError::Io(format!("cannot read listener address: {e}")))?
            .to_string();
        listener
            .set_nonblocking(true)
            .map_err(|e| ShardError::Io(format!("cannot configure listener: {e}")))?;
        let meter = exec
            .probe
            .metrics()
            .map_or_else(FrameMeter::disabled, |hub| FrameMeter::new(hub));
        let algo_spec = algo.to_string();
        let faults_bytes = exec
            .faults
            .as_ref()
            .map(encode_fault_plan)
            .unwrap_or_default();
        let drop_on = exec.faults.as_ref().is_some_and(|p| p.message_drop_p > 0.0);
        // The full-graph payload is shared by every shard that picks
        // it; each shard takes its sub-topology instead when that
        // encodes smaller.
        let full_payload = encode_full(graph);
        let mut init_frames = Vec::with_capacity(ranges.len());
        for (s, &(lo, hi)) in ranges.iter().enumerate() {
            let sub_payload = encode_sub(graph, lo as usize, hi as usize, drop_on);
            let graph_payload = if sub_payload.len() < full_payload.len() {
                sub_payload
            } else {
                full_payload.clone()
            };
            let init = Frame::Init {
                shard: s as u32,
                shards: ranges.len() as u32,
                start: lo,
                end: hi,
                algo: algo_spec.clone(),
                faults: faults_bytes.clone(),
                graph: graph_payload,
            };
            let mut framed = Vec::new();
            // The cached bytes always open a fresh connection, so they
            // carry sequence 0 on every (re)spawn.
            frame_bytes(&init.encode(), 0, &mut framed)
                .map_err(|e| ShardError::Io(format!("shard {s} init frame: {e}")))?;
            init_frames.push(framed);
        }
        let counters = exec.probe.metrics().map(|h| {
            (
                h.counter("shard.init_bytes"),
                h.counter("shard.ghost_updates_sent"),
                h.counter("shard.ghost_suppressed"),
                h.counter("shard.adopted_ranges"),
            )
        });
        let (c_init_bytes, c_ghost_sent, c_ghost_suppressed, c_adopted) = match counters {
            Some((a, b, c, d)) => (Some(a), Some(b), Some(c), Some(d)),
            None => (None, None, None, None),
        };
        let shard_count = ranges.len();
        let mut cluster = Cluster {
            listener,
            addr,
            conns: (0..shard_count).map(|_| None).collect(),
            handles: (0..shard_count).map(|_| WorkerHandle::Thread).collect(),
            respawns: vec![0; shard_count],
            ranges,
            backend: exec.backend.clone(),
            init_frames,
            max_respawns: exec.max_respawns,
            meter,
            liveness: exec.liveness,
            chaos: exec.net_faults.clone(),
            muted: vec![false; shard_count],
            adopted: (0..shard_count).map(|_| None).collect(),
            local_replies: (0..shard_count).map(|_| VecDeque::new()).collect(),
            last_send: vec![Instant::now(); shard_count],
            chaos_tx: vec![0; shard_count],
            chaos_rx: vec![0; shard_count],
            c_init_bytes,
            c_ghost_sent,
            c_ghost_suppressed,
            c_adopted,
        };
        for s in 0..cluster.ranges.len() {
            cluster.handles[s] = cluster.spawn_worker()?;
            cluster.attach(s)?;
        }
        Ok(cluster)
    }

    fn spawn_worker(&self) -> Result<WorkerHandle, ShardError> {
        match &self.backend {
            WorkerBackend::Threads => {
                let addr = self.addr.clone();
                let read_timeout = self.liveness.worker_read_timeout;
                // Worker threads exit when their connection drops; the
                // handle is not joined (shutdown closes every socket).
                std::thread::spawn(move || {
                    let _ = super::worker::serve_connect_with(&addr, read_timeout);
                });
                Ok(WorkerHandle::Thread)
            }
            WorkerBackend::Custom(run) => {
                let addr = self.addr.clone();
                let run = Arc::clone(run);
                std::thread::spawn(move || run(addr));
                Ok(WorkerHandle::Thread)
            }
            WorkerBackend::Process { program, args } => std::process::Command::new(program)
                .args(args)
                .arg(&self.addr)
                .stdin(std::process::Stdio::null())
                .stdout(std::process::Stdio::null())
                .spawn()
                .map(WorkerHandle::Process)
                .map_err(|e| {
                    ShardError::Io(format!("cannot spawn worker {}: {e}", program.display()))
                }),
        }
    }

    /// Accepts the next incoming worker connection (bounded wait) and
    /// runs the Hello → Init → InitAck handshake for shard `s`, sending
    /// the cached pre-framed `Init` bytes.
    fn attach(&mut self, s: usize) -> Result<(), ShardError> {
        let timeout = self.liveness.connect_timeout;
        let deadline = Instant::now() + timeout;
        let stream: TcpStream = loop {
            match self.listener.accept() {
                Ok((stream, _)) => break stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(ShardError::Io(format!(
                            "worker for shard {s} did not connect within {timeout:?}"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(ShardError::Io(format!("accept failed: {e}"))),
            }
        };
        stream
            .set_nodelay(true)
            .map_err(|e| ShardError::Io(format!("cannot configure worker socket: {e}")))?;
        let mut conn = FrameConn::new(stream)
            .map_err(|e| ShardError::Io(format!("cannot configure worker socket: {e}")))?;
        let meter = self.meter.clone();
        // The whole handshake shares the connect deadline: a worker that
        // connects and then wedges mid-handshake is detected, not waited
        // on forever.
        let hello = conn
            .recv_deadline(&meter, Some(deadline))
            .and_then(|p| Frame::decode(&p))
            .map_err(|e| ShardError::Io(format!("shard {s} handshake failed: {e}")))?;
        validate_hello(s, &hello)?;
        conn.send_framed(&self.init_frames[s], &meter)
            .map_err(|e| ShardError::Io(format!("shard {s} init send failed: {e}")))?;
        if let Some(c) = &self.c_init_bytes {
            c.add(self.init_frames[s].len() as u64);
        }
        match conn
            .recv_deadline(&meter, Some(deadline))
            .and_then(|p| Frame::decode(&p))
        {
            Ok(Frame::InitAck { shard }) if shard as usize == s => {}
            Ok(Frame::Error { message }) => {
                return Err(ShardError::Protocol(format!(
                    "shard {s} init failed: {message}"
                )))
            }
            Ok(other) => {
                return Err(ShardError::Protocol(format!(
                    "shard {s} replied {other:?} instead of InitAck"
                )))
            }
            Err(e) => return Err(ShardError::Io(format!("shard {s} init ack failed: {e}"))),
        }
        self.conns[s] = Some(conn);
        // Fresh connection, fresh chaos/liveness state: the plan keys on
        // per-connection frame counters, and the worker just heard from
        // us (the Init frame).
        self.muted[s] = false;
        self.chaos_tx[s] = 0;
        self.chaos_rx[s] = 0;
        self.last_send[s] = Instant::now();
        Ok(())
    }

    /// Sends an encoded payload to shard `s` — through its connection
    /// (with any chaos the plan injects), or straight into in-process
    /// frame handling for an adopted shard.
    fn send_payload(&mut self, s: usize, payload: &[u8]) -> io::Result<()> {
        if self.adopted[s].is_some() {
            return self.process_local(s, payload);
        }
        let meter = self.meter.clone();
        let fault = self.next_tx_fault(s);
        let conn = self.conns[s]
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "shard disconnected"))?;
        let sent = conn.send_with(payload, &meter, &fault);
        self.last_send[s] = Instant::now();
        sent
    }

    /// Chaos decision for the next coordinator→worker frame on shard
    /// `s`'s connection, keyed by the per-connection counter of
    /// chaos-eligible frames. Heartbeats and the cached `Init` bytes
    /// never pass through here, so wall-clock-driven keepalives cannot
    /// shift the decision stream.
    fn next_tx_fault(&mut self, s: usize) -> TxFault {
        let Some(plan) = &self.chaos else {
            return TxFault::default();
        };
        let f = self.chaos_tx[s];
        self.chaos_tx[s] += 1;
        TxFault {
            delay: plan.delays(s, NetDir::Send, f).then_some(NET_DELAY),
            dup: plan.dups(s, NetDir::Send, f),
            corrupt: plan.corrupts(s, NetDir::Send, f),
        }
    }

    /// Chaos decision for a frame received from shard `s`: an injected
    /// receive delay stalls the coordinator briefly; injected receive
    /// corruption discards the frame and fails the shard — exactly what
    /// a corrupted wire frame does via the checksum.
    fn rx_fault(&mut self, s: usize) -> Option<TripFail> {
        let plan = self.chaos.as_ref()?;
        let f = self.chaos_rx[s];
        self.chaos_rx[s] += 1;
        if plan.delays(s, NetDir::Recv, f) {
            std::thread::sleep(NET_DELAY);
        }
        plan.corrupts(s, NetDir::Recv, f)
            .then_some(TripFail::Shard(s))
    }

    /// Serves one frame of an adopted shard's protocol in-process,
    /// queueing the reply (when the frame warrants one) in the order a
    /// connection would deliver it.
    fn process_local(&mut self, s: usize, payload: &[u8]) -> io::Result<()> {
        let frame = Frame::decode(payload)?;
        let state = self.adopted[s].as_mut().expect("adopted shard has state");
        let reply = match frame {
            Frame::RoundGo {
                round,
                crashes,
                ghosts,
            } => state.run_round(round, &crashes, &ghosts)?,
            Frame::DumpReq { round } => state.dump(round),
            Frame::Restore {
                round,
                states,
                live,
                seen,
            } => state.restore(round, states, &live, seen)?,
            Frame::Shutdown | Frame::Heartbeat => return Ok(()),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("adopted shard {s} cannot serve {other:?}"),
                ))
            }
        };
        self.local_replies[s].push_back(reply);
        Ok(())
    }

    /// Receives one frame from shard `s` (bounded wait), or pops the
    /// next queued in-process reply for an adopted shard.
    fn recv(&mut self, s: usize, deadline: Option<Instant>) -> io::Result<Frame> {
        if self.adopted[s].is_some() {
            return self.local_replies[s].pop_front().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "adopted shard has no queued reply",
                )
            });
        }
        let meter = self.meter.clone();
        let conn = self.conns[s]
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "shard disconnected"))?;
        Frame::decode(&conn.recv_deadline(&meter, deadline)?)
    }

    /// Sends a `Heartbeat` to every connected shard the coordinator has
    /// not written to for `heartbeat_every`, so idle-elided shards and
    /// shards behind a long barrier never trip their read timeout.
    /// Heartbeats bypass both the meter and the chaos plan: they are
    /// wall-clock-driven, and must perturb neither the deterministic
    /// byte counters nor the chaos decision stream.
    fn heartbeat_idle(&mut self) {
        let quiet = self.liveness.heartbeat_every;
        let payload = Frame::Heartbeat.encode();
        for s in 0..self.ranges.len() {
            if self.adopted[s].is_some() || self.last_send[s].elapsed() < quiet {
                continue;
            }
            if let Some(conn) = self.conns[s].as_mut() {
                // A failed heartbeat is not an error here: the next real
                // exchange detects the corpse and recovers it.
                let _ = conn.send(&payload, &FrameMeter::disabled());
                self.last_send[s] = Instant::now();
            }
        }
    }

    /// Drains one reply frame from every shard with `want[s]` set, by
    /// readiness-polling all wanted connections — a shard that answers
    /// late never blocks reading the ones that answered early. Unwanted
    /// shards (idle, not kicked this trip) stay `None`. Adopted shards
    /// answer from their in-process reply queue.
    ///
    /// The wait is bounded by `Liveness::barrier_timeout`: past it, the
    /// first still-unanswered shard is declared hung (alive but wedged —
    /// a dead one would have failed its connection already) and handed
    /// to recovery like any other failure.
    fn collect_replies(&mut self, want: &[bool]) -> Result<Vec<Option<Frame>>, TripFail> {
        let meter = self.meter.clone();
        let shard_count = self.ranges.len();
        let mut results: Vec<Option<Frame>> = (0..shard_count).map(|_| None).collect();
        let target = want.iter().filter(|&&w| w).count();
        let deadline = self.liveness.barrier_timeout.map(|t| Instant::now() + t);
        let mut got = 0usize;
        let mut spins = 0u32;
        while got < target {
            let mut progress = false;
            for s in 0..shard_count {
                if !want[s] || results[s].is_some() {
                    continue;
                }
                if self.adopted[s].is_some() {
                    if let Some(frame) = self.local_replies[s].pop_front() {
                        results[s] = Some(frame);
                        got += 1;
                        progress = true;
                    }
                    continue;
                }
                let Some(conn) = self.conns[s].as_mut() else {
                    return Err(TripFail::Shard(s));
                };
                match conn.poll(&meter) {
                    Ok(Some(payload)) => {
                        if self.muted[s] {
                            // Injected hang: the reply arrived, but the
                            // coordinator acts as if it never did; only
                            // the barrier deadline clears this state.
                            continue;
                        }
                        if let Some(fail) = self.rx_fault(s) {
                            return Err(fail);
                        }
                        match Frame::decode(&payload) {
                            Ok(frame) => {
                                results[s] = Some(frame);
                                got += 1;
                                progress = true;
                            }
                            // Undecodable bytes mean the shard is gone or
                            // corrupt either way; recover it.
                            Err(_) => return Err(TripFail::Shard(s)),
                        }
                    }
                    Ok(None) => {}
                    // A muted shard's transport errors are swallowed too:
                    // the hang simulation ends at the deadline, not early.
                    Err(_) if self.muted[s] => {}
                    Err(_) => return Err(TripFail::Shard(s)),
                }
            }
            if progress {
                spins = 0;
            } else {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        let hung = (0..shard_count)
                            .find(|&s| want[s] && results[s].is_none())
                            .expect("an unanswered shard exists while under target");
                        return Err(TripFail::Shard(hung));
                    }
                }
                self.heartbeat_idle();
                // Single-core friendliness: let worker threads run, and
                // back off (bounded, jittered) once the barrier is
                // clearly not ready.
                wire::backoff(&mut spins);
            }
        }
        Ok(results)
    }

    /// One synchronous round: kick every **active** shard with its
    /// packed ghost deltas, then hold the barrier until each kicked
    /// shard's `RoundDone` arrives, merging in shard order.
    ///
    /// An idle shard — every owned node halted or crashed — is elided
    /// entirely: no `RoundGo`, no `RoundDone`, zero wire bytes. That is
    /// semantically free because dead nodes never step and contribute
    /// zero to every aggregate, and it is what keeps the long
    /// few-live-nodes tail of a coloring run cheap: a round's cost
    /// tracks the shards that still have work, not the fleet size.
    fn round_trip(
        &mut self,
        round: u64,
        crashes: &[u32],
        pending: &mut [Vec<(u32, u64)>],
        gplan: &GhostPlan,
        active: &[bool],
        h_barrier: Option<&telemetry::Histogram>,
    ) -> Result<RoundAgg, TripFail> {
        let shard_count = self.ranges.len();
        let mut ghost_sent = 0u64;
        for s in 0..shard_count {
            if !active[s] {
                // Updates routed at an idle shard are dropped, not
                // sent: nothing there will ever read a ghost again.
                pending[s].clear();
                continue;
            }
            let updates = std::mem::take(&mut pending[s]);
            ghost_sent += updates.len() as u64;
            let go = Frame::RoundGo {
                round,
                crashes: crashes.to_vec(),
                ghosts: GhostUpdates::pack(updates, &gplan.ghost_ids[s]),
            };
            if self.send_payload(s, &go.encode()).is_err() {
                return Err(TripFail::Shard(s));
            }
        }
        if let Some(c) = &self.c_ghost_sent {
            c.add(ghost_sent);
        }
        let barrier_start = Instant::now();
        let replies = self.collect_replies(active)?;
        let mut agg = RoundAgg {
            next_ghosts: vec![Vec::new(); shard_count],
            ..RoundAgg::default()
        };
        let mut suppressed_total = 0u64;
        for (s, frame) in replies.into_iter().enumerate() {
            let Some(frame) = frame else {
                continue; // idle shard, not kicked
            };
            match frame {
                Frame::RoundDone {
                    round: echo,
                    msgs,
                    dropped,
                    stalled,
                    suppressed,
                    halts,
                    boundary,
                } => {
                    if echo != round {
                        return Err(TripFail::Fatal(ShardError::Protocol(format!(
                            "shard {s} answered round {echo} during round {round}"
                        ))));
                    }
                    agg.msgs += msgs;
                    agg.dropped += dropped;
                    agg.stalled += stalled;
                    suppressed_total += suppressed;
                    agg.halts.extend(halts);
                    // Scatter the changed boundary states to every shard
                    // reading them; a malformed delta is treated like a
                    // dead shard (respawn + restore resynchronizes).
                    let Ok(resolved) = boundary.resolve(&gplan.boundary_ids[s]) else {
                        return Err(TripFail::Shard(s));
                    };
                    for (idx, state) in resolved {
                        let node = gplan.boundary_ids[s][idx];
                        for &t in &gplan.readers[s][idx] {
                            agg.next_ghosts[t].push((node, state));
                        }
                    }
                }
                Frame::Error { message } => {
                    return Err(TripFail::Fatal(ShardError::Protocol(format!(
                        "shard {s} reported: {message}"
                    ))))
                }
                other => {
                    return Err(TripFail::Fatal(ShardError::Protocol(format!(
                        "shard {s} sent {other:?} instead of RoundDone"
                    ))))
                }
            }
        }
        if let Some(c) = &self.c_ghost_suppressed {
            c.add(suppressed_total);
        }
        if let Some(h) = h_barrier {
            h.observe(u64::try_from(barrier_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        Ok(agg)
    }

    /// Collects a full-cluster dump after round `round`, returning the
    /// assembled `(states, live bitmap, drop cache)`.
    #[allow(clippy::type_complexity)]
    fn checkpoint_trip(&mut self, round: u64) -> Result<(Vec<u64>, Vec<u8>, Vec<u64>), TripFail> {
        // Checkpoints poll every shard, idle ones included: an idle
        // shard's states are still part of the snapshot. The request
        // names the round because an idle shard, never kicked, has no
        // local round clock to echo.
        let dump_req = Frame::DumpReq { round }.encode();
        for s in 0..self.ranges.len() {
            if self.send_payload(s, &dump_req).is_err() {
                return Err(TripFail::Shard(s));
            }
        }
        let n = self.ranges.last().map_or(0, |&(_, end)| end as usize);
        let mut states = Vec::with_capacity(n);
        let mut bitmap = vec![0u8; n.div_ceil(8)];
        let mut seen = Vec::new();
        let all = vec![true; self.ranges.len()];
        for (s, frame) in self.collect_replies(&all)?.into_iter().enumerate() {
            let Some(frame) = frame else {
                continue;
            };
            match frame {
                Frame::Dump {
                    round: echo,
                    states: shard_states,
                    live,
                    seen: shard_seen,
                } => {
                    if echo != round {
                        return Err(TripFail::Fatal(ShardError::Protocol(format!(
                            "shard {s} dumped round {echo} during checkpoint of round {round}"
                        ))));
                    }
                    states.extend(shard_states);
                    for v in live {
                        bitmap[v as usize / 8] |= 1 << (v as usize % 8);
                    }
                    seen.extend(shard_seen);
                }
                other => {
                    return Err(TripFail::Fatal(ShardError::Protocol(format!(
                        "shard {s} sent {other:?} instead of Dump"
                    ))))
                }
            }
        }
        Ok((states, bitmap, seen))
    }

    /// Kills one shard at the transport/process level (the chaos hook):
    /// SIGKILL for process workers, a socket shutdown for thread
    /// workers. The next round trip will detect the corpse and recover.
    /// A no-op for adopted shards — there is nothing left to kill.
    fn kill_shard(&mut self, s: usize) {
        if s >= self.ranges.len() || self.adopted[s].is_some() {
            return;
        }
        self.muted[s] = false;
        if let WorkerHandle::Process(child) = &mut self.handles[s] {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(conn) = &self.conns[s] {
            conn.shutdown();
        }
        self.conns[s] = None;
    }

    /// Injected connection reset: drops shard `s`'s socket cold without
    /// touching the worker or the connection slot — the next frame
    /// exchange fails and drives the ordinary recovery path, exactly
    /// like a mid-run network partition.
    fn reset_shard(&mut self, s: usize) {
        if s >= self.ranges.len() || self.adopted[s].is_some() {
            return;
        }
        if let Some(conn) = &self.conns[s] {
            conn.shutdown();
        }
    }

    /// Injected hang: the worker stays alive and keeps answering, but
    /// the coordinator discards everything it says until the barrier
    /// deadline declares it hung and recovery respawns it.
    fn mute_shard(&mut self, s: usize) {
        if s < self.ranges.len() && self.adopted[s].is_none() {
            self.muted[s] = true;
        }
    }

    /// Respawns shard `s` and rewinds the whole cluster to `ckpt`,
    /// retrying (within the per-shard respawn budget) if more shards
    /// fail during the respawn handshake or the restore itself. A shard
    /// that exhausts its budget is *adopted* instead of failing the run:
    /// the coordinator rebuilds its state in-process from the cached
    /// `Init` frame and serves its range itself from then on. Returns
    /// the shards this recovery adopted.
    fn recover(&mut self, failed: usize, ckpt: &Checkpoint) -> Result<Vec<usize>, ShardError> {
        let mut adopted_now = Vec::new();
        let mut pending = vec![failed];
        // Shards that already acked *this* recovery's restore. A shard
        // must never be sent the same `Restore` twice: the duplicate ack
        // would linger in its connection and surface later where the
        // round loop expects a `RoundDone`.
        let mut restored = vec![false; self.ranges.len()];
        loop {
            while let Some(s) = pending.pop() {
                if self.adopted[s].is_some() {
                    // In-process handling cannot die of transport
                    // failures; reaching here is a logic error.
                    return Err(ShardError::Protocol(format!(
                        "adopted shard {s} failed while served in-process"
                    )));
                }
                restored[s] = false;
                self.respawns[s] += 1;
                if self.respawns[s] > self.max_respawns {
                    self.adopt(s)?;
                    adopted_now.push(s);
                    continue;
                }
                self.kill_shard(s);
                // A worker that dies mid-handshake (or never connects)
                // burns one respawn and is retried, never hung on.
                let attached = self.spawn_worker().and_then(|handle| {
                    self.handles[s] = handle;
                    self.attach(s)
                });
                if attached.is_err() {
                    pending.push(s);
                }
            }
            match self.restore_all(ckpt, &mut restored) {
                Ok(()) => return Ok(adopted_now),
                Err(TripFail::Shard(s)) => pending.push(s),
                Err(TripFail::Fatal(e)) => return Err(e),
            }
        }
    }

    /// Graceful degradation: rebuilds shard `s`'s worker state from the
    /// cached pre-framed `Init` bytes and marks the shard adopted. From
    /// here on `send_payload`/`collect_replies` route its frames through
    /// [`ShardState`] directly — no socket, no process, no respawns.
    fn adopt(&mut self, s: usize) -> Result<(), ShardError> {
        self.kill_shard(s);
        // The cached bytes are a full v3 frame: length prefix, sequence
        // varint, 4 checksum bytes, then the Init payload.
        let framed = &self.init_frames[s];
        let mut d = Dec::new(framed);
        let init = d
            .u64()
            .and_then(|_| d.u64())
            .map(|_| framed.len() - d.remaining() + 4)
            .and_then(|skip| Frame::decode(&framed[skip..]))
            .map_err(|e| {
                ShardError::Protocol(format!("shard {s} cached init frame unreadable: {e}"))
            })?;
        let Frame::Init {
            start,
            end,
            algo,
            faults,
            graph,
            ..
        } = init
        else {
            return Err(ShardError::Protocol(format!(
                "shard {s} cached init decoded to {init:?}"
            )));
        };
        let state = ShardState::build(start, end, &algo, &faults, &graph)
            .map_err(|e| ShardError::Protocol(format!("shard {s} adoption failed: {e}")))?;
        self.adopted[s] = Some(state);
        self.local_replies[s].clear();
        if let Some(c) = &self.c_adopted {
            c.incr();
        }
        Ok(())
    }

    /// Sends a `Restore` and waits for its `RestoreAck` shard by shard,
    /// discarding any stale pre-failure frames still in flight (TCP is
    /// FIFO per connection, so everything before the ack is stale).
    /// Shards already marked in `restored` are skipped: a second
    /// `Restore` for the same checkpoint would draw a second ack that
    /// later reads as a bogus reply to `RoundGo`. Send and ack are kept
    /// in one loop for the same reason — if a later shard fails after an
    /// earlier one was merely *sent* to, the retry could not tell
    /// "restored" from "restore in flight".
    fn restore_all(&mut self, ckpt: &Checkpoint, restored: &mut [bool]) -> Result<(), TripFail> {
        // Encode once; the same payload goes to every shard.
        let payload = Frame::Restore {
            round: ckpt.round,
            states: ckpt.states.clone(),
            live: ckpt.live_bitmap.clone(),
            seen: ckpt.seen.clone(),
        }
        .encode();
        #[allow(clippy::needless_range_loop)] // `restored[s] = true` below needs the index
        for s in 0..self.ranges.len() {
            if restored[s] {
                continue;
            }
            if self.send_payload(s, &payload).is_err() {
                return Err(TripFail::Shard(s));
            }
            // Each ack gets its own bounded wait — restoring is
            // handshake-like traffic, so the connect timeout governs it.
            let deadline = Some(Instant::now() + self.liveness.connect_timeout);
            loop {
                match self.recv(s, deadline) {
                    Ok(Frame::RestoreAck { round }) if round == ckpt.round => {
                        restored[s] = true;
                        break;
                    }
                    Ok(Frame::RoundDone { .. } | Frame::Dump { .. } | Frame::RestoreAck { .. }) => {
                        // Stale answer from before the failure; discard.
                    }
                    Ok(Frame::Error { message }) => {
                        return Err(TripFail::Fatal(ShardError::Protocol(format!(
                            "shard {s} failed to restore: {message}"
                        ))))
                    }
                    Ok(other) => {
                        return Err(TripFail::Fatal(ShardError::Protocol(format!(
                            "shard {s} sent {other:?} during restore"
                        ))))
                    }
                    Err(_) => return Err(TripFail::Shard(s)),
                }
            }
        }
        Ok(())
    }

    /// Best-effort clean teardown: a `Shutdown` frame per live shard,
    /// then reap process workers (kill any that ignore the frame).
    fn shutdown(&mut self) {
        let payload = Frame::Shutdown.encode();
        for s in 0..self.ranges.len() {
            let _ = self.send_payload(s, &payload);
        }
        self.conns.iter_mut().for_each(|c| *c = None);
        for handle in &mut self.handles {
            if let WorkerHandle::Process(child) = handle {
                let deadline = Instant::now() + Duration::from_secs(5);
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_mismatch_is_a_clear_protocol_error() {
        validate_hello(
            3,
            &Frame::Hello {
                version: PROTO_VERSION,
            },
        )
        .unwrap();
        let err = validate_hello(3, &Frame::Hello { version: 1 }).unwrap_err();
        match err {
            ShardError::Protocol(msg) => {
                assert!(msg.contains("protocol 1"), "{msg}");
                assert!(msg.contains(&format!("expected {PROTO_VERSION}")), "{msg}");
            }
            other => panic!("expected Protocol error, got {other:?}"),
        }
        assert!(validate_hello(0, &Frame::Shutdown).is_err());
    }
}
