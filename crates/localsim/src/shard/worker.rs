//! The shard worker: owns a contiguous vertex range and serves the
//! coordinator's round protocol over one TCP connection.
//!
//! A worker is deliberately dumb: it holds no round counter of its own
//! and never emits telemetry. The coordinator's frames carry the round
//! clock ([`Frame::RoundGo`]) and the worker answers each with exactly
//! one [`Frame::RoundDone`] — which makes the worker trivially
//! restartable: a respawned worker is indistinguishable from a fresh one
//! once [`Frame::Init`] + [`Frame::Restore`] have replayed its state.
//!
//! The stepping loop below mirrors `exec.rs`'s sequential fault arm
//! node-for-node (stall check, per-port drop cache, gather, step,
//! halt-freeze), restricted to the owned range; the equivalence suite in
//! `tests/shard.rs` pins that the two stay bit-identical.

use std::io;
use std::net::TcpStream;

use graphgen::{Graph, NodeId};

use super::algo::WireAlgo;
use super::proto::{Frame, PROTO_VERSION};
use super::wire::{read_frame, write_frame, FrameMeter};
use crate::exec::{LocalAlgorithm, NodeCtx, Transition};
use crate::faults::FaultPlan;

/// Connects to a coordinator at `addr` and serves rounds until a
/// [`Frame::Shutdown`] arrives or the connection drops.
///
/// # Errors
///
/// Returns any transport or protocol error; a killed coordinator
/// surfaces as an I/O error here, which callers (the `shard-serve` CLI,
/// the thread backend) treat as a normal exit path.
pub fn serve_connect(addr: &str) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    serve(stream)
}

/// Serves the worker protocol over an established connection.
///
/// # Errors
///
/// Returns transport errors and protocol violations (bad frame order,
/// undecodable payloads). State-construction failures (bad graph text,
/// unknown algorithm spec) are also reported to the coordinator as a
/// [`Frame::Error`] before returning.
pub fn serve(mut stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let meter = FrameMeter::disabled();
    write_frame(
        &mut stream,
        &Frame::Hello {
            version: PROTO_VERSION,
        }
        .encode(),
        &meter,
    )?;
    let init = Frame::decode(&read_frame(&mut stream, &meter)?)?;
    let Frame::Init {
        shard,
        start,
        end,
        algo,
        faults,
        graph,
        ..
    } = init
    else {
        return Err(protocol(format!("expected Init, got {init:?}")));
    };
    let mut state = match ShardState::build(start, end, &algo, &faults, &graph) {
        Ok(s) => s,
        Err(msg) => {
            let _ = write_frame(
                &mut stream,
                &Frame::Error {
                    message: msg.clone(),
                }
                .encode(),
                &meter,
            );
            return Err(protocol(msg));
        }
    };
    write_frame(&mut stream, &Frame::InitAck { shard }.encode(), &meter)?;

    loop {
        let frame = Frame::decode(&read_frame(&mut stream, &meter)?)?;
        let reply = match frame {
            Frame::RoundGo {
                round,
                crashes,
                ghosts,
            } => state.run_round(round, &crashes, &ghosts),
            Frame::DumpReq => state.dump(),
            Frame::Restore {
                round,
                states,
                live,
                seen,
            } => state.restore(round, states, &live, seen),
            Frame::Shutdown => return Ok(()),
            other => return Err(protocol(format!("unexpected frame {other:?}"))),
        };
        write_frame(&mut stream, &reply.encode(), &meter)?;
    }
}

fn protocol(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// One shard's executor state: the full (static) topology, the full
/// state vector (authoritative on `start..end`, ghost copies elsewhere),
/// and the owned slices of the live worklist and drop cache.
struct ShardState {
    graph: Graph,
    algo: WireAlgo,
    plan: FaultPlan,
    start: usize,
    end: usize,
    /// States of all `n` nodes as of the last completed round. Entries
    /// outside `start..end` are ghosts, updated only by `RoundGo`.
    cur: Vec<u64>,
    /// Write buffer for the owned range (`end - start` entries).
    nxt: Vec<u64>,
    /// Owned nodes still live, ascending.
    live: Vec<NodeId>,
    /// Per-directed-port "last heard" drop cache, full length but only
    /// the owned port range `offsets[start]..offsets[end]` is touched.
    seen: Vec<u64>,
    /// Owned nodes with at least one neighbor outside the owned range.
    boundary: Vec<bool>,
    /// Last completed round, echoed into `Dump`.
    last_round: u64,
    drop_on: bool,
    jitter_on: bool,
}

impl ShardState {
    fn build(
        start: u32,
        end: u32,
        algo: &str,
        faults: &str,
        graph_text: &str,
    ) -> Result<ShardState, String> {
        let graph = graphgen::io::parse_edge_list(graph_text)
            .map_err(|e| format!("shard init: bad graph: {e}"))?;
        let algo: WireAlgo = algo
            .parse()
            .map_err(|e| format!("shard init: bad algorithm spec: {e}"))?;
        let plan: FaultPlan = if faults.is_empty() {
            FaultPlan::default()
        } else {
            serde::json::from_str(faults).map_err(|e| format!("shard init: bad fault plan: {e}"))?
        };
        let (start, end) = (start as usize, end as usize);
        let n = graph.n();
        if start > end || end > n {
            return Err(format!("shard init: range {start}..{end} outside 0..{n}"));
        }
        // Init states are a pure function of the topology, so every
        // worker computes the full vector locally — no round-0 exchange.
        let cur: Vec<u64> = graph
            .vertices()
            .map(|v| algo.init(&ctx(&graph, v, 0)))
            .collect();
        let nxt = cur[start..end].to_vec();
        let drop_on = plan.message_drop_p > 0.0;
        let offsets = graph.csr_offsets();
        // Seed the owned port range from the init states (the setup
        // exchange is reliable), exactly like the single-process seeding.
        let mut seen = Vec::new();
        if drop_on {
            seen = vec![0; offsets[n]];
            for v in graph.vertices().skip(start).take(end - start) {
                let base = offsets[v.index()];
                for (p, w) in graph.neighbors(v).iter().enumerate() {
                    seen[base + p] = cur[w.index()];
                }
            }
        }
        let boundary: Vec<bool> = (start..end)
            .map(|v| {
                graph
                    .neighbors(NodeId(v as u32))
                    .iter()
                    .any(|w| w.index() < start || w.index() >= end)
            })
            .collect();
        let jitter_on = plan.round_jitter > 0;
        Ok(ShardState {
            graph,
            algo,
            plan,
            start,
            end,
            cur,
            nxt,
            live: (start..end).map(|v| NodeId(v as u32)).collect(),
            seen,
            boundary,
            last_round: 0,
            drop_on,
            jitter_on,
        })
    }

    fn run_round(&mut self, round: u64, crashes: &[u32], ghosts: &[(u32, u64)]) -> Frame {
        for &(v, s) in ghosts {
            self.cur[v as usize] = s;
        }
        // Crashes freeze at the start of the round, before any step.
        for &v in crashes {
            let v = NodeId(v);
            if v.index() < self.start || v.index() >= self.end {
                continue;
            }
            if let Ok(pos) = self.live.binary_search(&v) {
                self.live.remove(pos);
                self.nxt[v.index() - self.start] = self.cur[v.index()];
            }
        }
        let offsets = self.graph.csr_offsets();
        let n = self.graph.n();
        let max_degree = self.graph.max_degree();
        let mut msgs = 0u64;
        let mut dropped = 0u64;
        let mut stalled = 0u64;
        let mut halts: Vec<(u32, u64)> = Vec::new();
        let mut boundary_out: Vec<(u32, u64)> = Vec::new();
        let mut nbr_buf: Vec<u64> = Vec::with_capacity(max_degree);
        let mut kept = 0usize;
        for i in 0..self.live.len() {
            let v = self.live[i];
            let vi = v.index();
            if self.jitter_on && self.plan.stalls(v, round) {
                // Stalled: skip the step, keep the state, stay live.
                self.nxt[vi - self.start] = self.cur[vi];
                stalled += 1;
                self.live[kept] = v;
                kept += 1;
                continue;
            }
            nbr_buf.clear();
            if self.drop_on {
                let base = offsets[vi];
                for (p, w) in self.graph.neighbors(v).iter().enumerate() {
                    let slot = base + p;
                    if self.plan.drops_message(round, slot) {
                        dropped += 1;
                    } else {
                        self.seen[slot] = self.cur[w.index()];
                    }
                }
                let deg = self.graph.neighbors(v).len();
                nbr_buf.extend_from_slice(&self.seen[base..base + deg]);
                msgs += deg as u64;
            } else {
                nbr_buf.extend(self.graph.neighbors(v).iter().map(|w| self.cur[w.index()]));
                msgs += nbr_buf.len() as u64;
            }
            let ctx = NodeCtx {
                node: v,
                uid: u64::from(v.0),
                neighbors: self.graph.neighbors(v),
                round,
                n,
                max_degree,
            };
            match self.algo.step(&ctx, &self.cur[vi], &nbr_buf) {
                Transition::Continue(s) => {
                    self.nxt[vi - self.start] = s;
                    if self.boundary[vi - self.start] {
                        boundary_out.push((v.0, s));
                    }
                    self.live[kept] = v;
                    kept += 1;
                }
                Transition::Halt(o) => {
                    halts.push((v.0, o));
                    // Freeze the pre-round state, like a halted node in
                    // the single-process executor; neighbors already hold
                    // this value, so no boundary update is needed.
                    self.nxt[vi - self.start] = self.cur[vi];
                }
            }
        }
        self.live.truncate(kept);
        self.cur[self.start..self.end].copy_from_slice(&self.nxt);
        self.last_round = round;
        Frame::RoundDone {
            round,
            msgs,
            dropped,
            stalled,
            halts,
            boundary: boundary_out,
        }
    }

    fn dump(&self) -> Frame {
        let offsets = self.graph.csr_offsets();
        let seen = if self.drop_on {
            self.seen[offsets[self.start]..offsets[self.end]].to_vec()
        } else {
            Vec::new()
        };
        Frame::Dump {
            round: self.last_round,
            states: self.cur[self.start..self.end].to_vec(),
            live: self.live.iter().map(|v| v.0).collect(),
            seen,
        }
    }

    fn restore(&mut self, round: u64, states: Vec<u64>, live: &[u8], seen: Vec<u64>) -> Frame {
        self.cur = states;
        self.nxt.copy_from_slice(&self.cur[self.start..self.end]);
        self.live = (self.start..self.end)
            .filter(|&v| live.get(v / 8).is_some_and(|b| b & (1 << (v % 8)) != 0))
            .map(|v| NodeId(v as u32))
            .collect();
        if self.drop_on {
            self.seen = seen;
        }
        self.last_round = round;
        Frame::RestoreAck { round }
    }
}

/// Node context for init (round 0) with default uids.
fn ctx<'a>(graph: &'a Graph, v: NodeId, round: u64) -> NodeCtx<'a> {
    NodeCtx {
        node: v,
        uid: u64::from(v.0),
        neighbors: graph.neighbors(v),
        round,
        n: graph.n(),
        max_degree: graph.max_degree(),
    }
}
