//! The shard worker: owns a contiguous vertex range and serves the
//! coordinator's round protocol over one TCP connection.
//!
//! A worker is deliberately dumb: it holds no round counter of its own
//! and never emits telemetry. The coordinator's frames carry the round
//! clock ([`Frame::RoundGo`]) and the worker answers each with exactly
//! one [`Frame::RoundDone`] — which makes the worker trivially
//! restartable: a respawned worker is indistinguishable from a fresh one
//! once [`Frame::Init`] + [`Frame::Restore`] have replayed its state
//! (`Restore` carries every node's state, so no ghost delta survives a
//! restart).
//!
//! The stepping loop below mirrors `exec.rs`'s sequential fault arm
//! node-for-node (stall check, per-port drop cache, gather, step,
//! halt-freeze), restricted to the owned range; the equivalence suite in
//! `tests/shard.rs` pins that the two stay bit-identical. On the wire
//! the worker is a delta endpoint: it only reports boundary states that
//! *changed* this round (counting the rest into `suppressed`) and only
//! receives ghost states that changed on their owning shard.

use std::io::{self, BufReader};
use std::net::TcpStream;
use std::time::Duration;

use graphgen::NodeId;

use super::algo::WireAlgo;
use super::proto::{decode_fault_plan, Frame, GhostUpdates, PROTO_VERSION};
use super::topology::Topology;
use super::wire::{read_frame, write_frame, write_frame_buf, FrameMeter, FrameSeq, MAX_FRAME};
use crate::exec::{LocalAlgorithm, NodeCtx, Transition};
use crate::faults::FaultPlan;

/// Default worker read timeout: a coordinator that goes silent this
/// long is presumed dead, and the worker exits instead of leaking.
/// Generous because an idle worker normally hears a `Heartbeat` every
/// couple of seconds (see `netfault::Liveness::heartbeat_every`).
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(60);

/// Connects to a coordinator at `addr` and serves rounds until a
/// [`Frame::Shutdown`] arrives or the connection drops, with the
/// default read timeout.
///
/// # Errors
///
/// Returns any transport or protocol error; a killed coordinator
/// surfaces as an I/O error here, which callers (the `shard-serve` CLI,
/// the thread backend) treat as a normal exit path.
pub fn serve_connect(addr: &str) -> io::Result<()> {
    serve_connect_with(addr, DEFAULT_READ_TIMEOUT)
}

/// [`serve_connect`] with an explicit read timeout
/// (`Duration::ZERO` disables it and restores the block-forever
/// pre-v3 behavior).
///
/// # Errors
///
/// As [`serve_connect`].
pub fn serve_connect_with(addr: &str, read_timeout: Duration) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    serve_with(stream, read_timeout)
}

/// Serves the worker protocol over an established connection with the
/// default read timeout.
///
/// # Errors
///
/// Returns transport errors and protocol violations (bad frame order,
/// undecodable payloads). State-construction failures (bad graph
/// payload, unknown algorithm spec) are also reported to the
/// coordinator as a [`Frame::Error`] before returning.
pub fn serve(stream: TcpStream) -> io::Result<()> {
    serve_with(stream, DEFAULT_READ_TIMEOUT)
}

/// Maps a read-timeout error into the orphaned-worker diagnosis; every
/// other error passes through untouched.
fn orphaned(e: io::Error, read_timeout: Duration) -> io::Error {
    if matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    ) {
        return io::Error::new(
            e.kind(),
            format!(
                "no frame from the coordinator in {read_timeout:?}: \
                 presuming it dead, orphaned worker exiting"
            ),
        );
    }
    e
}

/// [`serve`] with an explicit read timeout.
///
/// # Errors
///
/// As [`serve`]; additionally, when the coordinator sends nothing for
/// `read_timeout` (not even a heartbeat), the worker exits with a
/// clear `TimedOut`/`WouldBlock` error naming the orphan condition
/// instead of blocking forever on a vanished peer.
pub fn serve_with(mut stream: TcpStream, read_timeout: Duration) -> io::Result<()> {
    stream.set_nodelay(true)?;
    if !read_timeout.is_zero() {
        stream.set_read_timeout(Some(read_timeout))?;
    }
    let meter = FrameMeter::disabled();
    let mut seq = FrameSeq::default();
    let mut reader = BufReader::new(stream.try_clone()?);
    write_frame(
        &mut stream,
        &Frame::Hello {
            version: PROTO_VERSION,
        }
        .encode(),
        &meter,
        &mut seq,
    )?;
    let payload =
        read_frame(&mut reader, &meter, &mut seq).map_err(|e| orphaned(e, read_timeout))?;
    let init = Frame::decode(&payload)?;
    let Frame::Init {
        shard,
        start,
        end,
        algo,
        faults,
        graph,
        ..
    } = init
    else {
        return Err(protocol(format!("expected Init, got {init:?}")));
    };
    let mut state = match ShardState::build(start, end, &algo, &faults, &graph) {
        Ok(s) => s,
        Err(msg) => {
            let _ = write_frame(
                &mut stream,
                &Frame::Error {
                    message: msg.clone(),
                }
                .encode(),
                &meter,
                &mut seq,
            );
            return Err(protocol(msg));
        }
    };
    write_frame(
        &mut stream,
        &Frame::InitAck { shard }.encode(),
        &meter,
        &mut seq,
    )?;

    // Per-connection scratch: every reply is assembled into `frame_buf`
    // and hits the socket as one `write_all`.
    let mut frame_buf: Vec<u8> = Vec::new();
    loop {
        let payload =
            read_frame(&mut reader, &meter, &mut seq).map_err(|e| orphaned(e, read_timeout))?;
        let frame = Frame::decode(&payload)?;
        let reply = match frame {
            Frame::RoundGo {
                round,
                crashes,
                ghosts,
            } => state.run_round(round, &crashes, &ghosts)?,
            Frame::DumpReq { round } => state.dump(round),
            Frame::Restore {
                round,
                states,
                live,
                seen,
            } => state.restore(round, states, &live, seen)?,
            Frame::Shutdown => return Ok(()),
            // Keepalive: resets the read timeout by arriving; no reply.
            Frame::Heartbeat => continue,
            other => return Err(protocol(format!("unexpected frame {other:?}"))),
        };
        write_frame_buf(
            &mut stream,
            &reply_payload(&reply),
            &mut frame_buf,
            &meter,
            &mut seq,
        )?;
    }
}

/// Encodes a reply, substituting a clean [`Frame::Error`] when the
/// encoded reply would blow the frame cap (a 64 MiB-plus `Dump` must
/// fail loudly, not jam the connection).
fn reply_payload(reply: &Frame) -> Vec<u8> {
    let payload = reply.encode();
    if payload.len() <= MAX_FRAME {
        return payload;
    }
    Frame::Error {
        message: format!(
            "reply frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
            payload.len()
        ),
    }
    .encode()
}

fn protocol(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// One shard's executor state: the topology view shipped by `Init`
/// (full graph or owned-range slice), the full-length state vector
/// (authoritative on `start..end`, ghost copies for foreign neighbors,
/// untouched init zeros elsewhere), and the owned slices of the live
/// worklist and drop cache.
///
/// Crate-visible because the coordinator *adopts* a shard whose respawn
/// budget is exhausted: it builds this same state from the cached
/// `Init` frame and serves the shard's frames in-process (graceful
/// degradation instead of aborting the run).
pub(crate) struct ShardState {
    topo: Topology,
    algo: WireAlgo,
    plan: FaultPlan,
    start: usize,
    end: usize,
    /// States as of the last completed round. Only entries for owned
    /// vertices and ghosts (foreign neighbors of owned vertices) are
    /// ever read; ghost entries update only when a `RoundGo` carries a
    /// change or a `Restore` resets everything.
    cur: Vec<u64>,
    /// Write buffer for the owned range (`end - start` entries).
    nxt: Vec<u64>,
    /// Owned nodes still live, ascending.
    live: Vec<NodeId>,
    /// Per-directed-port "last heard" drop cache covering exactly the
    /// owned port range (local index; add `port_base` for the global
    /// drop-stream slot).
    seen: Vec<u64>,
    /// Global port index of `seen[0]` (`csr_offsets()[start]` of the
    /// full graph); 0 when drops are off.
    port_base: usize,
    /// Local port offsets over the owned range: vertex `start + i` owns
    /// ports `local_off[i]..local_off[i + 1]` of `seen`.
    local_off: Vec<usize>,
    /// `boundary[v - start]` = owned `v` has a foreign neighbor.
    boundary: Vec<bool>,
    /// Sorted foreign neighbors of the owned range — the universe the
    /// coordinator packs `RoundGo` ghosts against.
    ghost_ids: Vec<u32>,
    /// Sorted owned vertices with a foreign neighbor — the universe
    /// `RoundDone` boundary updates are packed against.
    boundary_ids: Vec<u32>,
    drop_on: bool,
    jitter_on: bool,
}

impl ShardState {
    pub(crate) fn build(
        start: u32,
        end: u32,
        algo: &str,
        faults: &[u8],
        graph: &[u8],
    ) -> Result<ShardState, String> {
        let (start, end) = (start as usize, end as usize);
        let topo = Topology::decode(graph, start, end)
            .map_err(|e| format!("shard init: bad graph payload: {e}"))?;
        let algo: WireAlgo = algo
            .parse()
            .map_err(|e| format!("shard init: bad algorithm spec: {e}"))?;
        let plan =
            decode_fault_plan(faults).map_err(|e| format!("shard init: bad fault plan: {e}"))?;
        let n = topo.n();
        let max_degree = topo.max_degree();
        let mut local_off = Vec::with_capacity(end - start + 1);
        local_off.push(0usize);
        let mut boundary = Vec::with_capacity(end - start);
        let mut ghost_ids: Vec<u32> = Vec::new();
        for v in start..end {
            let nbrs = topo.neighbors(NodeId(v as u32));
            local_off.push(local_off.last().unwrap() + nbrs.len());
            let mut foreign = false;
            for w in nbrs {
                if w.index() < start || w.index() >= end {
                    foreign = true;
                    ghost_ids.push(w.0);
                }
            }
            boundary.push(foreign);
        }
        ghost_ids.sort_unstable();
        ghost_ids.dedup();
        let boundary_ids: Vec<u32> = (start..end)
            .filter(|&v| boundary[v - start])
            .map(|v| v as u32)
            .collect();
        // Init states are a pure function of (id, n, Δ) for every wire
        // algorithm — no neighbor reads — so the worker computes them
        // for exactly the vertices it will ever look at (owned range
        // plus ghosts) and never needs ghost adjacency or a round-0
        // exchange.
        let init_ctx = |v: usize| NodeCtx {
            node: NodeId(v as u32),
            uid: v as u64,
            neighbors: &[],
            round: 0,
            n,
            max_degree,
        };
        let mut cur = vec![0u64; n];
        for (v, c) in cur.iter_mut().enumerate().take(end).skip(start) {
            *c = algo.init(&init_ctx(v));
        }
        for &g in &ghost_ids {
            cur[g as usize] = algo.init(&init_ctx(g as usize));
        }
        let nxt = cur[start..end].to_vec();
        let drop_on = plan.message_drop_p > 0.0;
        let mut port_base = 0usize;
        let mut seen = Vec::new();
        if drop_on {
            port_base = topo.global_port_base(start).ok_or_else(|| {
                "shard init: fault plan drops messages but the graph payload \
                 carries no port information"
                    .to_string()
            })?;
            // Seed the owned port range from the init states (the setup
            // exchange is reliable), exactly like the single-process
            // seeding.
            seen = vec![0u64; local_off[end - start]];
            for v in start..end {
                let base = local_off[v - start];
                for (p, w) in topo.neighbors(NodeId(v as u32)).iter().enumerate() {
                    seen[base + p] = cur[w.index()];
                }
            }
        }
        let jitter_on = plan.round_jitter > 0;
        Ok(ShardState {
            topo,
            algo,
            plan,
            start,
            end,
            cur,
            nxt,
            live: (start..end).map(|v| NodeId(v as u32)).collect(),
            seen,
            port_base,
            local_off,
            boundary,
            ghost_ids,
            boundary_ids,
            drop_on,
            jitter_on,
        })
    }

    pub(crate) fn run_round(
        &mut self,
        round: u64,
        crashes: &[u32],
        ghosts: &GhostUpdates,
    ) -> io::Result<Frame> {
        for (idx, s) in ghosts.resolve(&self.ghost_ids)? {
            self.cur[self.ghost_ids[idx] as usize] = s;
        }
        // Crashes freeze at the start of the round, before any step.
        for &v in crashes {
            let v = NodeId(v);
            if v.index() < self.start || v.index() >= self.end {
                continue;
            }
            if let Ok(pos) = self.live.binary_search(&v) {
                self.live.remove(pos);
                self.nxt[v.index() - self.start] = self.cur[v.index()];
            }
        }
        let n = self.topo.n();
        let max_degree = self.topo.max_degree();
        let mut msgs = 0u64;
        let mut dropped = 0u64;
        let mut stalled = 0u64;
        let mut suppressed = 0u64;
        let mut halts: Vec<(u32, u64)> = Vec::new();
        let mut boundary_out: Vec<(u32, u64)> = Vec::new();
        let mut nbr_buf: Vec<u64> = Vec::with_capacity(max_degree);
        let mut kept = 0usize;
        for i in 0..self.live.len() {
            let v = self.live[i];
            let vi = v.index();
            if self.jitter_on && self.plan.stalls(v, round) {
                // Stalled: skip the step, keep the state, stay live.
                self.nxt[vi - self.start] = self.cur[vi];
                stalled += 1;
                self.live[kept] = v;
                kept += 1;
                continue;
            }
            nbr_buf.clear();
            let nbrs = self.topo.neighbors(v);
            if self.drop_on {
                let base = self.local_off[vi - self.start];
                for (p, w) in nbrs.iter().enumerate() {
                    // The drop stream is indexed by *global* port slot so
                    // every shard count draws identical drop decisions.
                    if self.plan.drops_message(round, self.port_base + base + p) {
                        dropped += 1;
                    } else {
                        self.seen[base + p] = self.cur[w.index()];
                    }
                }
                nbr_buf.extend_from_slice(&self.seen[base..base + nbrs.len()]);
                msgs += nbrs.len() as u64;
            } else {
                nbr_buf.extend(nbrs.iter().map(|w| self.cur[w.index()]));
                msgs += nbr_buf.len() as u64;
            }
            let ctx = NodeCtx {
                node: v,
                uid: u64::from(v.0),
                neighbors: nbrs,
                round,
                n,
                max_degree,
            };
            match self.algo.step(&ctx, &self.cur[vi], &nbr_buf) {
                Transition::Continue(s) => {
                    self.nxt[vi - self.start] = s;
                    if self.boundary[vi - self.start] {
                        if s == self.cur[vi] {
                            // Neighboring shards already hold this state;
                            // the delta exchange sends nothing.
                            suppressed += 1;
                        } else {
                            boundary_out.push((v.0, s));
                        }
                    }
                    self.live[kept] = v;
                    kept += 1;
                }
                Transition::Halt(o) => {
                    halts.push((v.0, o));
                    // Freeze the pre-round state, like a halted node in
                    // the single-process executor; neighbors already hold
                    // this value, so no boundary update is needed.
                    self.nxt[vi - self.start] = self.cur[vi];
                }
            }
        }
        self.live.truncate(kept);
        self.cur[self.start..self.end].copy_from_slice(&self.nxt);
        Ok(Frame::RoundDone {
            round,
            msgs,
            dropped,
            stalled,
            suppressed,
            halts,
            boundary: GhostUpdates::pack(boundary_out, &self.boundary_ids),
        })
    }

    /// The coordinator names the checkpoint round (an idle shard is not
    /// kicked, so it cannot know it); this shard's states are current
    /// for that round either way — an unkicked shard's states have not
    /// changed since its last live round.
    pub(crate) fn dump(&self, round: u64) -> Frame {
        Frame::Dump {
            round,
            states: self.cur[self.start..self.end].to_vec(),
            live: self.live.iter().map(|v| v.0).collect(),
            seen: self.seen.clone(),
        }
    }

    pub(crate) fn restore(
        &mut self,
        round: u64,
        states: Vec<u64>,
        live: &[u8],
        seen: Vec<u64>,
    ) -> io::Result<Frame> {
        if states.len() != self.cur.len() {
            return Err(protocol(format!(
                "restore with {} states for {} nodes",
                states.len(),
                self.cur.len()
            )));
        }
        // The full state vector resets owned *and* ghost entries, so the
        // delta exchange restarts from a synchronized baseline — no
        // explicit full-sync round is needed after a restore.
        self.cur = states;
        self.nxt.copy_from_slice(&self.cur[self.start..self.end]);
        self.live = (self.start..self.end)
            .filter(|&v| live.get(v / 8).is_some_and(|b| b & (1 << (v % 8)) != 0))
            .map(|v| NodeId(v as u32))
            .collect();
        if self.drop_on {
            let hi = self.port_base + self.local_off[self.end - self.start];
            if seen.len() < hi {
                return Err(protocol(format!(
                    "restore drop cache has {} ports, owned range needs {hi}",
                    seen.len()
                )));
            }
            self.seen = seen[self.port_base..hi].to_vec();
        }
        Ok(Frame::RestoreAck { round })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversized_replies_become_clean_error_frames() {
        // A Dump whose encoding tops the 64 MiB cap (u64::MAX states are
        // 10 wire bytes each) must degrade into an Error frame the
        // coordinator can decode, never a jammed oversized write.
        let dump = Frame::Dump {
            round: 1,
            states: vec![u64::MAX; 8 << 20],
            live: vec![],
            seen: vec![],
        };
        assert!(dump.encode().len() > MAX_FRAME);
        let payload = reply_payload(&dump);
        assert!(payload.len() <= MAX_FRAME);
        match Frame::decode(&payload).unwrap() {
            Frame::Error { message } => assert!(message.contains("exceeds")),
            other => panic!("expected Error frame, got {other:?}"),
        }
        // Ordinary replies pass through untouched.
        let small = Frame::RestoreAck { round: 3 };
        assert_eq!(reply_payload(&small), small.encode());
    }
}
