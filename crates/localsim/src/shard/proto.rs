//! The coordinator–worker frame vocabulary (PROTO_VERSION 3).
//!
//! One round of the sharded runtime is one `RoundGo` → `RoundDone`
//! exchange per shard — the distributed analogue of one
//! [`crate::pool::WorkerPool`] epoch: `RoundGo` is the epoch kick,
//! collecting every shard's `RoundDone` is the barrier. Version 2 made
//! it a bandwidth protocol: the topology travels as the `graphgen::io`
//! binary CSR payload instead of a text edge-list, ghost state crosses
//! the wire only when it changed ([`GhostUpdates`]), and every integer
//! is a varint. Version 3 makes it a *robustness* protocol: every frame
//! carries a per-connection sequence number and an FNV-1a checksum in
//! its header (see `super::wire`), so duplicated frames are idempotent
//! and corruption is detected instead of decoded, and the new
//! [`Frame::Heartbeat`] keepalive lets liveness timeouts distinguish an
//! idle peer from a hung one. The full wire contract (field meanings,
//! restart protocol, versioning) is documented in `docs/DISTRIBUTED.md`.

use std::io;

use graphgen::NodeId;

use super::wire::{varint_len, Dec, Enc};
use crate::faults::FaultPlan;

/// Protocol version carried in [`Frame::Hello`]; the coordinator refuses
/// workers speaking any other version (see `validate_hello` in the
/// coordinator — an old worker gets a clear mismatch error, not silent
/// garbage).
pub const PROTO_VERSION: u32 = 3;

const TAG_HELLO: u8 = 1;
const TAG_INIT: u8 = 2;
const TAG_INIT_ACK: u8 = 3;
const TAG_ROUND_GO: u8 = 4;
const TAG_ROUND_DONE: u8 = 5;
const TAG_DUMP_REQ: u8 = 6;
const TAG_DUMP: u8 = 7;
const TAG_RESTORE: u8 = 8;
const TAG_RESTORE_ACK: u8 = 9;
const TAG_SHUTDOWN: u8 = 10;
const TAG_ERROR: u8 = 11;
const TAG_HEARTBEAT: u8 = 12;

const GHOSTS_PAIRS: u8 = 0;
const GHOSTS_PACKED: u8 = 1;

/// Changed ghost states for one direction of one round, in whichever of
/// two encodings is smaller *for this round*:
///
/// - `Pairs`: explicit `(node, state)` pairs, node ids delta-encoded
///   ascending. Cheap when few of the possible nodes changed (the
///   steady-state tail, where almost everything has halted).
/// - `Packed`: one presence bit per node of a *universe* — the sorted
///   id list both sides derived at init (a shard's ghost ids, or its
///   boundary ids) — followed by the states of the set bits in order.
///   Cheap in early rounds when most boundary nodes change and delta
///   ids would cost a byte or more each.
///
/// Both sides know the universe, so it never travels; [`GhostUpdates::pack`]
/// picks the encoding by exact byte cost, making the choice — and the
/// byte counts — deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum GhostUpdates {
    /// Explicit ascending `(node, state)` pairs.
    Pairs(Vec<(u32, u64)>),
    /// Positional bitmap over a shared universe id list plus the states
    /// of the set bits, in universe order.
    Packed {
        /// `universe.len().div_ceil(8)` bytes, bit `i` (little-endian
        /// within each byte) = `universe[i]` changed.
        bitmap: Vec<u8>,
        /// One state per set bit, in ascending universe order.
        states: Vec<u64>,
    },
}

impl GhostUpdates {
    /// No updates.
    #[must_use]
    pub fn empty() -> Self {
        GhostUpdates::Pairs(Vec::new())
    }

    /// Number of `(node, state)` updates carried.
    #[must_use]
    pub fn count(&self) -> usize {
        match self {
            GhostUpdates::Pairs(p) => p.len(),
            GhostUpdates::Packed { states, .. } => states.len(),
        }
    }

    /// Chooses the cheaper encoding for `updates`, which must be an
    /// ascending-id subset of `universe` (the shared sorted id list).
    #[must_use]
    pub fn pack(updates: Vec<(u32, u64)>, universe: &[u32]) -> Self {
        // States cost the same either way; compare only the id bytes:
        // delta varints (first absolute, then gaps) vs the fixed bitmap.
        let mut id_bytes = 0usize;
        let mut prev = 0u32;
        for (i, &(v, _)) in updates.iter().enumerate() {
            id_bytes += varint_len(u64::from(if i == 0 { v } else { v - prev }));
            prev = v;
        }
        let bitmap_bytes = universe.len().div_ceil(8);
        if id_bytes <= bitmap_bytes {
            return GhostUpdates::Pairs(updates);
        }
        let mut bitmap = vec![0u8; bitmap_bytes];
        let mut states = Vec::with_capacity(updates.len());
        let mut cursor = 0usize;
        for (v, s) in updates {
            let idx = cursor
                + universe[cursor..]
                    .iter()
                    .position(|&u| u == v)
                    .expect("ghost update id must be in the shared universe");
            bitmap[idx / 8] |= 1 << (idx % 8);
            states.push(s);
            cursor = idx + 1;
        }
        GhostUpdates::Packed { bitmap, states }
    }

    /// Expands the updates against the shared `universe`, returning
    /// `(index into universe, state)` in ascending order.
    ///
    /// # Errors
    ///
    /// Protocol errors (never panics): a bitmap of the wrong length, a
    /// state count that disagrees with the bitmap population, bits set
    /// past the universe, or a pair id that is not in the universe.
    pub fn resolve(&self, universe: &[u32]) -> io::Result<Vec<(usize, u64)>> {
        match self {
            GhostUpdates::Pairs(pairs) => {
                let mut out = Vec::with_capacity(pairs.len());
                let mut cursor = 0usize;
                for &(v, s) in pairs {
                    let Some(off) = universe[cursor.min(universe.len())..]
                        .iter()
                        .position(|&u| u == v)
                    else {
                        return Err(protocol(format!("ghost update for unknown node {v}")));
                    };
                    out.push((cursor + off, s));
                    cursor += off + 1;
                }
                Ok(out)
            }
            GhostUpdates::Packed { bitmap, states } => {
                if bitmap.len() != universe.len().div_ceil(8) {
                    return Err(protocol(format!(
                        "ghost bitmap is {} bytes for a {}-id universe",
                        bitmap.len(),
                        universe.len()
                    )));
                }
                let mut out = Vec::with_capacity(states.len());
                let mut next_state = states.iter();
                for (idx, _) in universe.iter().enumerate() {
                    if bitmap[idx / 8] & (1 << (idx % 8)) != 0 {
                        let Some(&s) = next_state.next() else {
                            return Err(protocol(
                                "ghost bitmap has more set bits than states".to_string(),
                            ));
                        };
                        out.push((idx, s));
                    }
                }
                if next_state.next().is_some() {
                    return Err(protocol(
                        "ghost bitmap has fewer set bits than states".to_string(),
                    ));
                }
                // Bits past the universe length would silently drop
                // states above; refuse them explicitly.
                for (byte_i, &b) in bitmap.iter().enumerate() {
                    for bit in 0..8 {
                        if b & (1 << bit) != 0 && byte_i * 8 + bit >= universe.len() {
                            return Err(protocol(
                                "ghost bitmap sets bits past the universe".to_string(),
                            ));
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    fn encode_into(&self, e: &mut Enc) {
        match self {
            GhostUpdates::Pairs(pairs) => {
                e.u8(GHOSTS_PAIRS);
                e.pairs_states(pairs);
            }
            GhostUpdates::Packed { bitmap, states } => {
                e.u8(GHOSTS_PACKED);
                e.bytes(bitmap);
                e.states(states);
            }
        }
    }

    fn decode_from(d: &mut Dec) -> io::Result<Self> {
        match d.u8()? {
            GHOSTS_PAIRS => Ok(GhostUpdates::Pairs(d.pairs_states()?)),
            GHOSTS_PACKED => Ok(GhostUpdates::Packed {
                bitmap: d.bytes()?,
                states: d.states()?,
            }),
            other => Err(protocol(format!("unknown ghost-updates mode {other}"))),
        }
    }
}

fn protocol(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Serializes a fault plan for [`Frame::Init`]: empty bytes for an
/// inactive plan, otherwise seed, drop probability (f64 bit pattern),
/// jitter, and the crash list, all varints.
#[must_use]
pub fn encode_fault_plan(plan: &FaultPlan) -> Vec<u8> {
    if !plan.is_active() {
        return Vec::new();
    }
    let mut e = Enc::default();
    e.u64(plan.seed);
    e.u64(plan.message_drop_p.to_bits());
    e.u64(plan.round_jitter);
    e.u32(plan.node_crash.len() as u32);
    for &(round, node) in &plan.node_crash {
        e.u64(round);
        e.u32(node.0);
    }
    e.0
}

/// Inverse of [`encode_fault_plan`]; empty bytes decode to the inert
/// default plan.
///
/// # Errors
///
/// Malformed payloads (truncation, trailing bytes).
pub fn decode_fault_plan(bytes: &[u8]) -> io::Result<FaultPlan> {
    if bytes.is_empty() {
        return Ok(FaultPlan::default());
    }
    let mut d = Dec::new(bytes);
    let seed = d.u64()?;
    let message_drop_p = f64::from_bits(d.u64()?);
    let round_jitter = d.u64()?;
    let crashes = d.u32()? as usize;
    let mut node_crash = Vec::with_capacity(crashes.min(bytes.len()));
    for _ in 0..crashes {
        let round = d.u64()?;
        let node = d.u32()?;
        node_crash.push((round, NodeId(node)));
    }
    d.finish()?;
    Ok(FaultPlan {
        seed,
        message_drop_p,
        node_crash,
        round_jitter,
    })
}

/// One protocol frame. All node ids are raw `u32` indices and all states
/// and outputs are the `u64` values of [`super::WireAlgo`].
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → coordinator, immediately after connecting.
    Hello {
        /// Must equal [`PROTO_VERSION`].
        version: u32,
    },
    /// Coordinator → worker: everything a (re)joining worker needs.
    /// Only the `start..end` vertex range is owned; the `graph` payload
    /// carries either the full topology or just the sub-topology this
    /// shard can see (owned range plus ghost-adjacent structure) —
    /// whichever is smaller (see `shard::topology`).
    Init {
        /// Shard index assigned by the coordinator.
        shard: u32,
        /// Total shard count.
        shards: u32,
        /// First owned vertex (inclusive).
        start: u32,
        /// One past the last owned vertex.
        end: u32,
        /// [`super::WireAlgo`] spec, e.g. `greedy` or `rand:7`.
        algo: String,
        /// [`encode_fault_plan`] payload; empty = no plan.
        faults: Vec<u8>,
        /// `shard::topology` payload (mode byte + binary CSR data).
        graph: Vec<u8>,
    },
    /// Worker → coordinator: init complete, ready for round 1.
    InitAck {
        /// Echo of the assigned shard index.
        shard: u32,
    },
    /// Coordinator → worker: run one synchronous round.
    RoundGo {
        /// 1-based round number (matches `NodeCtx::round`).
        round: u64,
        /// Nodes crashing at the start of this round, ascending (global
        /// list; each worker freezes the ones it owns).
        crashes: Vec<u32>,
        /// Ghost states that changed last round, against this shard's
        /// ghost-id universe. Unchanged ghosts are never re-sent.
        ghosts: GhostUpdates,
    },
    /// Worker → coordinator: the round's results for one shard.
    RoundDone {
        /// Echo of the round number.
        round: u64,
        /// Messages charged by this shard's live nodes (one per incident
        /// edge per stepped node, matching the single-process executor).
        msgs: u64,
        /// Dropped neighbor-state reads.
        dropped: u64,
        /// Nodes stalled by jitter.
        stalled: u64,
        /// Boundary updates withheld because the node's state did not
        /// change this round (the delta-exchange savings counter).
        suppressed: u64,
        /// `(node, output)` for owned nodes that halted this round, in
        /// ascending node order.
        halts: Vec<(u32, u64)>,
        /// Changed states of owned *boundary* nodes, against this
        /// shard's boundary-id universe. Interior states never cross
        /// the wire; unchanged boundary states no longer do either.
        boundary: GhostUpdates,
    },
    /// Coordinator → worker: reply with a [`Frame::Dump`]. Carries the
    /// checkpoint round because an **idle** shard (all owned nodes
    /// halted or crashed) receives no `RoundGo` kicks and therefore has
    /// no local notion of the current round; the worker echoes this
    /// value back in the `Dump`.
    DumpReq {
        /// The round the checkpoint captures.
        round: u64,
    },
    /// Worker → coordinator: this shard's slice of a checkpoint.
    Dump {
        /// Last completed round.
        round: u64,
        /// States of the owned vertex range, in order.
        states: Vec<u64>,
        /// Owned nodes still live, ascending.
        live: Vec<u32>,
        /// Drop cache for the owned directed-port range (empty when the
        /// plan injects no drops).
        seen: Vec<u64>,
    },
    /// Coordinator → worker: rewind to a checkpoint. Broadcast to every
    /// shard after a failure so the whole cluster replays in lockstep;
    /// the next `RoundGo` after a restore is a full-sync epoch (every
    /// ghost travels), so delta state never spans a restart.
    Restore {
        /// The checkpoint's round.
        round: u64,
        /// All `n` node states at that round.
        states: Vec<u64>,
        /// Live bitmap over all nodes, bit `v` = node `v` live, packed
        /// little-endian into bytes.
        live: Vec<u8>,
        /// Full drop cache (all directed ports; empty without drops).
        seen: Vec<u64>,
    },
    /// Worker → coordinator: restore applied, ready to replay.
    RestoreAck {
        /// Echo of the checkpoint round.
        round: u64,
    },
    /// Coordinator → worker: exit cleanly.
    Shutdown,
    /// Worker → coordinator: fatal worker-side error.
    Error {
        /// Human-readable description.
        message: String,
    },
    /// Coordinator → worker keepalive: expects no reply; its only job
    /// is to keep an idle worker's read timeout from firing (and to let
    /// a half-open connection surface as a send error). Sent outside
    /// the metered byte counters so chaos timing never perturbs the
    /// deterministic traffic figures.
    Heartbeat,
}

impl Frame {
    /// Serializes the frame into a wire payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Frame::Hello { version } => {
                let mut e = Enc::tagged(TAG_HELLO);
                e.u32(*version);
                e.0
            }
            Frame::Init {
                shard,
                shards,
                start,
                end,
                algo,
                faults,
                graph,
            } => {
                let mut e = Enc::with_hint(TAG_INIT, 24 + algo.len() + faults.len() + graph.len());
                e.u32(*shard);
                e.u32(*shards);
                e.u32(*start);
                e.u32(*end);
                e.str(algo);
                e.bytes(faults);
                e.bytes(graph);
                e.0
            }
            Frame::InitAck { shard } => {
                let mut e = Enc::tagged(TAG_INIT_ACK);
                e.u32(*shard);
                e.0
            }
            Frame::RoundGo {
                round,
                crashes,
                ghosts,
            } => {
                let mut e = Enc::tagged(TAG_ROUND_GO);
                e.u64(*round);
                e.ids(crashes);
                ghosts.encode_into(&mut e);
                e.0
            }
            Frame::RoundDone {
                round,
                msgs,
                dropped,
                stalled,
                suppressed,
                halts,
                boundary,
            } => {
                let mut e = Enc::tagged(TAG_ROUND_DONE);
                e.u64(*round);
                e.u64(*msgs);
                e.u64(*dropped);
                e.u64(*stalled);
                e.u64(*suppressed);
                e.pairs_vals(halts);
                boundary.encode_into(&mut e);
                e.0
            }
            Frame::DumpReq { round } => {
                let mut e = Enc::tagged(TAG_DUMP_REQ);
                e.u64(*round);
                e.0
            }
            Frame::Dump {
                round,
                states,
                live,
                seen,
            } => {
                let mut e = Enc::with_hint(TAG_DUMP, 16 + 3 * states.len() + 3 * seen.len());
                e.u64(*round);
                e.states(states);
                e.ids(live);
                e.states(seen);
                e.0
            }
            Frame::Restore {
                round,
                states,
                live,
                seen,
            } => {
                let mut e = Enc::with_hint(
                    TAG_RESTORE,
                    16 + 3 * states.len() + live.len() + 3 * seen.len(),
                );
                e.u64(*round);
                e.states(states);
                e.bytes(live);
                e.states(seen);
                e.0
            }
            Frame::RestoreAck { round } => {
                let mut e = Enc::tagged(TAG_RESTORE_ACK);
                e.u64(*round);
                e.0
            }
            Frame::Shutdown => Enc::tagged(TAG_SHUTDOWN).0,
            Frame::Error { message } => {
                let mut e = Enc::tagged(TAG_ERROR);
                e.str(message);
                e.0
            }
            Frame::Heartbeat => Enc::tagged(TAG_HEARTBEAT).0,
        }
    }

    /// Parses a wire payload back into a frame.
    ///
    /// # Errors
    ///
    /// Unknown tags, truncation, trailing bytes, and malformed fields.
    pub fn decode(payload: &[u8]) -> io::Result<Frame> {
        let mut d = Dec::new(payload);
        let frame = match d.u8()? {
            TAG_HELLO => Frame::Hello { version: d.u32()? },
            TAG_INIT => Frame::Init {
                shard: d.u32()?,
                shards: d.u32()?,
                start: d.u32()?,
                end: d.u32()?,
                algo: d.str()?,
                faults: d.bytes()?,
                graph: d.bytes()?,
            },
            TAG_INIT_ACK => Frame::InitAck { shard: d.u32()? },
            TAG_ROUND_GO => Frame::RoundGo {
                round: d.u64()?,
                crashes: d.ids()?,
                ghosts: GhostUpdates::decode_from(&mut d)?,
            },
            TAG_ROUND_DONE => Frame::RoundDone {
                round: d.u64()?,
                msgs: d.u64()?,
                dropped: d.u64()?,
                stalled: d.u64()?,
                suppressed: d.u64()?,
                halts: d.pairs_vals()?,
                boundary: GhostUpdates::decode_from(&mut d)?,
            },
            TAG_DUMP_REQ => Frame::DumpReq { round: d.u64()? },
            TAG_DUMP => Frame::Dump {
                round: d.u64()?,
                states: d.states()?,
                live: d.ids()?,
                seen: d.states()?,
            },
            TAG_RESTORE => Frame::Restore {
                round: d.u64()?,
                states: d.states()?,
                live: d.bytes()?,
                seen: d.states()?,
            },
            TAG_RESTORE_ACK => Frame::RestoreAck { round: d.u64()? },
            TAG_SHUTDOWN => Frame::Shutdown,
            TAG_ERROR => Frame::Error { message: d.str()? },
            TAG_HEARTBEAT => Frame::Heartbeat,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown frame tag {other}"),
                ))
            }
        };
        d.finish()?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_frame_round_trips() {
        let frames = [
            Frame::Hello {
                version: PROTO_VERSION,
            },
            Frame::Init {
                shard: 2,
                shards: 4,
                start: 10,
                end: 20,
                algo: "rand:7".to_string(),
                faults: encode_fault_plan(&FaultPlan {
                    seed: 7,
                    message_drop_p: 0.05,
                    node_crash: vec![(5, NodeId(3))],
                    round_jitter: 2,
                }),
                graph: vec![3, 1, 1, 1, 1, 1, 1, 0],
            },
            Frame::InitAck { shard: 2 },
            Frame::RoundGo {
                round: 5,
                crashes: vec![3, 9],
                ghosts: GhostUpdates::Pairs(vec![(9, 77), (21, 0)]),
            },
            Frame::RoundGo {
                round: 6,
                crashes: vec![],
                ghosts: GhostUpdates::Packed {
                    bitmap: vec![0b101],
                    states: vec![(1 << 63) | 4, 1 << 62],
                },
            },
            Frame::RoundDone {
                round: 5,
                msgs: 40,
                dropped: 1,
                stalled: 2,
                suppressed: 17,
                halts: vec![(11, 3)],
                boundary: GhostUpdates::Pairs(vec![(10, 8), (19, 9)]),
            },
            Frame::DumpReq { round: 6 },
            Frame::Dump {
                round: 6,
                states: vec![1, 2, 1 << 63],
                live: vec![10, 12],
                seen: vec![],
            },
            Frame::Restore {
                round: 4,
                states: vec![0; 8],
                live: vec![0b1010_1010],
                seen: vec![5, 6],
            },
            Frame::RestoreAck { round: 4 },
            Frame::Shutdown,
            Frame::Error {
                message: "boom".to_string(),
            },
            Frame::Heartbeat,
        ];
        for f in frames {
            let decoded = Frame::decode(&f.encode()).unwrap();
            assert_eq!(decoded, f);
        }
    }

    #[test]
    fn unknown_tag_and_truncation_are_refused() {
        assert!(Frame::decode(&[200]).is_err());
        let bytes = Frame::RoundGo {
            round: 1,
            crashes: vec![1, 2],
            ghosts: GhostUpdates::empty(),
        }
        .encode();
        assert!(Frame::decode(&bytes[..bytes.len() - 1]).is_err());
        // Trailing garbage after a well-formed frame is also an error.
        let mut padded = Frame::Shutdown.encode();
        padded.push(0);
        assert!(Frame::decode(&padded).is_err());
        // An unknown ghost-updates mode byte is a protocol error.
        let mut go = Enc::tagged(4);
        go.u64(1);
        go.ids(&[]);
        go.u8(9);
        assert!(Frame::decode(&go.0).is_err());
    }

    #[test]
    fn fault_plans_round_trip_exactly() {
        let inert = FaultPlan::default();
        assert!(encode_fault_plan(&inert).is_empty());
        assert_eq!(decode_fault_plan(&[]).unwrap(), inert);
        let plan = FaultPlan {
            seed: u64::MAX,
            message_drop_p: 0.017,
            node_crash: vec![(5, NodeId(3)), (5, NodeId(9)), (1 << 40, NodeId(0))],
            round_jitter: 2,
        };
        let bytes = encode_fault_plan(&plan);
        let back = decode_fault_plan(&bytes).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.message_drop_p.to_bits(), plan.message_drop_p.to_bits());
        assert!(decode_fault_plan(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn ghost_packing_picks_the_cheaper_encoding_deterministically() {
        let universe: Vec<u32> = (0..64).map(|i| i * 10).collect();
        // One update: 2 delta bytes vs an 8-byte bitmap → Pairs.
        let few = GhostUpdates::pack(vec![(630, 5)], &universe);
        assert!(matches!(few, GhostUpdates::Pairs(_)));
        // Every id updates: 64 × ~2 delta bytes vs 8 bitmap bytes → Packed.
        let all: Vec<(u32, u64)> = universe.iter().map(|&v| (v, u64::from(v))).collect();
        let dense = GhostUpdates::pack(all.clone(), &universe);
        assert!(matches!(dense, GhostUpdates::Packed { .. }));
        // Either way the resolved (index, state) expansion is identical.
        let expect: Vec<(usize, u64)> = (0..64).map(|i| (i, (i as u64) * 10)).collect();
        assert_eq!(dense.resolve(&universe).unwrap(), expect);
        assert_eq!(GhostUpdates::Pairs(all).resolve(&universe).unwrap(), expect);
        assert_eq!(few.resolve(&universe).unwrap(), vec![(63, 5)]);
        // Empty stays Pairs and resolves to nothing.
        assert_eq!(
            GhostUpdates::pack(vec![], &universe)
                .resolve(&universe)
                .unwrap(),
            vec![]
        );
    }

    #[test]
    fn malformed_ghost_updates_resolve_to_errors_not_panics() {
        let universe = [2u32, 5, 9];
        // Pair id outside the universe.
        assert!(GhostUpdates::Pairs(vec![(3, 0)])
            .resolve(&universe)
            .is_err());
        // Wrong bitmap length.
        assert!(GhostUpdates::Packed {
            bitmap: vec![0, 0],
            states: vec![],
        }
        .resolve(&universe)
        .is_err());
        // Popcount disagrees with the state count, both directions.
        assert!(GhostUpdates::Packed {
            bitmap: vec![0b011],
            states: vec![1],
        }
        .resolve(&universe)
        .is_err());
        assert!(GhostUpdates::Packed {
            bitmap: vec![0b001],
            states: vec![1, 2],
        }
        .resolve(&universe)
        .is_err());
        // A bit past the universe end is refused.
        assert!(GhostUpdates::Packed {
            bitmap: vec![0b1000],
            states: vec![1],
        }
        .resolve(&universe)
        .is_err());
    }
}
