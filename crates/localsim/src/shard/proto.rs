//! The coordinator–worker frame vocabulary.
//!
//! One round of the sharded runtime is one `RoundGo` → `RoundDone`
//! exchange per shard — the distributed analogue of one
//! [`crate::pool::WorkerPool`] epoch: `RoundGo` is the epoch kick,
//! collecting every shard's `RoundDone` is the barrier. The full wire
//! contract (field meanings, restart protocol, versioning) is documented
//! in `docs/DISTRIBUTED.md`.

use std::io;

use super::wire::{Dec, Enc};

/// Protocol version carried in [`Frame::Hello`]; the coordinator refuses
/// workers speaking any other version.
pub const PROTO_VERSION: u32 = 1;

const TAG_HELLO: u8 = 1;
const TAG_INIT: u8 = 2;
const TAG_INIT_ACK: u8 = 3;
const TAG_ROUND_GO: u8 = 4;
const TAG_ROUND_DONE: u8 = 5;
const TAG_DUMP_REQ: u8 = 6;
const TAG_DUMP: u8 = 7;
const TAG_RESTORE: u8 = 8;
const TAG_RESTORE_ACK: u8 = 9;
const TAG_SHUTDOWN: u8 = 10;
const TAG_ERROR: u8 = 11;

/// One protocol frame. All node ids are raw `u32` indices and all states
/// and outputs are the `u64` values of [`super::WireAlgo`].
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → coordinator, immediately after connecting.
    Hello {
        /// Must equal [`PROTO_VERSION`].
        version: u32,
    },
    /// Coordinator → worker: everything a (re)joining worker needs. The
    /// whole topology travels (workers keep interior edges local and the
    /// graph is static); only the `start..end` vertex range is owned.
    Init {
        /// Shard index assigned by the coordinator.
        shard: u32,
        /// Total shard count.
        shards: u32,
        /// First owned vertex (inclusive).
        start: u32,
        /// One past the last owned vertex.
        end: u32,
        /// [`super::WireAlgo`] spec, e.g. `greedy` or `rand:7`.
        algo: String,
        /// [`crate::FaultPlan`] as serde JSON; empty string = no plan.
        faults: String,
        /// The graph in `graphgen::io` edge-list format.
        graph: String,
    },
    /// Worker → coordinator: init complete, ready for round 1.
    InitAck {
        /// Echo of the assigned shard index.
        shard: u32,
    },
    /// Coordinator → worker: run one synchronous round.
    RoundGo {
        /// 1-based round number (matches `NodeCtx::round`).
        round: u64,
        /// Nodes crashing at the start of this round (global list; each
        /// worker freezes the ones it owns).
        crashes: Vec<u32>,
        /// Boundary states from other shards that changed last round:
        /// `(node, state)` ghost updates for nodes this worker reads but
        /// does not own.
        ghosts: Vec<(u32, u64)>,
    },
    /// Worker → coordinator: the round's results for one shard.
    RoundDone {
        /// Echo of the round number.
        round: u64,
        /// Messages charged by this shard's live nodes (one per incident
        /// edge per stepped node, matching the single-process executor).
        msgs: u64,
        /// Dropped neighbor-state reads.
        dropped: u64,
        /// Nodes stalled by jitter.
        stalled: u64,
        /// `(node, output)` for owned nodes that halted this round, in
        /// ascending node order.
        halts: Vec<(u32, u64)>,
        /// `(node, new state)` for owned *boundary* nodes (nodes with a
        /// neighbor in another shard) that continued with a new state.
        /// Interior states never cross the wire.
        boundary: Vec<(u32, u64)>,
    },
    /// Coordinator → worker: reply with a [`Frame::Dump`].
    DumpReq,
    /// Worker → coordinator: this shard's slice of a checkpoint.
    Dump {
        /// Last completed round.
        round: u64,
        /// States of the owned vertex range, in order.
        states: Vec<u64>,
        /// Owned nodes still live, ascending.
        live: Vec<u32>,
        /// Drop cache for the owned directed-port range (empty when the
        /// plan injects no drops).
        seen: Vec<u64>,
    },
    /// Coordinator → worker: rewind to a checkpoint. Broadcast to every
    /// shard after a failure so the whole cluster replays in lockstep.
    Restore {
        /// The checkpoint's round.
        round: u64,
        /// All `n` node states at that round.
        states: Vec<u64>,
        /// Live bitmap over all nodes, bit `v` = node `v` live, packed
        /// little-endian into bytes.
        live: Vec<u8>,
        /// Full drop cache (all directed ports; empty without drops).
        seen: Vec<u64>,
    },
    /// Worker → coordinator: restore applied, ready to replay.
    RestoreAck {
        /// Echo of the checkpoint round.
        round: u64,
    },
    /// Coordinator → worker: exit cleanly.
    Shutdown,
    /// Worker → coordinator: fatal worker-side error.
    Error {
        /// Human-readable description.
        message: String,
    },
}

impl Frame {
    /// Serializes the frame into a wire payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Frame::Hello { version } => {
                let mut e = Enc::tagged(TAG_HELLO);
                e.u32(*version);
                e.0
            }
            Frame::Init {
                shard,
                shards,
                start,
                end,
                algo,
                faults,
                graph,
            } => {
                let mut e = Enc::tagged(TAG_INIT);
                e.u32(*shard);
                e.u32(*shards);
                e.u32(*start);
                e.u32(*end);
                e.str(algo);
                e.str(faults);
                e.str(graph);
                e.0
            }
            Frame::InitAck { shard } => {
                let mut e = Enc::tagged(TAG_INIT_ACK);
                e.u32(*shard);
                e.0
            }
            Frame::RoundGo {
                round,
                crashes,
                ghosts,
            } => {
                let mut e = Enc::tagged(TAG_ROUND_GO);
                e.u64(*round);
                e.u32s(crashes);
                e.pairs(ghosts);
                e.0
            }
            Frame::RoundDone {
                round,
                msgs,
                dropped,
                stalled,
                halts,
                boundary,
            } => {
                let mut e = Enc::tagged(TAG_ROUND_DONE);
                e.u64(*round);
                e.u64(*msgs);
                e.u64(*dropped);
                e.u64(*stalled);
                e.pairs(halts);
                e.pairs(boundary);
                e.0
            }
            Frame::DumpReq => Enc::tagged(TAG_DUMP_REQ).0,
            Frame::Dump {
                round,
                states,
                live,
                seen,
            } => {
                let mut e = Enc::tagged(TAG_DUMP);
                e.u64(*round);
                e.u64s(states);
                e.u32s(live);
                e.u64s(seen);
                e.0
            }
            Frame::Restore {
                round,
                states,
                live,
                seen,
            } => {
                let mut e = Enc::tagged(TAG_RESTORE);
                e.u64(*round);
                e.u64s(states);
                e.bytes(live);
                e.u64s(seen);
                e.0
            }
            Frame::RestoreAck { round } => {
                let mut e = Enc::tagged(TAG_RESTORE_ACK);
                e.u64(*round);
                e.0
            }
            Frame::Shutdown => Enc::tagged(TAG_SHUTDOWN).0,
            Frame::Error { message } => {
                let mut e = Enc::tagged(TAG_ERROR);
                e.str(message);
                e.0
            }
        }
    }

    /// Parses a wire payload back into a frame.
    pub fn decode(payload: &[u8]) -> io::Result<Frame> {
        let mut d = Dec::new(payload);
        let frame = match d.u8()? {
            TAG_HELLO => Frame::Hello { version: d.u32()? },
            TAG_INIT => Frame::Init {
                shard: d.u32()?,
                shards: d.u32()?,
                start: d.u32()?,
                end: d.u32()?,
                algo: d.str()?,
                faults: d.str()?,
                graph: d.str()?,
            },
            TAG_INIT_ACK => Frame::InitAck { shard: d.u32()? },
            TAG_ROUND_GO => Frame::RoundGo {
                round: d.u64()?,
                crashes: d.u32s()?,
                ghosts: d.pairs()?,
            },
            TAG_ROUND_DONE => Frame::RoundDone {
                round: d.u64()?,
                msgs: d.u64()?,
                dropped: d.u64()?,
                stalled: d.u64()?,
                halts: d.pairs()?,
                boundary: d.pairs()?,
            },
            TAG_DUMP_REQ => Frame::DumpReq,
            TAG_DUMP => Frame::Dump {
                round: d.u64()?,
                states: d.u64s()?,
                live: d.u32s()?,
                seen: d.u64s()?,
            },
            TAG_RESTORE => Frame::Restore {
                round: d.u64()?,
                states: d.u64s()?,
                live: d.bytes()?,
                seen: d.u64s()?,
            },
            TAG_RESTORE_ACK => Frame::RestoreAck { round: d.u64()? },
            TAG_SHUTDOWN => Frame::Shutdown,
            TAG_ERROR => Frame::Error { message: d.str()? },
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown frame tag {other}"),
                ))
            }
        };
        d.finish()?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_frame_round_trips() {
        let frames = [
            Frame::Hello {
                version: PROTO_VERSION,
            },
            Frame::Init {
                shard: 2,
                shards: 4,
                start: 10,
                end: 20,
                algo: "rand:7".to_string(),
                faults: "{\"seed\":7}".to_string(),
                graph: "n 3\n0 1\n1 2\n".to_string(),
            },
            Frame::InitAck { shard: 2 },
            Frame::RoundGo {
                round: 5,
                crashes: vec![3],
                ghosts: vec![(9, 77), (21, 0)],
            },
            Frame::RoundDone {
                round: 5,
                msgs: 40,
                dropped: 1,
                stalled: 2,
                halts: vec![(11, 3)],
                boundary: vec![(10, 8), (19, 9)],
            },
            Frame::DumpReq,
            Frame::Dump {
                round: 6,
                states: vec![1, 2, 3],
                live: vec![10, 12],
                seen: vec![],
            },
            Frame::Restore {
                round: 4,
                states: vec![0; 8],
                live: vec![0b1010_1010],
                seen: vec![5, 6],
            },
            Frame::RestoreAck { round: 4 },
            Frame::Shutdown,
            Frame::Error {
                message: "boom".to_string(),
            },
        ];
        for f in frames {
            let decoded = Frame::decode(&f.encode()).unwrap();
            assert_eq!(decoded, f);
        }
    }

    #[test]
    fn unknown_tag_and_truncation_are_refused() {
        assert!(Frame::decode(&[200]).is_err());
        let bytes = Frame::RoundGo {
            round: 1,
            crashes: vec![1, 2],
            ghosts: vec![],
        }
        .encode();
        assert!(Frame::decode(&bytes[..bytes.len() - 1]).is_err());
        // Trailing garbage after a well-formed frame is also an error.
        let mut padded = Frame::Shutdown.encode();
        padded.push(0);
        assert!(Frame::decode(&padded).is_err());
    }
}
