//! Seed-deterministic *wire-level* fault injection and liveness policy
//! for the sharded runtime.
//!
//! [`NetFaultPlan`] is the transport-layer sibling of
//! [`crate::FaultPlan`]: where a `FaultPlan` perturbs the simulated
//! algorithm (message drops, crashes, jitter), a `NetFaultPlan` perturbs
//! the *real* coordinator↔worker byte stream — frame delays,
//! duplication, corruption (caught by the v3 frame checksum), scheduled
//! connection resets, and hung workers. Every decision is a pure
//! function of `(seed, stream, shard, direction, frame index)`, so a
//! chaotic run replays bit-identically and any failure it provokes is
//! reproducible from the spec string alone.
//!
//! [`Liveness`] bundles the coordinator-side timeout policy: connect
//! and barrier deadlines, the heartbeat cadence that keeps idle workers
//! from tripping their own read timeout, and the worker read timeout
//! itself (so orphaned workers exit instead of leaking).

use std::str::FromStr;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::faults::mix;

/// Distinct hash streams so delay/dup/corrupt decisions for the same
/// frame never correlate, and never correlate with `FaultPlan` streams.
const STREAM_NET_DELAY: u64 = 0xD31A_7ED0_F4A3_11CE;
const STREAM_NET_DUP: u64 = 0xD0B1_E5E7_5EA1_ED21;
const STREAM_NET_CORRUPT: u64 = 0xC0DE_C0FF_EE15_BAD1;

/// Which way a frame is travelling, from the coordinator's viewpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetDir {
    /// Coordinator → worker.
    Send,
    /// Worker → coordinator.
    Recv,
}

impl NetDir {
    #[inline]
    fn bit(self) -> u64 {
        match self {
            NetDir::Send => 0,
            NetDir::Recv => 1,
        }
    }
}

/// How long an injected frame delay stalls the coordinator. Kept small
/// and constant: the point is to shake frame *timing*, not to trip the
/// liveness deadlines that [`Liveness`] governs.
pub const NET_DELAY: Duration = Duration::from_micros(500);

/// A reproducible description of wire-level faults for one sharded run.
///
/// The default plan injects nothing; the coordinator treats it exactly
/// like no plan at all.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NetFaultPlan {
    /// Seed for all probabilistic fault decisions.
    pub seed: u64,
    /// Probability that any single frame is delayed by [`NET_DELAY`]
    /// before hitting the wire (send) or being processed (recv), in
    /// `[0, 1)`.
    pub delay_p: f64,
    /// Probability that a coordinator-sent frame is written twice, in
    /// `[0, 1)`. The duplicate carries the same sequence number, so the
    /// receiver must drop it for the run to stay bit-identical.
    pub dup_p: f64,
    /// Probability that a frame is corrupted in flight (one byte
    /// flipped inside the checksummed region), in `[0, 1)`. The
    /// receiver's checksum rejects the frame, which surfaces as a
    /// worker failure and drives the recovery path.
    pub corrupt_p: f64,
    /// Scheduled connection resets, as `(shard, after_round)` pairs:
    /// once the given round count has completed, the coordinator drops
    /// that shard's socket cold (half-open from the worker's side).
    pub resets: Vec<(u64, u64)>,
    /// Scheduled worker hangs, as `(shard, after_round)` pairs: the
    /// coordinator stops *reading* that shard's replies, simulating a
    /// worker that is alive but wedged. Only the barrier timeout can
    /// clear it, so plans with hangs need `Liveness::barrier_timeout`.
    pub hangs: Vec<(u64, u64)>,
}

impl NetFaultPlan {
    /// Whether this plan injects anything at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.delay_p > 0.0
            || self.dup_p > 0.0
            || self.corrupt_p > 0.0
            || !self.resets.is_empty()
            || !self.hangs.is_empty()
    }

    /// A uniform value in `[0, 1)` keyed by
    /// `(seed, stream, shard, dir, frame index)`.
    #[must_use]
    fn unit(&self, stream: u64, shard: usize, dir: NetDir, frame: u64) -> f64 {
        let key = ((shard as u64) << 1) | dir.bit();
        let h = mix(mix(mix(self.seed ^ stream) ^ key).wrapping_add(frame));
        // The top 53 bits, scaled to [0, 1).
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether the `frame`-th chaos-eligible frame on `shard`'s
    /// connection, travelling `dir`, is delayed by [`NET_DELAY`].
    #[inline]
    #[must_use]
    pub fn delays(&self, shard: usize, dir: NetDir, frame: u64) -> bool {
        self.delay_p > 0.0 && self.unit(STREAM_NET_DELAY, shard, dir, frame) < self.delay_p
    }

    /// Whether that frame is duplicated (send direction only).
    #[inline]
    #[must_use]
    pub fn dups(&self, shard: usize, dir: NetDir, frame: u64) -> bool {
        self.dup_p > 0.0 && self.unit(STREAM_NET_DUP, shard, dir, frame) < self.dup_p
    }

    /// Whether that frame is corrupted in flight.
    #[inline]
    #[must_use]
    pub fn corrupts(&self, shard: usize, dir: NetDir, frame: u64) -> bool {
        self.corrupt_p > 0.0 && self.unit(STREAM_NET_CORRUPT, shard, dir, frame) < self.corrupt_p
    }
}

/// Parses the CLI spec format: comma-separated `key=value` pairs with
/// keys `seed`, `delay`, `dup`, `corrupt`, `reset`, and `hang` (the
/// latter two `+`-separated lists of `shard@round` entries, firing
/// after the given number of completed rounds).
///
/// ```
/// use localsim::NetFaultPlan;
/// let plan: NetFaultPlan = "seed=7,delay=0.01,corrupt=0.001,reset=3@12".parse()?;
/// assert_eq!(plan.seed, 7);
/// assert_eq!(plan.resets, vec![(3, 12)]);
/// # Ok::<(), String>(())
/// ```
impl FromStr for NetFaultPlan {
    type Err = String;

    fn from_str(spec: &str) -> Result<Self, String> {
        const KEYS: &str = "`seed`, `delay`, `dup`, `corrupt`, `reset`, `hang`";
        fn probability(key: &str, value: &str) -> Result<f64, String> {
            let p: f64 = value
                .parse()
                .map_err(|e| format!("key `{key}`: bad probability `{value}`: {e}"))?;
            if !(0.0..1.0).contains(&p) {
                return Err(format!("key `{key}`: probability `{value}` outside [0, 1)"));
            }
            Ok(p)
        }
        fn schedule(key: &str, value: &str) -> Result<Vec<(u64, u64)>, String> {
            let mut entries = Vec::new();
            for entry in value.split('+') {
                let (shard, round) = entry.split_once('@').ok_or_else(|| {
                    format!(
                        "key `{key}`: entry `{entry}` is not `shard@round` \
                         (example: `{key}=3@12`)"
                    )
                })?;
                let shard: u64 = shard.parse().map_err(|e| {
                    format!("key `{key}`: bad shard `{shard}` in entry `{entry}`: {e}")
                })?;
                let round: u64 = round.parse().map_err(|e| {
                    format!("key `{key}`: bad round `{round}` in entry `{entry}`: {e}")
                })?;
                entries.push((shard, round));
            }
            Ok(entries)
        }

        let mut plan = NetFaultPlan::default();
        let mut seen: Vec<&str> = Vec::new();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part.split_once('=').ok_or_else(|| {
                format!(
                    "chaos-net spec entry `{}` is not a `key=value` pair (valid keys: {KEYS})",
                    part.trim()
                )
            })?;
            let (key, value) = (key.trim(), value.trim());
            if value.is_empty() {
                return Err(format!("chaos-net spec key `{key}` has an empty value"));
            }
            if let Some(&dup) = seen.iter().find(|&&k| k == key) {
                return Err(format!("chaos-net spec key `{dup}` given more than once"));
            }
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|e| format!("key `seed`: bad value `{value}`: {e}"))?;
                    seen.push("seed");
                }
                "delay" => {
                    plan.delay_p = probability("delay", value)?;
                    seen.push("delay");
                }
                "dup" => {
                    plan.dup_p = probability("dup", value)?;
                    seen.push("dup");
                }
                "corrupt" => {
                    plan.corrupt_p = probability("corrupt", value)?;
                    seen.push("corrupt");
                }
                "reset" => {
                    plan.resets = schedule("reset", value)?;
                    seen.push("reset");
                }
                "hang" => {
                    plan.hangs = schedule("hang", value)?;
                    seen.push("hang");
                }
                other => {
                    return Err(format!(
                        "unknown chaos-net spec key `{other}` (valid keys: {KEYS})"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

/// Coordinator-side liveness policy for a sharded run.
///
/// All timeouts bound how long the coordinator waits before declaring a
/// worker failed and driving it through the kill → respawn → `Restore`
/// recovery path. The defaults are generous enough that a healthy
/// loopback fleet never trips them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Liveness {
    /// How long to wait for a (re)spawned worker to connect and finish
    /// the `Hello`/`Init`/`InitAck` handshake.
    pub connect_timeout: Duration,
    /// How long a round or checkpoint barrier may wait without *any*
    /// shard making progress before the slowest unanswered shard is
    /// declared hung and recovered. `None` waits forever (the pre-v3
    /// behavior).
    pub barrier_timeout: Option<Duration>,
    /// Idle keepalive cadence: the coordinator sends a `Heartbeat`
    /// frame to any worker it has not written to for this long, so
    /// idle-elided shards never trip their read timeout.
    pub heartbeat_every: Duration,
    /// Worker-side read timeout (applied by thread-backed workers
    /// spawned from this coordinator; process workers configure it via
    /// `shard-serve --read-timeout-ms`). A worker whose coordinator
    /// goes silent for this long exits with a clear error instead of
    /// leaking. `Duration::ZERO` disables it.
    pub worker_read_timeout: Duration,
}

impl Default for Liveness {
    fn default() -> Self {
        Liveness {
            connect_timeout: Duration::from_secs(20),
            barrier_timeout: Some(Duration::from_secs(60)),
            heartbeat_every: Duration::from_secs(2),
            worker_read_timeout: Duration::from_secs(60),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = NetFaultPlan::default();
        assert!(!plan.is_active());
        assert!(!plan.delays(0, NetDir::Send, 0));
        assert!(!plan.dups(0, NetDir::Send, 0));
        assert!(!plan.corrupts(0, NetDir::Recv, 0));
    }

    #[test]
    fn decisions_are_reproducible_and_direction_sensitive() {
        let plan = NetFaultPlan {
            seed: 42,
            delay_p: 0.5,
            dup_p: 0.5,
            corrupt_p: 0.5,
            ..NetFaultPlan::default()
        };
        for shard in 0..8 {
            for frame in 0..64 {
                for dir in [NetDir::Send, NetDir::Recv] {
                    assert_eq!(
                        plan.delays(shard, dir, frame),
                        plan.delays(shard, dir, frame)
                    );
                }
            }
        }
        // Send and recv streams disagree somewhere, as do distinct seeds.
        assert!(
            (0..256).any(|f| plan.delays(1, NetDir::Send, f) != plan.delays(1, NetDir::Recv, f))
        );
        let other = NetFaultPlan {
            seed: 43,
            ..plan.clone()
        };
        assert!((0..256)
            .any(|f| plan.corrupts(0, NetDir::Send, f) != other.corrupts(0, NetDir::Send, f)));
    }

    #[test]
    fn fault_rate_tracks_probability() {
        let plan = NetFaultPlan {
            seed: 1,
            dup_p: 0.2,
            ..NetFaultPlan::default()
        };
        let trials = 20_000u64;
        let hits = (0..trials)
            .filter(|&f| plan.dups((f % 7) as usize, NetDir::Send, f))
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed dup rate {rate}");
    }

    #[test]
    fn spec_parsing_round_trips_the_issue_example() {
        let plan: NetFaultPlan = "seed=7,delay=0.01,corrupt=0.001,reset=3@12"
            .parse()
            .unwrap();
        assert_eq!(plan.seed, 7);
        assert!((plan.delay_p - 0.01).abs() < 1e-12);
        assert!((plan.corrupt_p - 0.001).abs() < 1e-12);
        assert_eq!(plan.resets, vec![(3, 12)]);
        assert!(plan.hangs.is_empty());
        let plan: NetFaultPlan = "dup=0.05,hang=1@4+0@9".parse().unwrap();
        assert_eq!(plan.hangs, vec![(1, 4), (0, 9)]);
        assert!("".parse::<NetFaultPlan>().unwrap() == NetFaultPlan::default());
    }

    /// Every error path names the offending key and value, matching the
    /// `FaultPlan` spec convention, so a bad `--chaos-net` argument is
    /// diagnosable without reading this source file.
    #[test]
    fn spec_errors_name_the_offending_key_and_value() {
        let err = |spec: &str| spec.parse::<NetFaultPlan>().unwrap_err();

        let e = err("seed");
        assert!(e.contains("`seed`") && e.contains("key=value"), "{e}");
        let e = err("seed=abc");
        assert!(e.contains("`seed`") && e.contains("`abc`"), "{e}");
        let e = err("delay=oops");
        assert!(e.contains("`delay`") && e.contains("`oops`"), "{e}");
        let e = err("delay=1.5");
        assert!(e.contains("`delay`") && e.contains("outside [0, 1)"), "{e}");
        let e = err("dup=-0.1");
        assert!(e.contains("`dup`") && e.contains("outside [0, 1)"), "{e}");
        let e = err("corrupt=yes");
        assert!(e.contains("`corrupt`") && e.contains("`yes`"), "{e}");
        let e = err("reset=5");
        assert!(e.contains("`reset`") && e.contains("shard@round"), "{e}");
        let e = err("reset=x@3");
        assert!(e.contains("`reset`") && e.contains("`x`"), "{e}");
        let e = err("hang=3@y");
        assert!(e.contains("`hang`") && e.contains("`y`"), "{e}");
        let e = err("warp=9");
        assert!(e.contains("`warp`") && e.contains("valid keys"), "{e}");
        let e = err("delay=");
        assert!(e.contains("`delay`") && e.contains("empty value"), "{e}");
        let e = err("dup=0.1,dup=0.2");
        assert!(e.contains("`dup`") && e.contains("more than once"), "{e}");
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let plan: NetFaultPlan = "seed=9,delay=0.02,dup=0.01,corrupt=0.005,reset=1@3,hang=2@7"
            .parse()
            .unwrap();
        let json = serde::json::to_string(&plan);
        let back: NetFaultPlan = serde::json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn liveness_defaults_are_generous() {
        let live = Liveness::default();
        assert!(live.connect_timeout >= Duration::from_secs(5));
        assert!(live.barrier_timeout.unwrap() >= Duration::from_secs(10));
        assert!(live.heartbeat_every < live.worker_read_timeout);
    }
}
