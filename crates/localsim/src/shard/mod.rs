//! A sharded, multi-process backend for the LOCAL simulator.
//!
//! [`ShardedExecutor`] partitions the CSR graph into contiguous,
//! degree-weighted vertex ranges and runs each range in its own worker
//! (an OS process for `delta-color shard-serve`, or an in-process thread
//! for tests and benchmarks), connected to a coordinator over
//! length-prefixed TCP frames on loopback. Interior edges stay local to
//! their shard; only boundary-node state updates cross the wire each
//! round, under an epoch barrier that mirrors [`crate::pool`]'s clock
//! (`RoundGo` = epoch kick, all-`RoundDone` = barrier).
//!
//! The backend sits *behind* the existing executor semantics: given the
//! same graph, algorithm, and [`crate::FaultPlan`], an `N`-shard run
//! produces bit-identical outputs, round counts, and normalized
//! telemetry event streams as [`crate::Executor`] — including after a
//! worker is killed mid-run and resumed from a checkpoint (states are
//! pure functions of the round, never of hidden RNG position, so replay
//! re-derives identical transitions). `docs/DISTRIBUTED.md` documents
//! the wire format, partitioning, barrier and restart contracts, and the
//! `shard.*` metric names.

mod algo;
mod coord;
mod netfault;
mod proto;
mod topology;
mod wire;
pub mod worker;

pub use algo::{verify_wire_coloring, WireAlgo};
pub use coord::{ChaosKill, ShardError, ShardedExecutor, WorkerBackend};
pub use netfault::{Liveness, NetDir, NetFaultPlan, NET_DELAY};
pub use proto::{Frame, GhostUpdates, PROTO_VERSION};
pub use wire::{read_frame, write_frame, FrameMeter, FrameSeq, TxFault, MAX_FRAME};
pub use worker::{serve, serve_connect, serve_connect_with, serve_with, DEFAULT_READ_TIMEOUT};
