//! Wire algorithms: [`LocalAlgorithm`]s with `u64` state and output.
//!
//! The sharded runtime ships node states as raw little-endian `u64`s, so
//! the algorithms it can run are the ones expressible in that envelope.
//! Every variant here is a *pure* function of `(spec, round, uid,
//! neighbor states)` — no evolving RNG stream, no hidden per-node
//! scratch — which is what makes shard restarts bit-identical by
//! construction: replaying a round from a checkpoint re-derives exactly
//! the same transitions (the same property PR 5's snapshots exploit by
//! excluding RNG state).
//!
//! [`WireAlgo`] also implements [`LocalAlgorithm`] directly, so the same
//! value drives both the single-process [`crate::Executor`] and the
//! sharded backend — the equivalence suite runs one against the other.

use std::fmt;
use std::str::FromStr;

use crate::exec::{LocalAlgorithm, NodeCtx, Transition};

/// Decided flag for [`WireAlgo::Greedy`] states.
const GREEDY_DECIDED: u64 = 1 << 63;

/// Phase tag shift for [`WireAlgo::Rand`] states (top two bits).
const RAND_TAG_SHIFT: u32 = 62;
const RAND_UNDECIDED: u64 = 0;
const RAND_PROPOSING: u64 = 1;
const RAND_DECIDED: u64 = 2;
/// Payload bits of a [`WireAlgo::Rand`] state: the proposed or decided
/// color. Uids never live in the state — a neighbor's identity is its
/// port's node id, which is stable whether the state arrived fresh or
/// from the drop cache — so undecided is plain `0` and every state is
/// tag bits plus a small color, which the wire codec compresses to a
/// byte or two.
const RAND_VAL_MASK: u64 = (1 << RAND_TAG_SHIFT) - 1;

/// The 64-bit finalizer of splitmix64, also used by
/// [`crate::FaultPlan`]: a full-avalanche bijection, here the stateless
/// randomness source for [`WireAlgo::Rand`].
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// A distributed algorithm runnable over the shard wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireAlgo {
    /// Counts down from the node index and halts with the halt round —
    /// the executor test workload, halting independently of neighbors
    /// (so it terminates even under crash faults).
    Countdown,
    /// Every node halts with the maximum uid in its `target`-ball after
    /// `target` rounds.
    FloodMax {
        /// Rounds to flood before halting.
        target: u64,
    },
    /// Deterministic greedy (Δ+1)-coloring: an undecided node whose uid
    /// is locally maximal among undecided neighbors takes the smallest
    /// color unused by its decided neighbors. At least the globally
    /// maximal undecided node decides each round, so the run halts
    /// within `n + 1` rounds. Safe under message drops and jitter (a
    /// stale neighbor view only delays decisions, never miscolors).
    Greedy,
    /// Randomized (Δ+1)-coloring by repeated proposals: each undecided
    /// node proposes a round-salted pseudo-random color, keeps it unless
    /// a decided neighbor owns it or a proposing neighbor with a higher
    /// uid wants it, and halts once decided. Valid under jitter; under
    /// message *drops* a stale view can admit a conflicting decision, so
    /// validity is only guaranteed with reliable delivery (see
    /// `docs/DISTRIBUTED.md`).
    Rand {
        /// Seed salting every proposal.
        seed: u64,
    },
}

impl fmt::Display for WireAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireAlgo::Countdown => write!(f, "countdown"),
            WireAlgo::FloodMax { target } => write!(f, "floodmax:{target}"),
            WireAlgo::Greedy => write!(f, "greedy"),
            WireAlgo::Rand { seed } => write!(f, "rand:{seed}"),
        }
    }
}

impl FromStr for WireAlgo {
    type Err = String;

    fn from_str(spec: &str) -> Result<Self, String> {
        match spec.split_once(':') {
            None => match spec {
                "countdown" => Ok(WireAlgo::Countdown),
                "greedy" => Ok(WireAlgo::Greedy),
                other => Err(format!(
                    "unknown wire algorithm `{other}` \
                     (expected countdown, floodmax:T, greedy, or rand:SEED)"
                )),
            },
            Some(("floodmax", t)) => t
                .parse()
                .map(|target| WireAlgo::FloodMax { target })
                .map_err(|e| format!("bad floodmax target `{t}`: {e}")),
            Some(("rand", s)) => s
                .parse()
                .map(|seed| WireAlgo::Rand { seed })
                .map_err(|e| format!("bad rand seed `{s}`: {e}")),
            Some((other, _)) => Err(format!("unknown wire algorithm `{other}`")),
        }
    }
}

impl WireAlgo {
    /// Whether this algorithm's outputs form a (Δ+1)-coloring that
    /// `verify` should check.
    #[must_use]
    pub fn is_coloring(&self) -> bool {
        matches!(self, WireAlgo::Greedy | WireAlgo::Rand { .. })
    }

    /// The smallest color in `0..=deg` not used by any decided neighbor.
    fn greedy_mex(nbrs: &[u64]) -> u64 {
        let deg = nbrs.len();
        let mut used = vec![false; deg + 1];
        for &s in nbrs {
            if s & GREEDY_DECIDED != 0 {
                let c = (s & !GREEDY_DECIDED) as usize;
                if c <= deg {
                    used[c] = true;
                }
            }
        }
        used.iter().position(|&u| !u).expect("mex <= deg exists") as u64
    }
}

impl LocalAlgorithm for WireAlgo {
    type State = u64;
    type Output = u64;

    fn init(&self, ctx: &NodeCtx) -> u64 {
        match self {
            WireAlgo::Countdown => u64::from(ctx.node.0),
            WireAlgo::FloodMax { .. } | WireAlgo::Greedy => ctx.uid,
            WireAlgo::Rand { .. } => RAND_UNDECIDED << RAND_TAG_SHIFT,
        }
    }

    fn step(&self, ctx: &NodeCtx, state: &u64, nbrs: &[u64]) -> Transition<u64, u64> {
        match self {
            WireAlgo::Countdown => {
                if *state == 0 {
                    Transition::Halt(ctx.round)
                } else {
                    Transition::Continue(state - 1)
                }
            }
            WireAlgo::FloodMax { target } => {
                let m = nbrs.iter().copied().chain([*state]).max().unwrap();
                if ctx.round >= *target {
                    Transition::Halt(m)
                } else {
                    Transition::Continue(m)
                }
            }
            WireAlgo::Greedy => {
                if state & GREEDY_DECIDED != 0 {
                    return Transition::Halt(state & !GREEDY_DECIDED);
                }
                let blocked = nbrs.iter().any(|&s| s & GREEDY_DECIDED == 0 && s > *state);
                if blocked {
                    Transition::Continue(*state)
                } else {
                    Transition::Continue(GREEDY_DECIDED | Self::greedy_mex(nbrs))
                }
            }
            WireAlgo::Rand { seed } => match state >> RAND_TAG_SHIFT {
                RAND_DECIDED => Transition::Halt(state & RAND_VAL_MASK),
                RAND_UNDECIDED => {
                    // Propose a round-salted candidate in 0..=Δ.
                    let palette = ctx.max_degree as u64 + 1;
                    let c = mix(mix(seed ^ ctx.round).wrapping_add(ctx.uid)) % palette;
                    Transition::Continue((RAND_PROPOSING << RAND_TAG_SHIFT) | c)
                }
                _ => {
                    let c = state & RAND_VAL_MASK;
                    // A proposing neighbor's identity is its port's node
                    // id (`nbrs` is port-aligned with `ctx.neighbors`,
                    // drop cache included — a stale state still belongs
                    // to the same neighbor).
                    let conflict = ctx.neighbors.iter().zip(nbrs).any(|(w, &s)| {
                        let ntag = s >> RAND_TAG_SHIFT;
                        s & RAND_VAL_MASK == c
                            && (ntag == RAND_DECIDED
                                || (ntag == RAND_PROPOSING && u64::from(w.0) > ctx.uid))
                    });
                    if conflict {
                        Transition::Continue(RAND_UNDECIDED << RAND_TAG_SHIFT)
                    } else {
                        Transition::Continue((RAND_DECIDED << RAND_TAG_SHIFT) | c)
                    }
                }
            },
        }
    }
}

/// Checks that `outputs` is a proper coloring with at most `Δ+1` colors;
/// returns the number of distinct colors used.
pub fn verify_wire_coloring(g: &graphgen::Graph, outputs: &[u64]) -> Result<usize, String> {
    if outputs.len() != g.n() {
        return Err(format!("{} outputs for {} nodes", outputs.len(), g.n()));
    }
    let palette = g.max_degree() as u64 + 1;
    for (v, &c) in outputs.iter().enumerate() {
        if c >= palette {
            return Err(format!("node {v} has color {c} outside 0..{palette}"));
        }
    }
    for (u, v) in g.edges() {
        if outputs[u.index()] == outputs[v.index()] {
            return Err(format!(
                "edge ({}, {}) is monochromatic (color {})",
                u.0,
                v.0,
                outputs[u.index()]
            ));
        }
    }
    let mut seen = vec![false; palette as usize];
    for &c in outputs {
        seen[c as usize] = true;
    }
    Ok(seen.iter().filter(|&&s| s).count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use graphgen::Graph;

    fn clique(n: u32) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
            .collect();
        Graph::from_edges(n as usize, edges).unwrap()
    }

    #[test]
    fn specs_round_trip_through_display_and_parse() {
        for algo in [
            WireAlgo::Countdown,
            WireAlgo::FloodMax { target: 3 },
            WireAlgo::Greedy,
            WireAlgo::Rand { seed: 99 },
        ] {
            assert_eq!(algo.to_string().parse::<WireAlgo>().unwrap(), algo);
        }
        assert!("mis".parse::<WireAlgo>().is_err());
        assert!("rand:x".parse::<WireAlgo>().is_err());
    }

    #[test]
    fn greedy_colors_cliques_paths_and_random_graphs() {
        for g in [
            clique(8),
            graphgen::generators::path(17),
            graphgen::generators::gnp(40, 0.2, 3),
        ] {
            let run = Executor::new(&g)
                .run(&WireAlgo::Greedy, g.n() as u64 + 2)
                .unwrap();
            let colors = verify_wire_coloring(&g, &run.outputs).unwrap();
            assert!(colors <= g.max_degree() + 1);
        }
    }

    #[test]
    fn rand_colors_within_delta_plus_one() {
        for seed in [1, 7, 42] {
            let g = graphgen::generators::gnp(48, 0.15, seed);
            let run = Executor::new(&g)
                .run(&WireAlgo::Rand { seed }, 10_000)
                .unwrap();
            verify_wire_coloring(&g, &run.outputs).unwrap();
        }
    }

    #[test]
    fn verify_rejects_monochromatic_edges_and_palette_overflow() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        assert!(verify_wire_coloring(&g, &[0, 0]).is_err());
        assert!(verify_wire_coloring(&g, &[0, 9]).is_err());
        assert!(verify_wire_coloring(&g, &[0]).is_err());
        assert_eq!(verify_wire_coloring(&g, &[1, 0]).unwrap(), 2);
    }
}
