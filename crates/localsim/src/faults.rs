//! Seed-deterministic fault injection for the executors.
//!
//! A [`FaultPlan`] describes which faults to inject into a run: per-message
//! drops, scheduled node crashes, and bounded-asynchrony round jitter. All
//! three executors accept a plan via `with_faults` and replay it exactly.
//!
//! # Determinism
//!
//! Every probabilistic decision is a pure function of `(plan.seed, key)`
//! where the key names the affected object — a directed port slot and
//! round for drops, a node and jitter window for stalls. No decision
//! depends on iteration order, thread count, or any evolving RNG stream,
//! so a faulty run is bit-identical between the sequential schedule and
//! `with_threads(k)` for every `k`, and between repeated runs of the same
//! plan (see `docs/FAULTS.md` for the full argument).

use std::collections::BTreeMap;
use std::str::FromStr;

use graphgen::NodeId;
use serde::{Deserialize, Serialize};

/// Distinct hash streams so that drop and stall decisions for overlapping
/// integer keys never correlate.
const STREAM_DROP: u64 = 0xD09F_5CEE_D15A_57E5;
const STREAM_STALL: u64 = 0x57A1_1BAD_CAFE_F00D;

/// The 64-bit finalizer of splitmix64: a full-avalanche bijection.
/// Shared with the wire-level chaos plan (`shard::netfault`) so every
/// fault layer draws from the same deterministic primitive.
#[inline]
pub(crate) fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// A reproducible description of the faults to inject into one run.
///
/// The default plan injects nothing; executors treat it exactly like no
/// plan at all (no extra counters, no fault events).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for all probabilistic fault decisions.
    pub seed: u64,
    /// Probability that any single message is dropped in transit,
    /// in `[0, 1)`. In the state-exchange executor a "message" is one
    /// neighbor-state read: a dropped read leaves the reader seeing the
    /// state it last heard from that neighbor.
    pub message_drop_p: f64,
    /// Nodes to crash, as `(round, node)` pairs: at the start of the given
    /// round (1-based, like `NodeCtx::round`) the node freezes its state —
    /// visible to neighbors forever, like a halted node — but never
    /// produces an output. A run with crashed nodes ends in
    /// [`crate::SimError::Crashed`].
    pub node_crash: Vec<(u64, NodeId)>,
    /// Bounded-asynchrony jitter: within every window of
    /// `round_jitter + 1` consecutive rounds, each node steps in exactly
    /// one (seed-chosen) round and stalls in the others. `0` disables
    /// jitter.
    pub round_jitter: u64,
}

impl FaultPlan {
    /// Whether this plan injects anything at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.message_drop_p > 0.0 || self.round_jitter > 0 || !self.node_crash.is_empty()
    }

    /// A uniform value in `[0, 1)`, keyed by `(seed, stream, a, b)`.
    ///
    /// This is the primitive behind every probabilistic decision; other
    /// layers (e.g. the pipeline's detect-and-retry loop) may derive their
    /// own decisions from it with their own `stream` tags.
    #[must_use]
    pub fn unit(&self, stream: u64, a: u64, b: u64) -> f64 {
        let h = mix(mix(mix(self.seed ^ stream) ^ a).wrapping_add(b));
        // The top 53 bits, scaled to [0, 1).
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether the message occupying directed-port `slot` in (1-based)
    /// `round` is dropped.
    #[inline]
    #[must_use]
    pub fn drops_message(&self, round: u64, slot: usize) -> bool {
        self.message_drop_p > 0.0
            && self.unit(STREAM_DROP, round, slot as u64) < self.message_drop_p
    }

    /// Whether `node` stalls (skips its step) in (1-based) `round`.
    ///
    /// Rounds are partitioned into windows of `round_jitter + 1`; in each
    /// window the node steps exactly once, at a seed-chosen offset.
    #[inline]
    #[must_use]
    pub fn stalls(&self, node: NodeId, round: u64) -> bool {
        if self.round_jitter == 0 {
            return false;
        }
        let period = self.round_jitter + 1;
        let window = (round - 1) / period;
        let offset = (round - 1) % period;
        let h = mix(mix(self.seed ^ STREAM_STALL ^ u64::from(node.0)).wrapping_add(window));
        offset != h % period
    }

    /// The crash schedule grouped by round, nodes sorted and deduplicated
    /// within each round.
    #[must_use]
    pub fn crash_schedule(&self) -> BTreeMap<u64, Vec<NodeId>> {
        let mut sched: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
        for &(round, v) in &self.node_crash {
            sched.entry(round).or_default().push(v);
        }
        for nodes in sched.values_mut() {
            nodes.sort_unstable();
            nodes.dedup();
        }
        sched
    }
}

/// Parses the CLI spec format: comma-separated `key=value` pairs with
/// keys `seed`, `drop`, `jitter`, and `crash` (the latter a
/// `+`-separated list of `node@round` entries).
///
/// ```
/// use localsim::FaultPlan;
/// let plan: FaultPlan = "seed=7,drop=0.01,jitter=2,crash=3@5+9@5".parse()?;
/// assert_eq!(plan.seed, 7);
/// assert_eq!(plan.node_crash.len(), 2);
/// # Ok::<(), String>(())
/// ```
impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(spec: &str) -> Result<Self, String> {
        const KEYS: &str = "`seed`, `drop`, `jitter`, `crash`";
        let mut plan = FaultPlan::default();
        let mut seen: Vec<&str> = Vec::new();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part.split_once('=').ok_or_else(|| {
                format!(
                    "fault spec entry `{}` is not a `key=value` pair (valid keys: {KEYS})",
                    part.trim()
                )
            })?;
            let (key, value) = (key.trim(), value.trim());
            if value.is_empty() {
                return Err(format!("fault spec key `{key}` has an empty value"));
            }
            if let Some(&dup) = seen.iter().find(|&&k| k == key) {
                return Err(format!("fault spec key `{dup}` given more than once"));
            }
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|e| format!("key `seed`: bad value `{value}`: {e}"))?;
                    seen.push("seed");
                }
                "drop" => {
                    let p: f64 = value
                        .parse()
                        .map_err(|e| format!("key `drop`: bad probability `{value}`: {e}"))?;
                    if !(0.0..1.0).contains(&p) {
                        return Err(format!("key `drop`: probability `{value}` outside [0, 1)"));
                    }
                    plan.message_drop_p = p;
                    seen.push("drop");
                }
                "jitter" => {
                    plan.round_jitter = value
                        .parse()
                        .map_err(|e| format!("key `jitter`: bad value `{value}`: {e}"))?;
                    seen.push("jitter");
                }
                "crash" => {
                    for entry in value.split('+') {
                        let (node, round) = entry.split_once('@').ok_or_else(|| {
                            format!(
                                "key `crash`: entry `{entry}` is not `node@round` \
                                 (example: `crash=3@5+9@5`)"
                            )
                        })?;
                        let node: u32 = node.parse().map_err(|e| {
                            format!("key `crash`: bad node id `{node}` in entry `{entry}`: {e}")
                        })?;
                        let round: u64 = round.parse().map_err(|e| {
                            format!("key `crash`: bad round `{round}` in entry `{entry}`: {e}")
                        })?;
                        if round == 0 {
                            return Err(format!(
                                "key `crash`: entry `{entry}` crashes at round 0, \
                                 but crash rounds are 1-based"
                            ));
                        }
                        plan.node_crash.push((round, NodeId(node)));
                    }
                    seen.push("crash");
                }
                other => {
                    return Err(format!(
                        "unknown fault spec key `{other}` (valid keys: {KEYS})"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        assert!(!plan.drops_message(1, 0));
        assert!(!plan.stalls(NodeId(0), 1));
        assert!(plan.crash_schedule().is_empty());
    }

    #[test]
    fn decisions_are_reproducible_and_key_sensitive() {
        let plan = FaultPlan {
            seed: 42,
            message_drop_p: 0.5,
            round_jitter: 3,
            ..FaultPlan::default()
        };
        for round in 1..50 {
            for slot in 0..50 {
                assert_eq!(
                    plan.drops_message(round, slot),
                    plan.drops_message(round, slot)
                );
            }
            for v in 0..50 {
                assert_eq!(plan.stalls(NodeId(v), round), plan.stalls(NodeId(v), round));
            }
        }
        // Different seeds disagree somewhere.
        let other = FaultPlan {
            seed: 43,
            ..plan.clone()
        };
        assert!((1..200u64)
            .any(|r| (0..200).any(|s| plan.drops_message(r, s) != other.drops_message(r, s))));
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan {
            seed: 1,
            message_drop_p: 0.2,
            ..FaultPlan::default()
        };
        let trials = 20_000usize;
        let hits = (0..trials)
            .filter(|&s| plan.drops_message(1 + s as u64 / 100, s))
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn jitter_steps_once_per_window() {
        let plan = FaultPlan {
            seed: 9,
            round_jitter: 2,
            ..FaultPlan::default()
        };
        let period = plan.round_jitter + 1;
        for v in (0..40).map(NodeId) {
            for window in 0..20u64 {
                let steps = (1..=period)
                    .filter(|off| !plan.stalls(v, window * period + off))
                    .count();
                assert_eq!(steps, 1, "node {v:?} window {window}");
            }
        }
    }

    #[test]
    fn crash_schedule_groups_sorts_and_dedups() {
        let plan = FaultPlan {
            node_crash: vec![
                (4, NodeId(9)),
                (2, NodeId(5)),
                (4, NodeId(1)),
                (4, NodeId(9)),
            ],
            ..FaultPlan::default()
        };
        let sched = plan.crash_schedule();
        assert_eq!(sched[&2], vec![NodeId(5)]);
        assert_eq!(sched[&4], vec![NodeId(1), NodeId(9)]);
    }

    #[test]
    fn spec_parsing_round_trips_the_readme_example() {
        let plan: FaultPlan = "seed=7,drop=0.01,jitter=2,crash=3@5+9@5".parse().unwrap();
        assert_eq!(plan.seed, 7);
        assert!((plan.message_drop_p - 0.01).abs() < 1e-12);
        assert_eq!(plan.round_jitter, 2);
        assert_eq!(plan.node_crash, vec![(5, NodeId(3)), (5, NodeId(9))]);
    }

    #[test]
    fn spec_parsing_rejects_malformed_input() {
        assert!("drop=1.5".parse::<FaultPlan>().is_err());
        assert!("drop=-0.1".parse::<FaultPlan>().is_err());
        assert!("crash=5".parse::<FaultPlan>().is_err());
        assert!("crash=5@0".parse::<FaultPlan>().is_err());
        assert!("frobnicate=1".parse::<FaultPlan>().is_err());
        assert!("seed".parse::<FaultPlan>().is_err());
        assert!("".parse::<FaultPlan>().unwrap() == FaultPlan::default());
    }

    /// Every error path names the offending key and value, so a bad CLI
    /// spec is diagnosable without reading this source file.
    #[test]
    fn spec_errors_name_the_offending_key_and_value() {
        let err = |spec: &str| spec.parse::<FaultPlan>().unwrap_err();

        let e = err("seed");
        assert!(e.contains("`seed`") && e.contains("key=value"), "{e}");
        let e = err("seed=abc");
        assert!(e.contains("`seed`") && e.contains("`abc`"), "{e}");
        let e = err("drop=oops");
        assert!(e.contains("`drop`") && e.contains("`oops`"), "{e}");
        let e = err("drop=1.5");
        assert!(e.contains("`drop`") && e.contains("outside [0, 1)"), "{e}");
        let e = err("jitter=fast");
        assert!(e.contains("`jitter`") && e.contains("`fast`"), "{e}");
        let e = err("crash=5");
        assert!(e.contains("`crash`") && e.contains("node@round"), "{e}");
        let e = err("crash=x@3");
        assert!(e.contains("`crash`") && e.contains("`x`"), "{e}");
        let e = err("crash=3@y");
        assert!(e.contains("`crash`") && e.contains("`y`"), "{e}");
        let e = err("crash=3@0");
        assert!(e.contains("`crash`") && e.contains("1-based"), "{e}");
        let e = err("warp=9");
        assert!(e.contains("`warp`") && e.contains("valid keys"), "{e}");
        let e = err("seed=");
        assert!(e.contains("`seed`") && e.contains("empty value"), "{e}");
        let e = err("seed=1,seed=2");
        assert!(e.contains("`seed`") && e.contains("more than once"), "{e}");
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let plan = FaultPlan {
            seed: 7,
            message_drop_p: 0.01,
            node_crash: vec![(5, NodeId(3)), (5, NodeId(9))],
            round_jitter: 2,
        };
        let json = serde::json::to_string(&plan);
        let back: FaultPlan = serde::json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
