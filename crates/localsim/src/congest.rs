//! CONGEST-mode accounting: run a [`MessageProgram`] while *metering* the
//! size of every message against a per-edge bandwidth budget.
//!
//! The CONGEST model restricts each per-edge message to `O(log n)` bits.
//! The paper's companion results ([MU21], [HM24] in the related work) live
//! in CONGEST; this module lets any per-port algorithm declare its message
//! widths and verifies the budget mechanically, reporting the maximum
//! width observed.
//!
//! ```
//! use graphgen::Graph;
//! use localsim::{broadcast, CongestExecutor, MessageProgram, MsgTransition, NodeCtx, Outgoing};
//!
//! struct MinId;
//! impl MessageProgram for MinId {
//!     type State = u64;
//!     type Msg = u64;
//!     type Output = u64;
//!     fn init(&self, ctx: &NodeCtx) -> (u64, Vec<Outgoing<u64>>) {
//!         (ctx.uid, broadcast(ctx.degree(), &ctx.uid))
//!     }
//!     fn step(&self, ctx: &NodeCtx, state: &mut u64, inbox: &[Option<u64>])
//!         -> MsgTransition<u64, u64>
//!     {
//!         let m = inbox.iter().flatten().copied().min().unwrap_or(*state).min(*state);
//!         if ctx.round >= 3 {
//!             MsgTransition::HaltAfter(Vec::new(), m)
//!         } else {
//!             *state = m;
//!             MsgTransition::Continue(broadcast(ctx.degree(), &m))
//!         }
//!     }
//! }
//!
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
//! // ids fit in log2(n) = 2 bits... but the type is u64, so we declare
//! // the width as the bits needed for the value.
//! let ex = CongestExecutor::new(&g, 32, |m: &u64| 64 - m.leading_zeros() as usize);
//! let run = ex.run(&MinId, 10)?;
//! assert!(run.max_message_bits <= 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use graphgen::Graph;
use telemetry::{Event, Probe};

use crate::exec::{RunResult, SimError};
use crate::msg::{MessageExecutor, MessageProgram, MsgTransition, Outgoing};
use crate::NodeCtx;

/// Scope string under which [`CongestExecutor`] emits events.
pub const CONGEST_SCOPE: &str = "congest";

/// Bandwidth accounting for one round of a metered run.
///
/// `width_hist` buckets message widths by powers of two: a message of
/// width `w > 0` lands in bucket `w.next_power_of_two()`, zero-width
/// messages in bucket `0`. Buckets are sorted ascending. Histograms are
/// only populated when a probe is attached (they exist to feed
/// [`Event::CongestRound`]); unprobed runs keep the counts, max, and
/// totals but leave `width_hist` empty, skipping the per-message
/// bucketing scan on the hot path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundBits {
    /// Round index; `0` covers the messages sent by `init`.
    pub round: u64,
    /// Messages sent this round.
    pub messages: u64,
    /// Widest message this round (bits).
    pub max_bits: usize,
    /// Total bits sent this round.
    pub total_bits: u64,
    /// `(bucket_max_bits, count)` pairs, ascending by bucket.
    pub width_hist: Vec<(u64, u64)>,
}

/// Outcome of a metered run.
#[derive(Debug, Clone)]
pub struct CongestResult<O> {
    /// Per-node outputs.
    pub outputs: Vec<O>,
    /// Communication rounds.
    pub rounds: u64,
    /// Largest message width observed (bits).
    pub max_message_bits: usize,
    /// Total bits sent over the whole run.
    pub total_bits: u64,
    /// Per-round bandwidth accounting, indexed by send round.
    pub per_round: Vec<RoundBits>,
}

/// Errors from a metered run.
#[derive(Debug)]
pub enum CongestError {
    /// A message exceeded the bandwidth budget.
    BandwidthExceeded {
        /// Observed width (bits).
        bits: usize,
        /// The budget.
        budget: usize,
        /// Round in which it happened.
        round: u64,
    },
    /// Plain simulator failure.
    Sim(SimError),
}

impl std::fmt::Display for CongestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CongestError::BandwidthExceeded {
                bits,
                budget,
                round,
            } => {
                write!(
                    f,
                    "round {round}: a {bits}-bit message exceeds the {budget}-bit budget"
                )
            }
            CongestError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for CongestError {}

impl From<SimError> for CongestError {
    fn from(e: SimError) -> Self {
        CongestError::Sim(e)
    }
}

/// A [`MessageExecutor`] wrapper that meters message widths.
pub struct CongestExecutor<'g, F> {
    graph: &'g Graph,
    budget_bits: usize,
    size_of: F,
    probe: Probe,
    threads: usize,
    faults: Option<crate::FaultPlan>,
}

impl<'g, F> CongestExecutor<'g, F> {
    /// An executor over `graph` with the given per-message bit budget and
    /// width function.
    pub fn new(graph: &'g Graph, budget_bits: usize, size_of: F) -> Self {
        CongestExecutor {
            graph,
            budget_bits,
            size_of,
            probe: Probe::disabled(),
            threads: 1,
            faults: None,
        }
    }

    /// Injects a seed-deterministic [`crate::FaultPlan`] into the inner
    /// [`MessageExecutor`]. Dropped messages are still metered at the
    /// sender — the bits crossed the link before being lost — so
    /// bandwidth accounting is identical to the fault-free run of the
    /// same send schedule.
    #[must_use]
    pub fn with_faults(mut self, plan: crate::FaultPlan) -> Self {
        self.faults = plan.is_active().then_some(plan);
        self
    }

    /// Attaches a telemetry probe; runs then emit one
    /// [`Event::CongestRound`] per round (message count, width histogram,
    /// max/total bits) in addition to the inner executor's per-round
    /// events.
    #[must_use]
    pub fn with_probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Opts into deterministic parallel stepping of the inner
    /// [`MessageExecutor`] with `k` worker threads. Metering reductions
    /// are commutative (max/sum/histogram merge; the reported budget
    /// violation is the earliest-round one, widest within a round), so
    /// results and telemetry are identical to the sequential path.
    #[must_use]
    pub fn with_threads(mut self, k: usize) -> Self {
        self.threads = k.max(1);
        self
    }
}

/// Internal wrapper program that meters the inner program's messages.
///
/// Stats sit behind a `Mutex` so the wrapper stays `Sync` and can be
/// stepped by the inner executor's parallel path; every update is a
/// commutative reduction, keeping metered results schedule-independent.
struct Metered<'p, P, F> {
    inner: &'p P,
    size_of: F,
    budget: usize,
    /// Whether to build per-round width histograms (only when a probe
    /// listens; the scan is pure telemetry).
    hist: bool,
    stats: std::sync::Mutex<MeterStats>,
}

#[derive(Default)]
struct MeterStats {
    max_bits: usize,
    total_bits: u64,
    /// The earliest-round over-budget message (widest within that round):
    /// a deterministic choice under any stepping schedule.
    violation: Option<(usize, u64)>,
    per_round: Vec<RoundAcc>,
}

#[derive(Default)]
struct RoundAcc {
    messages: u64,
    max_bits: usize,
    total_bits: u64,
    hist: std::collections::BTreeMap<u64, u64>,
}

/// Power-of-two histogram bucket for a message width.
fn width_bucket(bits: usize) -> u64 {
    if bits == 0 {
        0
    } else {
        (bits as u64).next_power_of_two()
    }
}

impl<P: MessageProgram, F: Fn(&P::Msg) -> usize> Metered<'_, P, F> {
    fn meter(&self, outs: &[Outgoing<P::Msg>], round: u64) {
        if outs.is_empty() {
            return;
        }
        let mut stats = self.stats.lock().expect("meter mutex poisoned");
        let idx = round as usize;
        if stats.per_round.len() <= idx {
            stats.per_round.resize_with(idx + 1, RoundAcc::default);
        }
        for o in outs {
            let bits = (self.size_of)(&o.msg);
            stats.max_bits = stats.max_bits.max(bits);
            stats.total_bits += bits as u64;
            if bits > self.budget {
                stats.violation = Some(match stats.violation {
                    None => (bits, round),
                    Some((b, r)) if round < r || (round == r && bits > b) => (bits, round),
                    Some(v) => v,
                });
            }
            let acc = &mut stats.per_round[idx];
            acc.messages += 1;
            acc.max_bits = acc.max_bits.max(bits);
            acc.total_bits += bits as u64;
            if self.hist {
                *acc.hist.entry(width_bucket(bits)).or_default() += 1;
            }
        }
    }
}

impl<P: MessageProgram, F: Fn(&P::Msg) -> usize> MessageProgram for Metered<'_, P, F> {
    type State = P::State;
    type Msg = P::Msg;
    type Output = P::Output;

    fn init(&self, ctx: &NodeCtx) -> (Self::State, Vec<Outgoing<Self::Msg>>) {
        let (st, outs) = self.inner.init(ctx);
        self.meter(&outs, 0);
        (st, outs)
    }

    fn step(
        &self,
        ctx: &NodeCtx,
        state: &mut Self::State,
        inbox: &[Option<Self::Msg>],
    ) -> MsgTransition<Self::Msg, Self::Output> {
        let t = self.inner.step(ctx, state, inbox);
        match &t {
            MsgTransition::Continue(outs) | MsgTransition::HaltAfter(outs, _) => {
                self.meter(outs, ctx.round);
            }
        }
        t
    }
}

impl<'g, F> CongestExecutor<'g, F> {
    /// Runs `prog` with metering.
    ///
    /// # Errors
    ///
    /// [`CongestError::BandwidthExceeded`] on the first over-budget
    /// message; simulator errors otherwise.
    pub fn run<P>(
        &self,
        prog: &P,
        max_rounds: u64,
    ) -> Result<CongestResult<P::Output>, CongestError>
    where
        P: MessageProgram + Sync,
        P::State: Send,
        P::Msg: Send + Sync,
        P::Output: Send,
        F: Fn(&P::Msg) -> usize + Clone + Sync,
    {
        let metered = Metered {
            inner: prog,
            size_of: self.size_of.clone(),
            budget: self.budget_bits,
            hist: self.probe.enabled(),
            stats: std::sync::Mutex::new(MeterStats::default()),
        };
        let mut inner = MessageExecutor::new(self.graph)
            .with_probe(self.probe.clone())
            .with_threads(self.threads);
        if let Some(plan) = &self.faults {
            inner = inner.with_faults(plan.clone());
        }
        let run: RunResult<P::Output> = inner.run(&metered, max_rounds)?;
        let stats = metered.stats.into_inner().expect("meter mutex poisoned");
        // Bandwidth metrics are recorded even when the run ends in a
        // budget violation — the bits were sent before the check fired.
        if let Some(hub) = self.probe.metrics() {
            let messages: u64 = stats.per_round.iter().map(|r| r.messages).sum();
            hub.counter("congest.messages").add(messages);
            hub.counter("congest.total_bits").add(stats.total_bits);
            hub.watermark("congest.max_bits")
                .record(stats.max_bits as u64);
        }
        if let Some((bits, round)) = stats.violation {
            return Err(CongestError::BandwidthExceeded {
                bits,
                budget: self.budget_bits,
                round,
            });
        }
        let per_round: Vec<RoundBits> = stats
            .per_round
            .into_iter()
            .enumerate()
            .map(|(round, acc)| RoundBits {
                round: round as u64,
                messages: acc.messages,
                max_bits: acc.max_bits,
                total_bits: acc.total_bits,
                width_hist: acc.hist.into_iter().collect(),
            })
            .collect();
        for rb in &per_round {
            self.probe.emit_with(|| Event::CongestRound {
                round: rb.round,
                messages: rb.messages,
                max_bits: rb.max_bits as u64,
                total_bits: rb.total_bits,
                width_hist: rb.width_hist.clone(),
            });
        }
        Ok(CongestResult {
            outputs: run.outputs,
            rounds: run.rounds,
            max_message_bits: stats.max_bits,
            total_bits: stats.total_bits,
            per_round,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::broadcast;
    use graphgen::Graph;

    /// Each node broadcasts its uid once; width = significant bits.
    struct Ids;
    impl MessageProgram for Ids {
        type State = ();
        type Msg = u64;
        type Output = ();
        fn init(&self, ctx: &NodeCtx) -> ((), Vec<Outgoing<u64>>) {
            ((), broadcast(ctx.degree(), &ctx.uid))
        }
        fn step(&self, _c: &NodeCtx, _s: &mut (), _i: &[Option<u64>]) -> MsgTransition<u64, ()> {
            MsgTransition::HaltAfter(Vec::new(), ())
        }
    }

    fn width(m: &u64) -> usize {
        (64 - m.leading_zeros()) as usize
    }

    #[test]
    fn within_budget_reports_stats() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let ex = CongestExecutor::new(&g, 8, width);
        let out = ex.run(&Ids, 5).unwrap();
        assert_eq!(out.max_message_bits, 2); // uid 3 = 0b11
        assert!(out.total_bits > 0);
    }

    #[test]
    fn over_budget_rejected() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let ex = CongestExecutor::new(&g, 0, width);
        let err = ex.run(&Ids, 5).unwrap_err();
        assert!(matches!(
            err,
            CongestError::BandwidthExceeded {
                bits: 1,
                budget: 0,
                ..
            }
        ));
    }

    /// The module doc-comment's `MinId` program, verbatim.
    struct MinId;
    impl MessageProgram for MinId {
        type State = u64;
        type Msg = u64;
        type Output = u64;
        fn init(&self, ctx: &NodeCtx) -> (u64, Vec<Outgoing<u64>>) {
            (ctx.uid, broadcast(ctx.degree(), &ctx.uid))
        }
        fn step(
            &self,
            ctx: &NodeCtx,
            state: &mut u64,
            inbox: &[Option<u64>],
        ) -> MsgTransition<u64, u64> {
            let m = inbox
                .iter()
                .flatten()
                .copied()
                .min()
                .unwrap_or(*state)
                .min(*state);
            if ctx.round >= 3 {
                MsgTransition::HaltAfter(Vec::new(), m)
            } else {
                *state = m;
                MsgTransition::Continue(broadcast(ctx.degree(), &m))
            }
        }
    }

    #[test]
    fn min_id_per_round_histograms() {
        use telemetry::{Event, Probe, RecordingSink};

        let sink = std::sync::Arc::new(RecordingSink::new());
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let ex = CongestExecutor::new(&g, 32, width).with_probe(Probe::new(sink.clone()));
        let run = ex.run(&MinId, 10).unwrap();
        assert_eq!(run.rounds, 3);
        assert!(run.outputs.iter().all(|&m| m == 0));

        // Round 0 = init broadcasts: uid 0 (0 bits) once, uid 1 (1 bit)
        // twice, uids 2 and 3 (2 bits) three times over the path's ports.
        assert_eq!(run.per_round.len(), 3, "final round sends nothing");
        assert_eq!(
            run.per_round[0],
            RoundBits {
                round: 0,
                messages: 6,
                max_bits: 2,
                total_bits: 8,
                width_hist: vec![(0, 1), (1, 2), (2, 3)],
            }
        );
        // The minimum floods left-to-right, so widths shrink round over round.
        assert!(run.per_round[1].max_bits <= run.per_round[0].max_bits);
        assert_eq!(
            run.per_round.iter().map(|r| r.total_bits).sum::<u64>(),
            run.total_bits
        );

        let congest_events: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| matches!(e, Event::CongestRound { .. }))
            .collect();
        assert_eq!(congest_events.len(), 3);
        // The inner message executor also reports per-round liveness.
        assert_eq!(sink.rounds_seen(crate::msg::MSG_SCOPE), 3);
    }
}
