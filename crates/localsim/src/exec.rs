//! The synchronous state-exchange executor.

use std::fmt;
use std::sync::Mutex;

use graphgen::{Graph, NodeId};
use telemetry::{Event, FaultKind, Probe, Registry};

use crate::faults::FaultPlan;
use crate::par;
use crate::pool;

/// Density window for the columnar port-arena (SoA) fast path: engaged
/// only when the average degree `2m / n` lies in
/// `[SOA_MIN_AVG_DEGREE, SOA_MAX_AVG_DEGREE]`.
///
/// The arena turns the per-node neighbor gather into a read of one
/// contiguous, already-materialized slice, at the price of a scatter
/// (each node writes its new state into every neighbor's slot once per
/// round). That trade only pays once the gather's *random reads*
/// actually miss cache: measured on `random_regular(4096, d)` flood
/// runs (see docs/PERFORMANCE.md), the arena is ~25% faster at `d ∈
/// {5, 6}` but 40-50% *slower* at `d <= 4`, where adjacency is compact
/// enough (or, on paths/cycles, literally adjacent in memory) that
/// gathering is near-sequential and the scatter's reverse-port lookups
/// are pure overhead. Above the upper cutoff the arena would hold
/// `Θ(n²)` states on cliques and blow the cache, while the plain
/// gather out of the `n`-sized state buffer stays cache-resident.
const SOA_MIN_AVG_DEGREE: usize = 5;
const SOA_MAX_AVG_DEGREE: usize = 8;

/// Per-worker scratch for the parallel stepping path, allocated once
/// per run and reused across every round (epoch) — workers lock only
/// their own slot, so the locks are never contended.
struct SegScratch<S> {
    nbr_buf: Vec<S>,
    survivors: Vec<NodeId>,
    msgs: i64,
    dropped: i64,
    stalled: i64,
    seg_ns: Option<u64>,
}

/// One round's work packet for pool slot `i`: the segment of the live
/// worklist it owns plus disjoint mutable views of the shared buffers,
/// re-sliced every round as the worklist compacts.
struct SegWork<'a, S, O> {
    seg: &'a [NodeId],
    lo: usize,
    plo: usize,
    nxt_s: &'a mut [S],
    out_s: &'a mut [Option<O>],
    seen_s: &'a mut [S],
}

/// Slot-indexed work cells for one epoch: the `Mutex<Option<_>>` lets
/// each pool worker `take()` its packet through a shared reference.
type WorkCells<'a, S, O> = Vec<Mutex<Option<SegWork<'a, S, O>>>>;

/// Scope string under which [`Executor`] emits per-round events.
pub const EXEC_SCOPE: &str = "localsim";

/// Per-node context visible to a [`LocalAlgorithm`] in every round.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    /// The node being stepped.
    pub node: NodeId,
    /// A globally unique identifier for symmetry breaking. Defaults to the
    /// node index; [`Executor::with_uids`] installs arbitrary ids (e.g. for
    /// running a subroutine on a virtual graph whose nodes inherit ids).
    pub uid: u64,
    /// The sorted adjacency list of `node`.
    pub neighbors: &'a [NodeId],
    /// The current round number, starting at 1 for the first step.
    pub round: u64,
    /// Number of vertices in the network (global knowledge of `n` is the
    /// standard assumption in the LOCAL model).
    pub n: usize,
    /// Maximum degree Δ of the network (also standard global knowledge).
    pub max_degree: usize,
}

impl NodeCtx<'_> {
    /// Degree of the node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }
}

/// The result of one node step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transition<S, O> {
    /// Keep running with a new state (sent to neighbors next round).
    Continue(S),
    /// Halt with an output. The node's last state stays visible to
    /// neighbors, matching a terminated node whose output is known locally.
    Halt(O),
}

/// A distributed algorithm in synchronous state-exchange form.
///
/// Each round, every live node observes the previous-round states of all
/// neighbors (halted neighbors keep their final state visible) and either
/// continues with a new state or halts with an output. This formulation is
/// universal for the LOCAL model because messages are unbounded.
pub trait LocalAlgorithm {
    /// Per-node state, broadcast to neighbors each round.
    type State: Clone;
    /// Per-node output on halting.
    type Output;

    /// The state a node holds before the first communication round.
    fn init(&self, ctx: &NodeCtx) -> Self::State;

    /// One synchronous round at one node.
    fn step(
        &self,
        ctx: &NodeCtx,
        state: &Self::State,
        neighbor_states: &[Self::State],
    ) -> Transition<Self::State, Self::Output>;
}

/// Why a simulation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Not all nodes halted within the round budget.
    RoundLimitExceeded { limit: u64, still_running: usize },
    /// `with_uids` received a vector of the wrong length or with duplicates.
    BadUids(String),
    /// An injected fault plan crashed nodes that never produced an output;
    /// the rest of the network ran to completion in `rounds` rounds.
    Crashed { crashed: usize, rounds: u64 },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RoundLimitExceeded {
                limit,
                still_running,
            } => write!(
                f,
                "{still_running} nodes still running after the {limit}-round budget"
            ),
            SimError::BadUids(msg) => write!(f, "bad uid vector: {msg}"),
            SimError::Crashed { crashed, rounds } => write!(
                f,
                "{crashed} nodes crashed by fault injection never output \
                 (survivors finished after {rounds} rounds)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Outcome of a completed simulation.
#[derive(Debug, Clone)]
pub struct RunResult<O> {
    /// Output of every node, indexed by node id.
    pub outputs: Vec<O>,
    /// Number of communication rounds executed until the last node halted.
    /// A node that halts during round `r` has communicated `r` times.
    pub rounds: u64,
}

/// Runs [`LocalAlgorithm`]s over a graph.
#[derive(Debug)]
pub struct Executor<'g> {
    graph: &'g Graph,
    uids: Option<Vec<u64>>,
    probe: Probe,
    threads: usize,
    faults: Option<FaultPlan>,
}

impl<'g> Executor<'g> {
    /// An executor over `graph` with default uids (the node indices).
    pub fn new(graph: &'g Graph) -> Self {
        Executor {
            graph,
            uids: None,
            probe: Probe::disabled(),
            threads: 1,
            faults: None,
        }
    }

    /// Opts into deterministic parallel stepping with `k` worker threads
    /// (`k <= 1` keeps the sequential path).
    ///
    /// Each round the live worklist is split into contiguous segments,
    /// one per thread; every node still reads only the previous round's
    /// states, so outputs, round counts, and telemetry events are
    /// bit-identical to the sequential schedule regardless of `k`.
    #[must_use]
    pub fn with_threads(mut self, k: usize) -> Self {
        self.threads = k.max(1);
        self
    }

    /// Attaches a telemetry probe; every run then emits one
    /// [`telemetry::Event::Round`] per simulated round under the
    /// [`EXEC_SCOPE`] scope (live-node count, halts, halted fraction).
    #[must_use]
    pub fn with_probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Injects the given seed-deterministic [`FaultPlan`] into every run:
    /// dropped neighbor-state reads (the reader keeps seeing the last
    /// state it heard), scheduled node crashes (frozen like halted nodes,
    /// reported via [`telemetry::Event::Fault`] and
    /// [`SimError::Crashed`]), and bounded-asynchrony stalls. Faulty runs
    /// stay bit-identical between the sequential and parallel stepping
    /// paths (see `docs/FAULTS.md`). An inactive plan is a no-op.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan.is_active().then_some(plan);
        self
    }

    /// Installs explicit unique identifiers (one per node).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadUids`] if the vector length differs from `n`
    /// or contains duplicates.
    pub fn with_uids(graph: &'g Graph, uids: Vec<u64>) -> Result<Self, SimError> {
        if uids.len() != graph.n() {
            return Err(SimError::BadUids(format!(
                "{} uids for {} nodes",
                uids.len(),
                graph.n()
            )));
        }
        let mut sorted = uids.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(SimError::BadUids("duplicate uid".to_string()));
        }
        Ok(Executor {
            graph,
            uids: Some(uids),
            probe: Probe::disabled(),
            threads: 1,
            faults: None,
        })
    }

    /// Runs `algo` until every node halts, or fails after `max_rounds`.
    ///
    /// The loop is allocation-free on the steady state: node states live
    /// in two buffers swapped every round (no per-round clone of all `n`
    /// states — a node's state is cloned exactly once, when it halts, to
    /// freeze it in both buffers), halted nodes are skipped via a
    /// compacting live worklist rather than a full vertex scan, and the
    /// neighbor-state scratch buffer is reused across rounds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if nodes are still running
    /// after `max_rounds` communication rounds, or [`SimError::Crashed`]
    /// if an injected fault plan crashed nodes before they could output.
    pub fn run<A>(&self, algo: &A, max_rounds: u64) -> Result<RunResult<A::Output>, SimError>
    where
        A: LocalAlgorithm + Sync,
        A::State: Send + Sync,
        A::Output: Send,
    {
        let n = self.graph.n();
        if n == 0 {
            return Ok(RunResult {
                outputs: Vec::new(),
                rounds: 0,
            });
        }
        // Per-run invariants, hoisted out of the per-node hot loop.
        let graph = self.graph;
        let max_degree = graph.max_degree();
        let uids = self.uids.as_deref();
        let make_ctx = move |v: NodeId, round: u64| NodeCtx {
            node: v,
            uid: uids.map_or(u64::from(v.0), |u| u[v.index()]),
            neighbors: graph.neighbors(v),
            round,
            n,
            max_degree,
        };
        let mut cur: Vec<A::State> = Vec::with_capacity(n);
        for v in graph.vertices() {
            cur.push(algo.init(&make_ctx(v, 0)));
        }
        // The write buffer starts as a copy so that entries the first
        // round never writes (there are none while all nodes are live)
        // are still initialized; after that, swaps replace cloning.
        let mut nxt: Vec<A::State> = cur.clone();
        let mut outputs: Vec<Option<A::Output>> = (0..n).map(|_| None).collect();
        let mut live_list: Vec<NodeId> = graph.vertices().collect();
        let mut rounds = 0;
        let mut registry = Registry::new();
        let c_live = registry.counter("live_nodes");
        let c_halted = registry.counter("halted");
        let c_msgs = registry.counter("messages_sent");
        let g_halted_frac = registry.gauge("halted_fraction");
        // Whole-run metrics, recorded only with a hub on the probe. The
        // `_ns` timings are nondeterministic by convention; the round and
        // worklist accounting is bit-identical at every thread count.
        let hub = self.probe.metrics();
        let m_rounds = hub.map(|h| h.counter("exec.rounds"));
        let m_live_peak = hub.map(|h| h.watermark("exec.live_peak"));
        let m_round_ns = hub.map(|h| h.histogram("exec.round_ns"));
        let m_segment_ns = hub.map(|h| h.histogram("exec.segment_ns"));
        let meter_segments = m_segment_ns.is_some();
        // Fault machinery. Everything below is inert (no extra counters,
        // no per-node branches taken) unless a plan is active, so
        // fault-free runs keep byte-identical telemetry.
        let inert = FaultPlan::default();
        let plan = self.faults.as_ref().unwrap_or(&inert);
        let drop_on = plan.message_drop_p > 0.0;
        let jitter_on = plan.round_jitter > 0;
        let crash_sched = plan.crash_schedule();
        let c_dropped = drop_on.then(|| registry.counter("messages_dropped"));
        let c_stalled = jitter_on.then(|| registry.counter("stalled_nodes"));
        let mut crashed = 0usize;
        let offsets = graph.csr_offsets();
        // Per-directed-port "last heard" cache for message drops: slot
        // `offsets[v] + p` holds the state of v's p-th neighbor as last
        // successfully read by v. Seeded with the init states (the setup
        // exchange is reliable); a dropped read keeps the stale entry.
        let mut seen: Vec<A::State> = Vec::new();
        if drop_on {
            seen.reserve_exact(offsets[n]);
            for v in graph.vertices() {
                seen.extend(graph.neighbors(v).iter().map(|w| cur[w.index()].clone()));
            }
        }
        let mut nbr_buf: Vec<A::State> = Vec::with_capacity(max_degree);
        let clean = self.faults.is_none();
        // Columnar (SoA) port-arena fast path for sequential fault-free
        // runs on sparse graphs: slot `offsets[v] + p` of the read arena
        // holds the state of v's p-th neighbor, maintained by *scatter*
        // (a node writes its new state into its neighbors' slots once
        // per round) instead of gather. Stepping a node then reads one
        // contiguous slice — no per-neighbor indexed clone, no scratch
        // buffer — and a halted neighbor's frozen state is re-read for
        // free instead of being re-cloned every round. The arenas are
        // double-buffered like the node states; on halt the frozen state
        // is scattered into the write arena so both buffers agree on the
        // node forever (the read arena already holds it).
        let use_soa = self.threads <= 1
            && clean
            && offsets[n] >= SOA_MIN_AVG_DEGREE * n
            && offsets[n] <= SOA_MAX_AVG_DEGREE * n;
        let rev = use_soa.then(|| graph.reverse_ports());
        let mut cur_ports: Vec<A::State> = Vec::new();
        let mut nxt_ports: Vec<A::State> = Vec::new();
        if use_soa {
            cur_ports.reserve_exact(offsets[n]);
            for v in graph.vertices() {
                cur_ports.extend(graph.neighbors(v).iter().map(|w| cur[w.index()].clone()));
            }
            nxt_ports = cur_ports.clone();
        }
        // Parallel stepping machinery: the worker pool is leased once
        // per run (first parallel round) and parked between rounds; the
        // per-slot scratch persists across rounds.
        let mut pool_lease: Option<pool::PoolLease> = None;
        let scratches: Vec<Mutex<SegScratch<A::State>>> = if self.threads > 1 {
            (0..self.threads)
                .map(|_| {
                    Mutex::new(SegScratch {
                        nbr_buf: Vec::with_capacity(max_degree),
                        survivors: Vec::new(),
                        msgs: 0,
                        dropped: 0,
                        stalled: 0,
                        seg_ns: None,
                    })
                })
                .collect()
        } else {
            Vec::new()
        };
        while !live_list.is_empty() {
            if rounds >= max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: max_rounds,
                    still_running: live_list.len(),
                });
            }
            rounds += 1;
            // Crashes fire at the start of their round, before any node
            // steps: the node freezes its last state (visible to neighbors
            // forever, like a halted node) but will never output.
            if let Some(nodes) = crash_sched.get(&rounds) {
                for &v in nodes {
                    if let Ok(pos) = live_list.binary_search(&v) {
                        live_list.remove(pos);
                        nxt[v.index()] = cur[v.index()].clone();
                        crashed += 1;
                        self.probe.emit_with(|| Event::Fault {
                            scope: EXEC_SCOPE.to_string(),
                            round: rounds - 1,
                            kind: FaultKind::Crash,
                            node: Some(u64::from(v.0)),
                            count: 1,
                        });
                    }
                }
            }
            c_live.set(live_list.len() as i64);
            if let Some(m) = &m_rounds {
                m.incr();
            }
            if let Some(w) = &m_live_peak {
                w.record(live_list.len() as u64);
            }
            let round_start = m_round_ns.as_ref().map(|_| std::time::Instant::now());
            let mut dropped = 0i64;
            let mut stalled = 0i64;
            if self.threads > 1 && live_list.len() > 1 {
                let segs = par::segments_weighted(&live_list, self.threads, offsets);
                let ranges = par::segment_ranges(&segs);
                // Each worker owns the contiguous port range of its node
                // range, so the drop cache splits without overlap.
                let port_ranges: Vec<(usize, usize)> = if drop_on {
                    ranges
                        .iter()
                        .map(|&(lo, hi)| (offsets[lo], offsets[hi]))
                        .collect()
                } else {
                    ranges.iter().map(|_| (0, 0)).collect()
                };
                let nxt_slices = par::split_ranges(&mut nxt, &ranges);
                let out_slices = par::split_ranges(&mut outputs, &ranges);
                let seen_slices = par::split_ranges(&mut seen, &port_ranges);
                let cur_ref = &cur;
                let plan_ref = plan;
                // Pool slot i owns segment i; slots past the segment
                // count idle this epoch. The static assignment (plus the
                // merge below walking scratches in slot order) keeps the
                // schedule — and thus every counter — bit-identical to
                // the sequential path.
                let work: WorkCells<'_, A::State, A::Output> = segs
                    .iter()
                    .zip(ranges.iter().zip(port_ranges.iter()))
                    .zip(
                        nxt_slices
                            .into_iter()
                            .zip(out_slices.into_iter().zip(seen_slices)),
                    )
                    .map(|((seg, (&(lo, _), &(plo, _))), (nxt_s, (out_s, seen_s)))| {
                        Mutex::new(Some(SegWork {
                            seg,
                            lo,
                            plo,
                            nxt_s,
                            out_s,
                            seen_s,
                        }))
                    })
                    .collect();
                let pool = pool_lease.get_or_insert_with(|| pool::lease(self.threads));
                pool.run_epoch(&|slot| {
                    let Some(w) = work
                        .get(slot)
                        .and_then(|m| m.lock().expect("work slot poisoned").take())
                    else {
                        return;
                    };
                    let mut guard = scratches[slot].lock().expect("scratch poisoned");
                    let sc = &mut *guard;
                    let seg_start = meter_segments.then(std::time::Instant::now);
                    for &v in w.seg {
                        if jitter_on && plan_ref.stalls(v, rounds) {
                            // Keep the state across the buffer swap; the
                            // node stays live.
                            w.nxt_s[v.index() - w.lo] = cur_ref[v.index()].clone();
                            sc.stalled += 1;
                            sc.survivors.push(v);
                            continue;
                        }
                        sc.nbr_buf.clear();
                        if drop_on {
                            let base = offsets[v.index()];
                            for (p, nb) in graph.neighbors(v).iter().enumerate() {
                                let slot = base + p;
                                if plan_ref.drops_message(rounds, slot) {
                                    sc.dropped += 1;
                                } else {
                                    w.seen_s[slot - w.plo] = cur_ref[nb.index()].clone();
                                }
                            }
                            let deg = graph.neighbors(v).len();
                            sc.nbr_buf
                                .extend(w.seen_s[base - w.plo..base - w.plo + deg].iter().cloned());
                            sc.msgs += deg as i64;
                        } else {
                            sc.nbr_buf.extend(
                                graph
                                    .neighbors(v)
                                    .iter()
                                    .map(|nb| cur_ref[nb.index()].clone()),
                            );
                            sc.msgs += sc.nbr_buf.len() as i64;
                        }
                        let ctx = make_ctx(v, rounds);
                        match algo.step(&ctx, &cur_ref[v.index()], &sc.nbr_buf) {
                            Transition::Continue(s) => {
                                w.nxt_s[v.index() - w.lo] = s;
                                sc.survivors.push(v);
                            }
                            Transition::Halt(o) => {
                                w.out_s[v.index() - w.lo] = Some(o);
                                w.nxt_s[v.index() - w.lo] = cur_ref[v.index()].clone();
                            }
                        }
                    }
                    sc.seg_ns = seg_start
                        .map(|s| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX));
                });
                // Merge in segment (= slot) order: counters and the
                // compacted worklist come out identical to the
                // sequential schedule.
                let seg_count = segs.len();
                drop(work);
                let before = live_list.len();
                live_list.clear();
                for m in scratches.iter().take(seg_count) {
                    let mut guard = m.lock().expect("scratch poisoned");
                    let sc = &mut *guard;
                    c_msgs.add(sc.msgs);
                    sc.msgs = 0;
                    dropped += sc.dropped;
                    sc.dropped = 0;
                    stalled += sc.stalled;
                    sc.stalled = 0;
                    live_list.append(&mut sc.survivors);
                    if let (Some(h), Some(ns)) = (&m_segment_ns, sc.seg_ns.take()) {
                        h.observe(ns);
                    }
                }
                c_halted.add((before - live_list.len()) as i64);
            } else if use_soa {
                // Sequential SoA arm (fault-free, sparse): read the
                // contiguous port-arena inbox, scatter the new state into
                // neighbors' write-arena slots.
                let rev = rev.expect("reverse ports computed for SoA runs");
                let mut msgs = 0i64;
                let mut halts = 0i64;
                // Manual compaction instead of `Vec::retain`: the retain
                // closure boundary costs ~40% on fine-grained steps (see
                // docs/PERFORMANCE.md), and an index loop writes the
                // survivor list with the same single pass.
                let mut kept = 0usize;
                for i in 0..live_list.len() {
                    let v = live_list[i];
                    let base = offsets[v.index()];
                    let deg = offsets[v.index() + 1] - base;
                    msgs += deg as i64;
                    let ctx = make_ctx(v, rounds);
                    match algo.step(&ctx, &cur[v.index()], &cur_ports[base..base + deg]) {
                        Transition::Continue(s) => {
                            for (p, w) in graph.neighbors(v).iter().enumerate() {
                                nxt_ports[offsets[w.index()] + rev[base + p] as usize] = s.clone();
                            }
                            nxt[v.index()] = s;
                            live_list[kept] = v;
                            kept += 1;
                        }
                        Transition::Halt(o) => {
                            outputs[v.index()] = Some(o);
                            let frozen = cur[v.index()].clone();
                            // Freeze into the write arena too: the read
                            // arena already holds this state, so after
                            // this round both buffers agree on v forever.
                            for (p, w) in graph.neighbors(v).iter().enumerate() {
                                nxt_ports[offsets[w.index()] + rev[base + p] as usize] =
                                    frozen.clone();
                            }
                            nxt[v.index()] = frozen;
                            halts += 1;
                        }
                    }
                }
                live_list.truncate(kept);
                c_msgs.add(msgs);
                c_halted.add(halts);
            } else if clean {
                // Sequential fault-free gather arm (dense graphs, or a
                // parallel run compacted down to one live node): no fault
                // branches, counters accumulated locally and flushed once
                // per round.
                let mut msgs = 0i64;
                let mut halts = 0i64;
                // Manual compaction, same rationale as the SoA arm above.
                let mut kept = 0usize;
                for i in 0..live_list.len() {
                    let v = live_list[i];
                    nbr_buf.clear();
                    nbr_buf.extend(graph.neighbors(v).iter().map(|w| cur[w.index()].clone()));
                    // A live node observes one state per incident edge this
                    // round: one message per edge endpoint (frozen states of
                    // halted neighbors included — see the Event::Round docs).
                    msgs += nbr_buf.len() as i64;
                    let ctx = make_ctx(v, rounds);
                    match algo.step(&ctx, &cur[v.index()], &nbr_buf) {
                        Transition::Continue(s) => {
                            nxt[v.index()] = s;
                            live_list[kept] = v;
                            kept += 1;
                        }
                        Transition::Halt(o) => {
                            outputs[v.index()] = Some(o);
                            nxt[v.index()] = cur[v.index()].clone();
                            halts += 1;
                        }
                    }
                }
                live_list.truncate(kept);
                c_msgs.add(msgs);
                c_halted.add(halts);
            } else {
                live_list.retain(|&v| {
                    if jitter_on && plan.stalls(v, rounds) {
                        // Stalled: skip the step but keep the state across
                        // the buffer swap; the node stays live.
                        nxt[v.index()] = cur[v.index()].clone();
                        stalled += 1;
                        return true;
                    }
                    nbr_buf.clear();
                    if drop_on {
                        let base = offsets[v.index()];
                        for (p, w) in graph.neighbors(v).iter().enumerate() {
                            let slot = base + p;
                            if plan.drops_message(rounds, slot) {
                                dropped += 1;
                            } else {
                                seen[slot] = cur[w.index()].clone();
                            }
                        }
                        let deg = graph.neighbors(v).len();
                        nbr_buf.extend(seen[base..base + deg].iter().cloned());
                        c_msgs.add(deg as i64);
                    } else {
                        nbr_buf.extend(graph.neighbors(v).iter().map(|w| cur[w.index()].clone()));
                        // A live node observes one state per incident edge this
                        // round: one message per edge endpoint (frozen states of
                        // halted neighbors included — see the Event::Round docs).
                        c_msgs.add(nbr_buf.len() as i64);
                    }
                    let ctx = make_ctx(v, rounds);
                    match algo.step(&ctx, &cur[v.index()], &nbr_buf) {
                        Transition::Continue(s) => {
                            nxt[v.index()] = s;
                            true
                        }
                        Transition::Halt(o) => {
                            outputs[v.index()] = Some(o);
                            // Freeze the final state in the write buffer:
                            // both buffers now agree on v forever, so swaps
                            // keep it visible to running neighbors.
                            nxt[v.index()] = cur[v.index()].clone();
                            c_halted.inc();
                            false
                        }
                    }
                });
            }
            if dropped > 0 {
                if let Some(c) = &c_dropped {
                    c.add(dropped);
                }
                self.probe.emit_with(|| Event::Fault {
                    scope: EXEC_SCOPE.to_string(),
                    round: rounds - 1,
                    kind: FaultKind::Drop,
                    node: None,
                    count: dropped as u64,
                });
            }
            if stalled > 0 {
                if let Some(c) = &c_stalled {
                    c.add(stalled);
                }
                self.probe.emit_with(|| Event::Fault {
                    scope: EXEC_SCOPE.to_string(),
                    round: rounds - 1,
                    kind: FaultKind::Stall,
                    node: None,
                    count: stalled as u64,
                });
            }
            std::mem::swap(&mut cur, &mut nxt);
            if use_soa {
                std::mem::swap(&mut cur_ports, &mut nxt_ports);
            }
            g_halted_frac.set((n - live_list.len()) as f64 / n as f64);
            registry.emit_round(&self.probe, EXEC_SCOPE, rounds - 1);
            if let (Some(h), Some(start)) = (&m_round_ns, round_start) {
                h.observe(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
        }
        if crashed > 0 {
            return Err(SimError::Crashed { crashed, rounds });
        }
        Ok(RunResult {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("all nodes halted"))
                .collect(),
            rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::Graph;

    /// Counts down from the node index, demonstrating asynchronous halting.
    struct Countdown;

    impl LocalAlgorithm for Countdown {
        type State = u32;
        type Output = u64;

        fn init(&self, ctx: &NodeCtx) -> u32 {
            ctx.node.0
        }

        fn step(&self, ctx: &NodeCtx, state: &u32, _nbrs: &[u32]) -> Transition<u32, u64> {
            if *state == 0 {
                Transition::Halt(ctx.round)
            } else {
                Transition::Continue(state - 1)
            }
        }
    }

    #[test]
    fn countdown_rounds() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let run = Executor::new(&g).run(&Countdown, 100).unwrap();
        assert_eq!(run.rounds, 4); // node 3 halts in round 4
        assert_eq!(run.outputs, vec![1, 2, 3, 4]);
    }

    /// Flood-max: every node learns the maximum uid within its r-ball after
    /// r rounds; halting after `target` rounds.
    struct FloodMax {
        target: u64,
    }

    impl LocalAlgorithm for FloodMax {
        type State = u64;
        type Output = u64;

        fn init(&self, ctx: &NodeCtx) -> u64 {
            ctx.uid
        }

        fn step(&self, ctx: &NodeCtx, state: &u64, nbrs: &[u64]) -> Transition<u64, u64> {
            let m = nbrs.iter().copied().chain([*state]).max().unwrap();
            if ctx.round >= self.target {
                Transition::Halt(m)
            } else {
                Transition::Continue(m)
            }
        }
    }

    #[test]
    fn flood_max_spreads_one_hop_per_round() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        // After 2 rounds node 0 knows the max within distance 2 = uid 2.
        let run = Executor::new(&g).run(&FloodMax { target: 2 }, 10).unwrap();
        assert_eq!(run.outputs[0], 2);
        assert_eq!(run.outputs[2], 4);
        assert_eq!(run.rounds, 2);
    }

    #[test]
    fn custom_uids_respected() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let ex = Executor::with_uids(&g, vec![100, 50]).unwrap();
        let run = ex.run(&FloodMax { target: 1 }, 10).unwrap();
        assert_eq!(run.outputs, vec![100, 100]);
    }

    #[test]
    fn bad_uids_rejected() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        assert!(Executor::with_uids(&g, vec![1]).is_err());
        assert!(Executor::with_uids(&g, vec![1, 1]).is_err());
    }

    #[test]
    fn round_limit_enforced() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let err = Executor::new(&g).run(&Countdown, 1).unwrap_err();
        assert_eq!(
            err,
            SimError::RoundLimitExceeded {
                limit: 1,
                still_running: 1
            }
        );
    }

    #[test]
    fn empty_graph_runs_zero_rounds() {
        let g = Graph::from_edges(0, []).unwrap();
        let run = Executor::new(&g).run(&Countdown, 1).unwrap();
        assert_eq!(run.rounds, 0);
        assert!(run.outputs.is_empty());
    }

    /// Halted nodes keep their final state visible to running neighbors.
    struct WatchNeighbor;

    impl LocalAlgorithm for WatchNeighbor {
        type State = u32;
        type Output = u32;

        fn init(&self, ctx: &NodeCtx) -> u32 {
            ctx.node.0 * 10
        }

        fn step(&self, ctx: &NodeCtx, _state: &u32, nbrs: &[u32]) -> Transition<u32, u32> {
            if ctx.node.0 == 0 {
                // Node 0 halts immediately; its state 0 remains visible.
                Transition::Halt(99)
            } else if ctx.round == 3 {
                Transition::Halt(nbrs[0])
            } else {
                Transition::Continue(7)
            }
        }
    }

    #[test]
    fn halted_state_stays_visible() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let run = Executor::new(&g).run(&WatchNeighbor, 10).unwrap();
        assert_eq!(run.outputs[1], 0); // sees node 0's frozen init state
    }

    /// Pins the `messages_sent` accounting convention (documented on
    /// [`telemetry::Event::Round`]): a *live* node is charged one message
    /// per incident edge every round, including edges to halted neighbors
    /// whose frozen state it re-reads; an edge with both endpoints halted
    /// charges nothing because neither endpoint is stepped.
    #[test]
    fn frozen_neighbor_states_are_charged_to_live_readers() {
        use telemetry::{Event, RecordingSink};

        let sink = std::sync::Arc::new(RecordingSink::new());
        // Path 0-1-2: node 0 halts in round 1 (state 0), node 1 in round 2,
        // node 2 in round 3.
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        Executor::new(&g)
            .with_probe(Probe::new(sink.clone()))
            .run(&Countdown, 10)
            .unwrap();
        let per_round: Vec<i64> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Round { counters, .. } => counters
                    .iter()
                    .find(|(n, _)| n == "messages_sent")
                    .map(|(_, v)| *v),
                _ => None,
            })
            .collect();
        // Round 1: all three live -> degree sum 4. Round 2: nodes 1 and 2
        // live -> 2 + 1 = 3, including node 1 reading halted node 0's
        // frozen state. Round 3: only node 2 live -> 1, its single edge to
        // the halted node 1. The halted edge {0,1} charges nothing in
        // round 3.
        assert_eq!(per_round, vec![4, 3, 1]);
    }

    #[test]
    fn parallel_path_matches_sequential() {
        use telemetry::RecordingSink;

        let g = graphgen::generators::gnp(37, 0.15, 5);
        // This graph must sit inside the SoA density window so the
        // sequential side runs the port-arena arm and this test pins
        // SoA-vs-gather (parallel runs always gather) equivalence.
        let ports = g.csr_offsets()[g.n()];
        assert!(
            ports >= SOA_MIN_AVG_DEGREE * g.n() && ports <= SOA_MAX_AVG_DEGREE * g.n(),
            "test graph left the SoA window (avg degree {:.2})",
            ports as f64 / g.n() as f64
        );
        let seq_sink = std::sync::Arc::new(RecordingSink::new());
        let seq = Executor::new(&g)
            .with_probe(Probe::new(seq_sink.clone()))
            .run(&Countdown, 100)
            .unwrap();
        for k in [2, 3, 8, 64] {
            let par_sink = std::sync::Arc::new(RecordingSink::new());
            let par = Executor::new(&g)
                .with_threads(k)
                .with_probe(Probe::new(par_sink.clone()))
                .run(&Countdown, 100)
                .unwrap();
            assert_eq!(par.outputs, seq.outputs, "threads={k}");
            assert_eq!(par.rounds, seq.rounds, "threads={k}");
            assert_eq!(par_sink.events(), seq_sink.events(), "threads={k}");
        }
    }

    #[test]
    fn probe_sees_one_event_per_round() {
        use telemetry::{Event, RecordingSink};

        let sink = std::sync::Arc::new(RecordingSink::new());
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let run = Executor::new(&g)
            .with_probe(Probe::new(sink.clone()))
            .run(&Countdown, 100)
            .unwrap();
        assert_eq!(sink.rounds_seen(EXEC_SCOPE), run.rounds);
        // Round 0: 4 live, node 0 halts immediately, and every node shows
        // its state across each incident edge (degree sum 6 on the path).
        assert_eq!(
            sink.events()[0],
            Event::Round {
                scope: EXEC_SCOPE.into(),
                round: 0,
                counters: vec![
                    ("live_nodes".into(), 4),
                    ("halted".into(), 1),
                    ("messages_sent".into(), 6),
                ],
                gauges: vec![("halted_fraction".into(), 0.25)],
            }
        );
    }
}
