//! The synchronous state-exchange executor.

use std::fmt;

use graphgen::{Graph, NodeId};
use telemetry::{Probe, Registry};

/// Scope string under which [`Executor`] emits per-round events.
pub const EXEC_SCOPE: &str = "localsim";

/// Per-node context visible to a [`LocalAlgorithm`] in every round.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    /// The node being stepped.
    pub node: NodeId,
    /// A globally unique identifier for symmetry breaking. Defaults to the
    /// node index; [`Executor::with_uids`] installs arbitrary ids (e.g. for
    /// running a subroutine on a virtual graph whose nodes inherit ids).
    pub uid: u64,
    /// The sorted adjacency list of `node`.
    pub neighbors: &'a [NodeId],
    /// The current round number, starting at 1 for the first step.
    pub round: u64,
    /// Number of vertices in the network (global knowledge of `n` is the
    /// standard assumption in the LOCAL model).
    pub n: usize,
    /// Maximum degree Δ of the network (also standard global knowledge).
    pub max_degree: usize,
}

impl NodeCtx<'_> {
    /// Degree of the node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }
}

/// The result of one node step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transition<S, O> {
    /// Keep running with a new state (sent to neighbors next round).
    Continue(S),
    /// Halt with an output. The node's last state stays visible to
    /// neighbors, matching a terminated node whose output is known locally.
    Halt(O),
}

/// A distributed algorithm in synchronous state-exchange form.
///
/// Each round, every live node observes the previous-round states of all
/// neighbors (halted neighbors keep their final state visible) and either
/// continues with a new state or halts with an output. This formulation is
/// universal for the LOCAL model because messages are unbounded.
pub trait LocalAlgorithm {
    /// Per-node state, broadcast to neighbors each round.
    type State: Clone;
    /// Per-node output on halting.
    type Output;

    /// The state a node holds before the first communication round.
    fn init(&self, ctx: &NodeCtx) -> Self::State;

    /// One synchronous round at one node.
    fn step(
        &self,
        ctx: &NodeCtx,
        state: &Self::State,
        neighbor_states: &[Self::State],
    ) -> Transition<Self::State, Self::Output>;
}

/// Why a simulation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Not all nodes halted within the round budget.
    RoundLimitExceeded { limit: u64, still_running: usize },
    /// `with_uids` received a vector of the wrong length or with duplicates.
    BadUids(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RoundLimitExceeded {
                limit,
                still_running,
            } => write!(
                f,
                "{still_running} nodes still running after the {limit}-round budget"
            ),
            SimError::BadUids(msg) => write!(f, "bad uid vector: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Outcome of a completed simulation.
#[derive(Debug, Clone)]
pub struct RunResult<O> {
    /// Output of every node, indexed by node id.
    pub outputs: Vec<O>,
    /// Number of communication rounds executed until the last node halted.
    /// A node that halts during round `r` has communicated `r` times.
    pub rounds: u64,
}

/// Runs [`LocalAlgorithm`]s over a graph.
#[derive(Debug)]
pub struct Executor<'g> {
    graph: &'g Graph,
    uids: Option<Vec<u64>>,
    probe: Probe,
}

impl<'g> Executor<'g> {
    /// An executor over `graph` with default uids (the node indices).
    pub fn new(graph: &'g Graph) -> Self {
        Executor {
            graph,
            uids: None,
            probe: Probe::disabled(),
        }
    }

    /// Attaches a telemetry probe; every run then emits one
    /// [`telemetry::Event::Round`] per simulated round under the
    /// [`EXEC_SCOPE`] scope (live-node count, halts, halted fraction).
    #[must_use]
    pub fn with_probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Installs explicit unique identifiers (one per node).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadUids`] if the vector length differs from `n`
    /// or contains duplicates.
    pub fn with_uids(graph: &'g Graph, uids: Vec<u64>) -> Result<Self, SimError> {
        if uids.len() != graph.n() {
            return Err(SimError::BadUids(format!(
                "{} uids for {} nodes",
                uids.len(),
                graph.n()
            )));
        }
        let mut sorted = uids.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(SimError::BadUids("duplicate uid".to_string()));
        }
        Ok(Executor {
            graph,
            uids: Some(uids),
            probe: Probe::disabled(),
        })
    }

    fn ctx<'a>(&'a self, v: NodeId, round: u64) -> NodeCtx<'a> {
        NodeCtx {
            node: v,
            uid: self.uids.as_ref().map_or(v.0 as u64, |u| u[v.index()]),
            neighbors: self.graph.neighbors(v),
            round,
            n: self.graph.n(),
            max_degree: self.graph.max_degree(),
        }
    }

    /// Runs `algo` until every node halts, or fails after `max_rounds`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if nodes are still running
    /// after `max_rounds` communication rounds.
    pub fn run<A: LocalAlgorithm>(
        &self,
        algo: &A,
        max_rounds: u64,
    ) -> Result<RunResult<A::Output>, SimError> {
        let n = self.graph.n();
        let mut states: Vec<A::State> = Vec::with_capacity(n);
        for v in self.graph.vertices() {
            states.push(algo.init(&self.ctx(v, 0)));
        }
        let mut outputs: Vec<Option<A::Output>> = (0..n).map(|_| None).collect();
        let mut live = n;
        let mut rounds = 0;
        if n == 0 {
            return Ok(RunResult {
                outputs: Vec::new(),
                rounds: 0,
            });
        }
        let mut registry = Registry::new();
        let c_live = registry.counter("live_nodes");
        let c_halted = registry.counter("halted");
        let c_msgs = registry.counter("messages_sent");
        let g_halted_frac = registry.gauge("halted_fraction");
        while live > 0 {
            if rounds >= max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: max_rounds,
                    still_running: live,
                });
            }
            rounds += 1;
            c_live.set(live as i64);
            let mut next_states = states.clone();
            let mut nbr_buf: Vec<A::State> = Vec::new();
            for v in self.graph.vertices() {
                if outputs[v.index()].is_some() {
                    continue;
                }
                nbr_buf.clear();
                nbr_buf.extend(
                    self.graph
                        .neighbors(v)
                        .iter()
                        .map(|w| states[w.index()].clone()),
                );
                // A live node's state is visible to all neighbors this
                // round: one message per incident edge endpoint.
                c_msgs.add(nbr_buf.len() as i64);
                let ctx = self.ctx(v, rounds);
                match algo.step(&ctx, &states[v.index()], &nbr_buf) {
                    Transition::Continue(s) => next_states[v.index()] = s,
                    Transition::Halt(o) => {
                        outputs[v.index()] = Some(o);
                        live -= 1;
                        c_halted.inc();
                    }
                }
            }
            states = next_states;
            g_halted_frac.set((n - live) as f64 / n as f64);
            registry.emit_round(&self.probe, EXEC_SCOPE, rounds - 1);
        }
        Ok(RunResult {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("all nodes halted"))
                .collect(),
            rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::Graph;

    /// Counts down from the node index, demonstrating asynchronous halting.
    struct Countdown;

    impl LocalAlgorithm for Countdown {
        type State = u32;
        type Output = u64;

        fn init(&self, ctx: &NodeCtx) -> u32 {
            ctx.node.0
        }

        fn step(&self, ctx: &NodeCtx, state: &u32, _nbrs: &[u32]) -> Transition<u32, u64> {
            if *state == 0 {
                Transition::Halt(ctx.round)
            } else {
                Transition::Continue(state - 1)
            }
        }
    }

    #[test]
    fn countdown_rounds() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let run = Executor::new(&g).run(&Countdown, 100).unwrap();
        assert_eq!(run.rounds, 4); // node 3 halts in round 4
        assert_eq!(run.outputs, vec![1, 2, 3, 4]);
    }

    /// Flood-max: every node learns the maximum uid within its r-ball after
    /// r rounds; halting after `target` rounds.
    struct FloodMax {
        target: u64,
    }

    impl LocalAlgorithm for FloodMax {
        type State = u64;
        type Output = u64;

        fn init(&self, ctx: &NodeCtx) -> u64 {
            ctx.uid
        }

        fn step(&self, ctx: &NodeCtx, state: &u64, nbrs: &[u64]) -> Transition<u64, u64> {
            let m = nbrs.iter().copied().chain([*state]).max().unwrap();
            if ctx.round >= self.target {
                Transition::Halt(m)
            } else {
                Transition::Continue(m)
            }
        }
    }

    #[test]
    fn flood_max_spreads_one_hop_per_round() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        // After 2 rounds node 0 knows the max within distance 2 = uid 2.
        let run = Executor::new(&g).run(&FloodMax { target: 2 }, 10).unwrap();
        assert_eq!(run.outputs[0], 2);
        assert_eq!(run.outputs[2], 4);
        assert_eq!(run.rounds, 2);
    }

    #[test]
    fn custom_uids_respected() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let ex = Executor::with_uids(&g, vec![100, 50]).unwrap();
        let run = ex.run(&FloodMax { target: 1 }, 10).unwrap();
        assert_eq!(run.outputs, vec![100, 100]);
    }

    #[test]
    fn bad_uids_rejected() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        assert!(Executor::with_uids(&g, vec![1]).is_err());
        assert!(Executor::with_uids(&g, vec![1, 1]).is_err());
    }

    #[test]
    fn round_limit_enforced() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let err = Executor::new(&g).run(&Countdown, 1).unwrap_err();
        assert_eq!(
            err,
            SimError::RoundLimitExceeded {
                limit: 1,
                still_running: 1
            }
        );
    }

    #[test]
    fn empty_graph_runs_zero_rounds() {
        let g = Graph::from_edges(0, []).unwrap();
        let run = Executor::new(&g).run(&Countdown, 1).unwrap();
        assert_eq!(run.rounds, 0);
        assert!(run.outputs.is_empty());
    }

    /// Halted nodes keep their final state visible to running neighbors.
    struct WatchNeighbor;

    impl LocalAlgorithm for WatchNeighbor {
        type State = u32;
        type Output = u32;

        fn init(&self, ctx: &NodeCtx) -> u32 {
            ctx.node.0 * 10
        }

        fn step(&self, ctx: &NodeCtx, _state: &u32, nbrs: &[u32]) -> Transition<u32, u32> {
            if ctx.node.0 == 0 {
                // Node 0 halts immediately; its state 0 remains visible.
                Transition::Halt(99)
            } else if ctx.round == 3 {
                Transition::Halt(nbrs[0])
            } else {
                Transition::Continue(7)
            }
        }
    }

    #[test]
    fn halted_state_stays_visible() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let run = Executor::new(&g).run(&WatchNeighbor, 10).unwrap();
        assert_eq!(run.outputs[1], 0); // sees node 0's frozen init state
    }

    #[test]
    fn probe_sees_one_event_per_round() {
        use telemetry::{Event, RecordingSink};

        let sink = std::sync::Arc::new(RecordingSink::new());
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let run = Executor::new(&g)
            .with_probe(Probe::new(sink.clone()))
            .run(&Countdown, 100)
            .unwrap();
        assert_eq!(sink.rounds_seen(EXEC_SCOPE), run.rounds);
        // Round 0: 4 live, node 0 halts immediately, and every node shows
        // its state across each incident edge (degree sum 6 on the path).
        assert_eq!(
            sink.events()[0],
            Event::Round {
                scope: EXEC_SCOPE.into(),
                round: 0,
                counters: vec![
                    ("live_nodes".into(), 4),
                    ("halted".into(), 1),
                    ("messages_sent".into(), 6),
                ],
                gauges: vec![("halted_fraction".into(), 0.25)],
            }
        );
    }
}
