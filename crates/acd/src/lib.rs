//! Almost-clique decomposition (ACD) — the sparse/dense decomposition all
//! recent distributed coloring algorithms build on (Lemma 2 of the paper).
//!
//! For `ε = 1/63` the ACD partitions the vertex set into `V_sparse` and
//! almost-cliques `C_1 … C_t` with:
//!
//! * (i) `(1 − ε/4)·Δ ≤ |C_i| ≤ (1 + ε)·Δ`,
//! * (ii) every `v ∈ C_i` has at least `(1 − ε)·Δ` neighbors inside `C_i`,
//! * (iii) every `u ∉ C_i` has at most `(1 − ε/2)·Δ` neighbors in `C_i`.
//!
//! A graph is **dense** (Definition 4) if the computation classifies no
//! vertex as sparse.
//!
//! The computation follows the classic recipe ([HSS18, ACK19] with the
//! [FHM23, HM24] postprocessing): *friend* edges (endpoints sharing
//! `(1−η)Δ` neighbors), *dense* vertices (with `(1−η)Δ` friend neighbors),
//! connected components of friend edges among dense vertices, then an
//! `O(1)`-iteration cleanup that evicts weakly connected vertices and
//! absorbs strongly connected outsiders. Everything is computable from
//! constant-radius neighborhoods, so the LOCAL cost is a documented
//! constant ([`ACD_ROUNDS`]).
//!
//! # Example
//!
//! ```
//! use graphgen::generators::{hard_cliques, HardCliqueParams};
//! use acd::{compute_acd, AcdParams};
//!
//! let inst = hard_cliques(&HardCliqueParams {
//!     cliques: 34, delta: 16, external_per_vertex: 1, seed: 1,
//! })?;
//! let acd = compute_acd(&inst.graph, &AcdParams::for_delta(16));
//! assert!(acd.is_dense());
//! assert_eq!(acd.cliques.len(), 34);
//! # Ok::<(), graphgen::GraphError>(())
//! ```

use graphgen::{analysis, Graph, NodeId};
use serde::{Deserialize, Serialize};

/// LOCAL rounds charged for the ACD computation (constant-radius work:
/// 2 rounds to learn the 2-ball for friend detection, the diameter-2
/// component gathering, and a constant number of cleanup sweeps).
pub const ACD_ROUNDS: u64 = 8;

/// Parameters of the decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcdParams {
    /// The slack parameter ε (paper default: 1/63).
    pub eps: f64,
    /// Friendship parameter η (default ε/2).
    pub eta: f64,
}

impl AcdParams {
    /// The paper's parameters: `ε = 1/63`, `η = ε/2`.
    pub fn paper() -> Self {
        let eps = 1.0 / 63.0;
        AcdParams {
            eps,
            eta: eps / 2.0,
        }
    }

    /// Parameters scaled for a given Δ: the paper values for `Δ ≥ 63`,
    /// otherwise a relaxed `ε ≈ 4.5/Δ` that keeps the decomposition
    /// meaningful on small test instances. (With `ε = 1/63` properties
    /// (i)/(ii) force `ε·Δ ≥ 1`, i.e. `Δ ≥ 63`; admitting cliques of size
    /// `Δ − 1` and loophole-damaged cliques needs `ε·Δ ≥ ~4.5`.)
    pub fn for_delta(delta: usize) -> Self {
        if delta >= 63 {
            Self::paper()
        } else {
            let eps = (4.5 / delta.max(4) as f64).min(0.45);
            AcdParams {
                eps,
                eta: eps / 2.0,
            }
        }
    }

    /// Explicit ε (η defaults to ε/2). For experiment sweeps.
    pub fn with_eps(eps: f64) -> Self {
        AcdParams {
            eps,
            eta: eps / 2.0,
        }
    }
}

/// One almost-clique of the decomposition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlmostClique {
    /// Index in [`AcdResult::cliques`].
    pub id: u32,
    /// Sorted member vertices.
    pub vertices: Vec<NodeId>,
}

impl AlmostClique {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the clique is empty (never true in a valid ACD).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// The decomposition output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcdResult {
    /// Parameters used.
    pub params: AcdParams,
    /// Vertices classified sparse.
    pub sparse: Vec<NodeId>,
    /// The almost-cliques.
    pub cliques: Vec<AlmostClique>,
    /// Per-vertex clique id (`None` = sparse).
    pub clique_of: Vec<Option<u32>>,
    /// LOCAL rounds charged ([`ACD_ROUNDS`]).
    pub rounds: u64,
}

impl AcdResult {
    /// Whether the input graph is *dense* per Definition 4: no sparse
    /// vertices.
    pub fn is_dense(&self) -> bool {
        self.sparse.is_empty()
    }

    /// The clique containing `v`, if any.
    pub fn clique_containing(&self, v: NodeId) -> Option<&AlmostClique> {
        self.clique_of[v.index()].map(|c| &self.cliques[c as usize])
    }
}

/// The similarity thresholds derived from the parameters.
///
/// Two members of a valid almost-clique share at least (1 − 3ε)Δ
/// neighbors (each has (1−ε)Δ inside a set of ≤ (1+ε)Δ vertices), and
/// in a true Δ-clique exactly Δ − 2 — so friendship must tolerate
/// η_eff ≥ max(3.5ε, 2.5/Δ), clamped away from degeneracy.
fn similarity_thresholds(g: &Graph, params: &AcdParams) -> (usize, usize) {
    let delta = g.max_degree() as f64;
    let eta_eff = params
        .eta
        .max(3.5 * params.eps)
        .max(2.5 / delta.max(1.0))
        .min(0.5);
    let friend_threshold = ((1.0 - eta_eff) * delta).ceil() as usize;
    let dense_threshold = ((1.0 - eta_eff) * delta).ceil() as usize;
    (friend_threshold, dense_threshold)
}

/// The friend graph: per-vertex friend degree and friend adjacency, where
/// `{u, v} ∈ E` is a friend edge iff `|N(u) ∩ N(v)| ≥ friend_threshold`.
///
/// Block-compressed bitmap kernel: every sorted neighborhood is packed
/// once into `(block, mask)` runs — 64 vertices per `u64` word — and each
/// edge's common-neighbor count is a two-pointer sweep over the two run
/// lists with one `popcount` per shared block. On dense instances the
/// members of an almost-clique cluster into a handful of blocks, so a
/// Δ-clique edge costs ~`2 + Δ/64` word operations instead of the
/// `deg u + deg v` data-dependent compare steps of the per-edge
/// sorted-merge kernel; in the worst case (every neighbor in its own
/// block) the sweep degenerates to exactly the merge kernel's op count.
/// Friend edges are emitted in `g.edges()` order, so downstream component
/// structure is identical to the reference kernel.
fn friend_graph_blocked(g: &Graph, friend_threshold: usize) -> (Vec<usize>, Vec<Vec<NodeId>>) {
    let n = g.n();
    let mut friend_count = vec![0usize; n];
    let mut friend_adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    // Flat CSR of per-vertex bitmap runs: vertex v owns
    // `blocks[off[v]..off[v + 1]]` (strictly increasing block ids, since
    // neighborhoods are sorted) and the parallel `masks` words.
    let mut off = Vec::with_capacity(n + 1);
    let mut blocks: Vec<u32> = Vec::new();
    let mut masks: Vec<u64> = Vec::new();
    off.push(0usize);
    for v in g.vertices() {
        let start = blocks.len();
        for &w in g.neighbors(v) {
            let b = w.0 >> 6;
            let bit = 1u64 << (w.0 & 63);
            if blocks.len() > start && blocks[blocks.len() - 1] == b {
                *masks.last_mut().expect("runs in sync") |= bit;
            } else {
                blocks.push(b);
                masks.push(bit);
            }
        }
        off.push(blocks.len());
    }
    for (u, v) in g.edges() {
        let (mut i, iend) = (off[u.index()], off[u.index() + 1]);
        let (mut j, jend) = (off[v.index()], off[v.index() + 1]);
        let mut common = 0usize;
        while i < iend && j < jend {
            let (bi, bj) = (blocks[i], blocks[j]);
            if bi == bj {
                common += (masks[i] & masks[j]).count_ones() as usize;
                i += 1;
                j += 1;
            } else if bi < bj {
                i += 1;
            } else {
                j += 1;
            }
        }
        if common >= friend_threshold {
            friend_count[u.index()] += 1;
            friend_count[v.index()] += 1;
            friend_adj[u.index()].push(v);
            friend_adj[v.index()].push(u);
        }
    }
    (friend_count, friend_adj)
}

/// The friend graph via per-edge sorted-merge intersections — the
/// original kernel, kept as the oracle [`compute_acd_reference`] and the
/// pipeline bench assert the blocked bitmap kernel against.
fn friend_graph_merge(g: &Graph, friend_threshold: usize) -> (Vec<usize>, Vec<Vec<NodeId>>) {
    let n = g.n();
    let mut friend_count = vec![0usize; n];
    let mut friend_adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (u, v) in g.edges() {
        if analysis::common_neighbor_count(g, u, v) >= friend_threshold {
            friend_count[u.index()] += 1;
            friend_count[v.index()] += 1;
            friend_adj[u.index()].push(v);
            friend_adj[v.index()].push(u);
        }
    }
    (friend_count, friend_adj)
}

/// Computes the almost-clique decomposition.
///
/// Always returns a structurally consistent partition; use [`verify_acd`]
/// to check the quantitative guarantees (they hold whenever the input
/// admits them — on adversarial graphs vertices failing the bounds are
/// classified sparse instead).
pub fn compute_acd(g: &Graph, params: &AcdParams) -> AcdResult {
    let (friend_threshold, dense_threshold) = similarity_thresholds(g, params);
    let (friend_count, friend_adj) = friend_graph_blocked(g, friend_threshold);
    finish_acd(g, params, dense_threshold, &friend_count, &friend_adj)
}

/// [`compute_acd`] with the original per-edge sorted-merge similarity
/// kernel. Bit-identical output to `compute_acd` by construction (same
/// friend-edge set and order); exists so benches and tests can assert
/// exactly that, and as a baseline for kernel timing.
pub fn compute_acd_reference(g: &Graph, params: &AcdParams) -> AcdResult {
    let (friend_threshold, dense_threshold) = similarity_thresholds(g, params);
    let (friend_count, friend_adj) = friend_graph_merge(g, friend_threshold);
    finish_acd(g, params, dense_threshold, &friend_count, &friend_adj)
}

/// The isolated friend-graph kernels, exposed so the pipeline bench can
/// time the similarity computation without the postprocessing both
/// [`compute_acd`] variants share. Not part of the stable API.
#[doc(hidden)]
pub mod kernel {
    use super::{friend_graph_blocked, friend_graph_merge, similarity_thresholds, AcdParams};
    use graphgen::{Graph, NodeId};

    /// `(friend_count, friend_adj)` via the blocked bitmap kernel.
    #[must_use]
    pub fn friend_graph(g: &Graph, params: &AcdParams) -> (Vec<usize>, Vec<Vec<NodeId>>) {
        let (friend_threshold, _) = similarity_thresholds(g, params);
        friend_graph_blocked(g, friend_threshold)
    }

    /// `(friend_count, friend_adj)` via the per-edge sorted-merge kernel.
    #[must_use]
    pub fn friend_graph_reference(g: &Graph, params: &AcdParams) -> (Vec<usize>, Vec<Vec<NodeId>>) {
        let (friend_threshold, _) = similarity_thresholds(g, params);
        friend_graph_merge(g, friend_threshold)
    }
}

/// Everything after the friend graph: dense classification, friend
/// components, cleanup sweeps, size filter.
fn finish_acd(
    g: &Graph,
    params: &AcdParams,
    dense_threshold: usize,
    friend_count: &[usize],
    friend_adj: &[Vec<NodeId>],
) -> AcdResult {
    let n = g.n();
    let delta = g.max_degree() as f64;
    let dense: Vec<bool> = (0..n).map(|v| friend_count[v] >= dense_threshold).collect();

    // Components of friend edges among dense vertices. The DFS stack is
    // hoisted out of the per-component loop (it is empty again whenever a
    // component finishes, so reuse is free).
    let mut comp = vec![u32::MAX; n];
    let mut ncomp = 0u32;
    let mut stack: Vec<NodeId> = Vec::new();
    for s in g.vertices() {
        if !dense[s.index()] || comp[s.index()] != u32::MAX {
            continue;
        }
        let id = ncomp;
        ncomp += 1;
        comp[s.index()] = id;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for &w in &friend_adj[v.index()] {
                if dense[w.index()] && comp[w.index()] == u32::MAX {
                    comp[w.index()] = id;
                    stack.push(w);
                }
            }
        }
    }

    // Cleanup sweeps (constant number): evict weakly connected members,
    // absorb strongly connected outsiders, drop undersized/oversized ACs.
    let evict_threshold = ((1.0 - params.eps) * delta).ceil() as usize;
    let absorb_threshold = ((1.0 - params.eps / 2.0) * delta).floor() as usize;
    let min_size = ((1.0 - params.eps / 4.0) * delta).ceil() as usize;
    let max_size = ((1.0 + params.eps) * delta).floor() as usize;

    let mut in_clique: Vec<Option<u32>> = comp
        .iter()
        .map(|&c| if c == u32::MAX { None } else { Some(c) })
        .collect();
    // Scratch for the absorb step, hoisted out of the scan loops: clique
    // ids are dense (`0..ncomp`), so a counting buffer plus a touched
    // list replaces a per-vertex hash map.
    let mut absorb_counts = vec![0u32; ncomp as usize];
    let mut absorb_touched: Vec<u32> = Vec::new();
    for _sweep in 0..6 {
        let mut changed = false;
        // Count neighbors inside each clique for all vertices.
        let count_in = |v: NodeId, c: u32, in_clique: &[Option<u32>]| {
            g.neighbors(v)
                .iter()
                .filter(|w| in_clique[w.index()] == Some(c))
                .count()
        };
        // Evict.
        for v in g.vertices() {
            if let Some(c) = in_clique[v.index()] {
                if count_in(v, c, &in_clique) < evict_threshold {
                    in_clique[v.index()] = None;
                    changed = true;
                }
            }
        }
        // Absorb. At most one clique can clear `absorb_threshold`
        // (> (1−ε/2)Δ neighbors each in two cliques would exceed Δ), so
        // scanning the touched list in any order picks the same winner.
        for v in g.vertices() {
            if in_clique[v.index()].is_none() {
                for &w in g.neighbors(v) {
                    if let Some(c) = in_clique[w.index()] {
                        if absorb_counts[c as usize] == 0 {
                            absorb_touched.push(c);
                        }
                        absorb_counts[c as usize] += 1;
                    }
                }
                let mut best: Option<(usize, u32)> = None;
                for &c in &absorb_touched {
                    let cnt = absorb_counts[c as usize] as usize;
                    if cnt > absorb_threshold && best.is_none_or(|(b, _)| cnt > b) {
                        best = Some((cnt, c));
                    }
                    absorb_counts[c as usize] = 0;
                }
                absorb_touched.clear();
                if let Some((_, c)) = best {
                    in_clique[v.index()] = Some(c);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Size filter and re-indexing (clique ids are dense, so flat arrays
    // replace the former hash maps).
    let mut sizes = vec![0usize; ncomp as usize];
    for v in g.vertices() {
        if let Some(c) = in_clique[v.index()] {
            sizes[c as usize] += 1;
        }
    }
    let mut remap = vec![u32::MAX; ncomp as usize];
    let mut cliques: Vec<AlmostClique> = Vec::new();
    let mut clique_of: Vec<Option<u32>> = vec![None; n];
    let mut sparse = Vec::new();
    for v in g.vertices() {
        match in_clique[v.index()] {
            Some(c) if sizes[c as usize] >= min_size && sizes[c as usize] <= max_size => {
                if remap[c as usize] == u32::MAX {
                    remap[c as usize] = cliques.len() as u32;
                    cliques.push(AlmostClique {
                        id: cliques.len() as u32,
                        vertices: Vec::new(),
                    });
                }
                let id = remap[c as usize];
                cliques[id as usize].vertices.push(v);
                clique_of[v.index()] = Some(id);
            }
            _ => sparse.push(v),
        }
    }
    AcdResult {
        params: *params,
        sparse,
        cliques,
        clique_of,
        rounds: ACD_ROUNDS,
    }
}

/// Errors reported by [`verify_acd`].
#[derive(Debug, Clone, PartialEq)]
pub enum AcdViolation {
    /// Property (i): clique size outside `[(1−ε/4)Δ, (1+ε)Δ]`.
    Size { clique: u32, size: usize },
    /// Property (ii): a member with too few internal neighbors.
    WeakMember {
        clique: u32,
        node: NodeId,
        inside: usize,
    },
    /// Property (iii): an outsider with too many neighbors inside.
    StrongOutsider {
        clique: u32,
        node: NodeId,
        inside: usize,
    },
    /// The partition is inconsistent (memberships disagree).
    Inconsistent,
}

impl std::fmt::Display for AcdViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcdViolation::Size { clique, size } => {
                write!(f, "clique {clique} has out-of-range size {size}")
            }
            AcdViolation::WeakMember {
                clique,
                node,
                inside,
            } => {
                write!(
                    f,
                    "vertex {node} has only {inside} neighbors inside its clique {clique}"
                )
            }
            AcdViolation::StrongOutsider {
                clique,
                node,
                inside,
            } => {
                write!(
                    f,
                    "outsider {node} has {inside} neighbors inside clique {clique}"
                )
            }
            AcdViolation::Inconsistent => write!(f, "partition bookkeeping is inconsistent"),
        }
    }
}

/// Verifies Lemma 2's properties (i)–(iii) for a decomposition.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_acd(g: &Graph, acd: &AcdResult) -> Result<(), AcdViolation> {
    let delta = g.max_degree() as f64;
    let eps = acd.params.eps;
    let min_size = ((1.0 - eps / 4.0) * delta).ceil() as usize;
    let max_size = ((1.0 + eps) * delta).floor() as usize;
    let member_min = ((1.0 - eps) * delta).ceil() as usize;
    let outsider_max = ((1.0 - eps / 2.0) * delta).floor() as usize;

    // Consistency.
    for (ci, c) in acd.cliques.iter().enumerate() {
        for &v in &c.vertices {
            if acd.clique_of[v.index()] != Some(ci as u32) {
                return Err(AcdViolation::Inconsistent);
            }
        }
    }
    for &v in &acd.sparse {
        if acd.clique_of[v.index()].is_some() {
            return Err(AcdViolation::Inconsistent);
        }
    }
    let assigned: usize = acd.cliques.iter().map(AlmostClique::len).sum();
    if assigned + acd.sparse.len() != g.n() {
        return Err(AcdViolation::Inconsistent);
    }

    for c in &acd.cliques {
        if c.len() < min_size || c.len() > max_size {
            return Err(AcdViolation::Size {
                clique: c.id,
                size: c.len(),
            });
        }
        for &v in &c.vertices {
            let inside = g
                .neighbors(v)
                .iter()
                .filter(|w| acd.clique_of[w.index()] == Some(c.id))
                .count();
            if inside < member_min {
                return Err(AcdViolation::WeakMember {
                    clique: c.id,
                    node: v,
                    inside,
                });
            }
        }
    }
    // Outsiders.
    for v in g.vertices() {
        let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for &w in g.neighbors(v) {
            if let Some(c) = acd.clique_of[w.index()] {
                if acd.clique_of[v.index()] != Some(c) {
                    *counts.entry(c).or_default() += 1;
                }
            }
        }
        for (c, cnt) in counts {
            if cnt > outsider_max {
                return Err(AcdViolation::StrongOutsider {
                    clique: c,
                    node: v,
                    inside: cnt,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::generators;

    #[test]
    fn hard_instance_decomposes_exactly() {
        let inst = generators::hard_cliques(&generators::HardCliqueParams {
            cliques: 34,
            delta: 16,
            external_per_vertex: 1,
            seed: 5,
        })
        .unwrap();
        let acd = compute_acd(&inst.graph, &AcdParams::for_delta(16));
        assert!(acd.is_dense());
        assert_eq!(acd.cliques.len(), 34);
        verify_acd(&inst.graph, &acd).unwrap();
        // The recovered cliques match the generator's cliques.
        for c in &acd.cliques {
            let gen_id = inst.clique_of[c.vertices[0].index()];
            for &v in &c.vertices {
                assert_eq!(inst.clique_of[v.index()], gen_id);
            }
            assert_eq!(c.len(), inst.cliques[gen_id as usize].len());
        }
    }

    #[test]
    fn hard_instance_ext2_decomposes() {
        let inst = generators::hard_cliques(&generators::HardCliqueParams {
            cliques: 320,
            delta: 16,
            external_per_vertex: 2,
            seed: 6,
        })
        .unwrap();
        let acd = compute_acd(&inst.graph, &AcdParams::for_delta(16));
        assert!(acd.is_dense());
        assert_eq!(acd.cliques.len(), 320);
        verify_acd(&inst.graph, &acd).unwrap();
    }

    #[test]
    fn isolated_cliques_are_dense() {
        let g = generators::isolated_cliques(5, 8);
        let acd = compute_acd(&g, &AcdParams::for_delta(7));
        assert!(acd.is_dense());
        assert_eq!(acd.cliques.len(), 5);
        verify_acd(&g, &acd).unwrap();
    }

    #[test]
    fn tree_is_all_sparse() {
        let g = generators::random_tree(100, 3);
        let acd = compute_acd(&g, &AcdParams::paper());
        assert!(!acd.is_dense());
        assert_eq!(acd.sparse.len(), 100);
        assert!(acd.cliques.is_empty());
    }

    #[test]
    fn easy_instance_still_dense() {
        let inst = generators::easy_cliques(&generators::EasyCliqueParams {
            base: generators::HardCliqueParams {
                cliques: 34,
                delta: 16,
                external_per_vertex: 1,
                seed: 2,
            },
            easy: 3,
            kind: generators::LoopholeKind::LowDegree,
        })
        .unwrap();
        let acd = compute_acd(&inst.graph, &AcdParams::for_delta(16));
        assert!(
            acd.is_dense(),
            "deleting one intra edge keeps everyone dense"
        );
        verify_acd(&inst.graph, &acd).unwrap();
    }

    #[test]
    fn random_graph_mostly_sparse() {
        let g = generators::gnp(200, 0.05, 9);
        let acd = compute_acd(&g, &AcdParams::paper());
        // Sparse random graphs have no almost-cliques at this density.
        assert!(acd.cliques.is_empty());
    }

    #[test]
    fn claim_1_sparse_vertices_have_sparse_neighborhoods() {
        // Claim 1 [ACK19]: an η-sparse vertex has at most (1-η²)·C(Δ,2)
        // edges in its neighborhood. Check the contrapositive direction on
        // our classification: vertices we classify as sparse in a random
        // regular graph indeed have far fewer neighborhood edges than a
        // clique member would.
        let g = graphgen::generators::random_regular(200, 12, 3);
        let acd = compute_acd(&g, &AcdParams::for_delta(12));
        assert!(!acd.sparse.is_empty());
        let delta = 12.0_f64;
        let max_clique_edges = delta * (delta - 1.0) / 2.0;
        for &v in acd.sparse.iter().take(50) {
            let e = graphgen::analysis::edges_in_neighborhood(&g, v) as f64;
            assert!(
                e < 0.5 * max_clique_edges,
                "sparse vertex {v} has {e} neighborhood edges"
            );
        }
    }

    #[test]
    fn blocked_kernel_matches_merge_kernel() {
        // The blocked bitmap similarity kernel must reproduce the
        // per-edge merge kernel exactly — same friend edges in the same
        // order, hence the same AcdResult — across dense, sparse, and
        // degenerate inputs.
        let hard = generators::hard_cliques(&generators::HardCliqueParams {
            cliques: 34,
            delta: 16,
            external_per_vertex: 1,
            seed: 5,
        })
        .unwrap()
        .graph;
        for (g, delta) in [
            (hard, 16),
            (generators::gnp(200, 0.05, 9), 12),
            (generators::gnp(150, 0.2, 3), 32),
            (generators::random_tree(50, 4), 4),
            (generators::isolated_cliques(5, 8), 7),
            (Graph::from_edges(0, []).unwrap(), 1),
        ] {
            let params = AcdParams::for_delta(delta);
            assert_eq!(
                compute_acd(&g, &params),
                compute_acd_reference(&g, &params),
                "kernel mismatch on n={} m={}",
                g.n(),
                g.m()
            );
        }
    }

    #[test]
    fn paper_params() {
        let p = AcdParams::paper();
        assert!((p.eps - 1.0 / 63.0).abs() < 1e-12);
        assert_eq!(AcdParams::for_delta(100), p);
        assert!(AcdParams::for_delta(16).eps > p.eps);
    }
}
