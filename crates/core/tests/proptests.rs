//! End-to-end property tests: both pipelines always emit proper
//! Δ-colorings across randomized dense families, seeds, and planting
//! parameters — the crate's central invariant.

use delta_core::{color_deterministic, color_randomized, Config, RandConfig};
use graphgen::coloring::verify_delta_coloring;
use graphgen::generators::{
    self, BlueprintKind, EasyCliqueParams, HardCliqueParams, LoopholeKind, MixedParams,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The deterministic pipeline Δ-colors every pure hard instance.
    #[test]
    fn det_pipeline_on_hard(seed in 0u64..10_000, m_half in 17usize..40) {
        let inst = generators::hard_cliques(&HardCliqueParams {
            cliques: 2 * m_half,
            delta: 16,
            external_per_vertex: 1,
            seed,
        }).unwrap();
        let report = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
    }

    /// ... and every mixed instance with planted loopholes of both kinds.
    #[test]
    fn det_pipeline_on_mixed(
        seed in 0u64..10_000, low in 0usize..4, cyc in 0usize..3
    ) {
        let inst = generators::mixed_dense(&MixedParams {
            base: HardCliqueParams {
                cliques: 40,
                delta: 16,
                external_per_vertex: 1,
                seed,
            },
            easy_low_degree: low,
            easy_four_cycle: cyc,
        }).unwrap();
        let report = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
    }

    /// The randomized pipeline Δ-colors across seeds, placement
    /// probabilities, and spacings (including degenerate small spacing).
    #[test]
    fn rand_pipeline_parameter_space(
        seed in 0u64..10_000,
        p in 0.05f64..0.95,
        spacing in 2usize..7,
        blueprint in 0u8..2
    ) {
        let kind = if blueprint == 0 { BlueprintKind::Random } else { BlueprintKind::Circulant };
        let inst = generators::hard_cliques_with_blueprint(
            &HardCliqueParams { cliques: 40, delta: 16, external_per_vertex: 1, seed },
            kind,
        ).unwrap();
        let mut config = RandConfig::for_delta(16, seed ^ 0xABCD);
        config.placement_prob = p;
        config.spacing = spacing;
        let report = color_randomized(&inst.graph, &config).unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
    }

    /// Easy instances with aggressive planting still color.
    #[test]
    fn det_pipeline_heavy_planting(seed in 0u64..10_000, kind in 0u8..2) {
        let kind = if kind == 0 { LoopholeKind::LowDegree } else { LoopholeKind::FourCycle };
        let inst = generators::easy_cliques(&EasyCliqueParams {
            base: HardCliqueParams {
                cliques: 40,
                delta: 16,
                external_per_vertex: 1,
                seed,
            },
            easy: 10,
            kind,
        }).unwrap();
        let report = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
    }

    /// Determinism: the deterministic pipeline is a pure function of the
    /// input graph and configuration.
    #[test]
    fn det_pipeline_reproducible(seed in 0u64..10_000) {
        let inst = generators::hard_cliques(&HardCliqueParams {
            cliques: 34,
            delta: 16,
            external_per_vertex: 1,
            seed,
        }).unwrap();
        let a = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
        let b = color_deterministic(&inst.graph, &Config::for_delta(16)).unwrap();
        prop_assert_eq!(a.rounds(), b.rounds());
        prop_assert_eq!(a.coloring, b.coloring);
    }
}
