//! Direct tests of the pipeline phases: each lemma's statement exercised
//! on generated instances, plus failure injection for the validating
//! constructors.

use acd::{compute_acd, AcdParams};
use delta_core::{
    balanced_matching, classify_cliques, color_hard_cliques_phase4, detect_loopholes,
    form_slack_triads, sparsify_matching, Config, HegAlgo, MatchingAlgo,
};
use graphgen::generators::{self, HardCliqueParams};
use graphgen::{Color, Coloring};
use localsim::RoundLedger;

struct Fixture {
    inst: generators::HardCliqueInstance,
    acd: acd::AcdResult,
    cls: delta_core::Classification,
    config: Config,
}

fn fixture(cliques: usize, delta: usize, ext: usize, seed: u64) -> Fixture {
    let inst = generators::hard_cliques(&HardCliqueParams {
        cliques,
        delta,
        external_per_vertex: ext,
        seed,
    })
    .unwrap();
    let acd = compute_acd(&inst.graph, &AcdParams::for_delta(delta));
    let loopholes = detect_loopholes(&inst.graph, &acd.clique_of);
    let cls = classify_cliques(&inst.graph, &acd, &loopholes).unwrap();
    let config = Config::for_delta(delta);
    Fixture {
        inst,
        acd,
        cls,
        config,
    }
}

fn run_phase1(f: &Fixture, ledger: &mut RoundLedger) -> delta_core::BalancedMatching {
    balanced_matching(
        &f.inst.graph,
        &f.acd,
        &f.cls,
        f.config.subcliques,
        MatchingAlgo::DetDirect,
        HegAlgo::Augmenting,
        false,
        ledger,
    )
    .unwrap()
}

#[test]
fn phase1_f2_is_an_oriented_matching_with_k_outgoing() {
    let f = fixture(34, 16, 1, 70);
    let mut ledger = RoundLedger::new();
    let f2 = run_phase1(&f, &mut ledger);
    // Matching: no vertex repeats.
    let mut seen = std::collections::HashSet::new();
    for &(t, h) in &f2.edges {
        assert!(seen.insert(t), "tail {t} repeated");
        assert!(seen.insert(h), "head {h} repeated");
        assert!(f.inst.graph.has_edge(t, h), "F2 edges are graph edges");
        assert_ne!(
            f.acd.clique_of[t.index()],
            f.acd.clique_of[h.index()],
            "F2 edges are inter-clique"
        );
    }
    // Lemma 12: exactly K outgoing per C_HEG clique.
    let mut outgoing = vec![0usize; f.acd.cliques.len()];
    for &(t, _) in &f2.edges {
        outgoing[f.acd.clique_of[t.index()].unwrap() as usize] += 1;
    }
    for &cid in &f.cls.heg_ids {
        assert_eq!(outgoing[cid as usize], f.config.subcliques, "clique {cid}");
    }
    assert_eq!(f2.stats.min_outgoing, f.config.subcliques);
}

#[test]
fn phase2_selects_two_outgoing_within_cap() {
    let f = fixture(34, 16, 1, 71);
    let mut ledger = RoundLedger::new();
    let f2 = run_phase1(&f, &mut ledger);
    let f3 = sparsify_matching(
        &f.inst.graph,
        &f.acd,
        &f.cls,
        &f2,
        f.config.acd.eps,
        f.config.split_segment,
        &mut ledger,
    )
    .unwrap();
    let mut outgoing = vec![0usize; f.acd.cliques.len()];
    for &(t, _) in &f3.edges {
        outgoing[f.acd.clique_of[t.index()].unwrap() as usize] += 1;
    }
    for &cid in &f3.type_i_plus {
        assert_eq!(
            outgoing[cid as usize], 2,
            "Type I+ clique {cid} keeps exactly 2"
        );
    }
    // F3 ⊆ F2.
    let f2_set: std::collections::HashSet<_> = f2.edges.iter().collect();
    assert!(f3.edges.iter().all(|e| f2_set.contains(e)));
    // Incoming bounded.
    let e_max = 1; // ext = 1
    let cap = (16 - 2 - 2 * e_max) / 2;
    assert!(f3.incoming.iter().all(|&i| i <= cap), "{:?}", f3.incoming);
}

#[test]
fn phase3_triads_satisfy_definition_14_and_lemma_15() {
    let f = fixture(34, 16, 1, 72);
    let mut ledger = RoundLedger::new();
    let f2 = run_phase1(&f, &mut ledger);
    let f3 = sparsify_matching(
        &f.inst.graph,
        &f.acd,
        &f.cls,
        &f2,
        f.config.acd.eps,
        4,
        &mut ledger,
    )
    .unwrap();
    let triads = form_slack_triads(&f.inst.graph, &f.acd, &f3, &mut ledger).unwrap();
    assert_eq!(
        triads.triads.len(),
        f.cls.heg_ids.len(),
        "one triad per Type I+ clique"
    );
    let g = &f.inst.graph;
    let mut used = std::collections::HashSet::new();
    for t in &triads.triads {
        // Definition 14: v, w ∈ N(u), v ≁ w.
        assert!(g.has_edge(t.slack, t.pair_in));
        assert!(g.has_edge(t.slack, t.pair_out));
        assert!(!g.has_edge(t.pair_in, t.pair_out));
        // Lemma 15 (ii): vertex disjoint.
        for v in [t.slack, t.pair_in, t.pair_out] {
            assert!(used.insert(v), "vertex {v} reused across triads");
        }
        // Membership: slack and pair_in inside the clique, pair_out outside.
        assert_eq!(f.acd.clique_of[t.slack.index()], Some(t.clique));
        assert_eq!(f.acd.clique_of[t.pair_in.index()], Some(t.clique));
        assert_ne!(f.acd.clique_of[t.pair_out.index()], Some(t.clique));
    }
}

#[test]
fn phase4_colors_all_hard_vertices_and_respects_pairs() {
    let f = fixture(34, 16, 1, 73);
    let mut ledger = RoundLedger::new();
    let f2 = run_phase1(&f, &mut ledger);
    let f3 = sparsify_matching(
        &f.inst.graph,
        &f.acd,
        &f.cls,
        &f2,
        f.config.acd.eps,
        4,
        &mut ledger,
    )
    .unwrap();
    let triads = form_slack_triads(&f.inst.graph, &f.acd, &f3, &mut ledger).unwrap();
    let mut coloring = Coloring::empty(f.inst.graph.n());
    let palette: Vec<Color> = (0..16).map(Color).collect();
    let stats = color_hard_cliques_phase4(
        &f.inst.graph,
        &f.acd,
        &f.cls,
        &triads,
        &palette,
        &mut coloring,
        false,
        &mut ledger,
    )
    .unwrap();
    // All hard vertices are colored and the partial coloring is proper.
    for v in f.inst.graph.vertices() {
        assert!(coloring.is_colored(v), "{v} left uncolored");
    }
    coloring.check_complete(&f.inst.graph, 16).unwrap();
    // Slack pairs are same-colored.
    for t in &triads.triads {
        assert_eq!(coloring.get(t.pair_in), coloring.get(t.pair_out));
    }
    assert_eq!(stats.pairs, triads.triads.len());
    assert!(stats.gv_max_degree <= 14);
}

#[test]
fn phase1_rejects_too_many_subcliques() {
    let f = fixture(34, 16, 1, 74);
    let mut ledger = RoundLedger::new();
    // 20 sub-cliques > clique size 16: must error, not panic.
    let err = balanced_matching(
        &f.inst.graph,
        &f.acd,
        &f.cls,
        20,
        MatchingAlgo::DetDirect,
        HegAlgo::Augmenting,
        false,
        &mut ledger,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        delta_core::DeltaColoringError::InvariantViolated(_)
    ));
}

#[test]
fn ext2_phase_pipeline_consistent() {
    let f = fixture(320, 16, 2, 75);
    let mut ledger = RoundLedger::new();
    let f2 = run_phase1(&f, &mut ledger);
    assert!(f2.stats.r_h >= 2, "ext=2 instances have richer hypergraphs");
    let f3 = sparsify_matching(
        &f.inst.graph,
        &f.acd,
        &f.cls,
        &f2,
        f.config.acd.eps,
        4,
        &mut ledger,
    )
    .unwrap();
    let triads = form_slack_triads(&f.inst.graph, &f.acd, &f3, &mut ledger).unwrap();
    assert_eq!(triads.triads.len(), f.cls.heg_ids.len());
}

#[test]
fn enforce_paper_bound_rejects_tiny_pair_palette() {
    let f = fixture(34, 16, 1, 76);
    let mut ledger = RoundLedger::new();
    let f2 = run_phase1(&f, &mut ledger);
    let f3 = sparsify_matching(
        &f.inst.graph,
        &f.acd,
        &f.cls,
        &f2,
        f.config.acd.eps,
        4,
        &mut ledger,
    )
    .unwrap();
    let triads = form_slack_triads(&f.inst.graph, &f.acd, &f3, &mut ledger).unwrap();
    let mut coloring = Coloring::empty(f.inst.graph.n());
    // A palette of 2 colors cannot cover G_V's degree: structured error.
    let tiny: Vec<Color> = (0..2).map(Color).collect();
    let err = color_hard_cliques_phase4(
        &f.inst.graph,
        &f.acd,
        &f.cls,
        &triads,
        &tiny,
        &mut coloring,
        false,
        &mut ledger,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        delta_core::DeltaColoringError::InvariantViolated(_)
    ));
}

#[test]
fn ledger_reports_every_phase() {
    let f = fixture(34, 16, 1, 77);
    let mut ledger = RoundLedger::new();
    let f2 = run_phase1(&f, &mut ledger);
    let _ = sparsify_matching(
        &f.inst.graph,
        &f.acd,
        &f.cls,
        &f2,
        f.config.acd.eps,
        4,
        &mut ledger,
    )
    .unwrap();
    assert!(ledger.total_for("maximal matching") > 0);
    assert!(ledger.total_for("hyperedge grabbing") > 0);
    assert!(ledger.total_for("degree splitting") > 0);
}

#[test]
fn classification_matches_planted_structure_at_scale() {
    // Δ = 64, paper-parameter classification on a pure hard instance.
    let inst = generators::hard_cliques(&HardCliqueParams {
        cliques: 128,
        delta: 64,
        external_per_vertex: 1,
        seed: 78,
    })
    .unwrap();
    let acd = compute_acd(&inst.graph, &AcdParams::paper());
    assert!(acd.is_dense());
    assert_eq!(acd.cliques.len(), 128);
    let loopholes = detect_loopholes(&inst.graph, &acd.clique_of);
    assert_eq!(loopholes.count(), 0);
    let cls = classify_cliques(&inst.graph, &acd, &loopholes).unwrap();
    assert_eq!(cls.hard_count(), 128);
    assert_eq!(cls.heg_ids.len(), 128);
}
