//! Fault injection at the pipeline level: the randomized pipeline's
//! detect-and-retry loop recovers from deterministic vertex strikes and
//! always terminates with a coloring that passes `core::validate`.

use std::sync::Arc;

use delta_core::{color_randomized, color_randomized_with_faults, validate_coloring, RandConfig};
use graphgen::coloring::verify_delta_coloring;
use graphgen::generators::{self, BlueprintKind, HardCliqueParams};
use localsim::{Event, FaultKind, FaultPlan, Probe, RecordingSink};

fn circulant(cliques: usize, seed: u64) -> generators::HardCliqueInstance {
    generators::hard_cliques_with_blueprint(
        &HardCliqueParams {
            cliques,
            delta: 16,
            external_per_vertex: 1,
            seed,
        },
        BlueprintKind::Circulant,
    )
    .unwrap()
}

fn lossy(seed: u64, drop: f64) -> FaultPlan {
    FaultPlan {
        seed,
        message_drop_p: drop,
        ..FaultPlan::default()
    }
}

/// A config whose post-shattering phase has real work: the default
/// `defer_radius = 7` swallows these circulant instances whole, while 5
/// leaves ~a dozen leftover components for faults to strike.
fn shattering_config(seed: u64) -> RandConfig {
    let mut config = RandConfig::for_delta(16, seed);
    config.defer_radius = 5;
    config
}

/// The acceptance bar: drop probability 0.01 on circulant instances, every
/// seed terminates with a validated Δ-coloring.
#[test]
fn faulted_pipeline_validates_on_every_seed() {
    let inst = circulant(80, 400);
    for seed in 0..6 {
        let config = shattering_config(seed);
        let report = color_randomized_with_faults(
            &inst.graph,
            &config,
            &lossy(seed ^ 0xFA17, 0.01),
            &Probe::disabled(),
        )
        .unwrap();
        verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
        let val = validate_coloring(&inst.graph, &report.coloring, 16);
        assert!(val.is_ok(), "seed {seed}: {val}");
    }
}

#[test]
fn inert_plan_matches_fault_free_run_exactly() {
    let inst = circulant(80, 401);
    let config = RandConfig::for_delta(16, 3);
    let clean = color_randomized(&inst.graph, &config).unwrap();
    let inert = color_randomized_with_faults(
        &inst.graph,
        &config,
        &FaultPlan::default(),
        &Probe::disabled(),
    )
    .unwrap();
    assert_eq!(clean.coloring.len(), inert.coloring.len());
    for v in inst.graph.vertices() {
        assert_eq!(clean.coloring.get(v), inert.coloring.get(v));
    }
    assert_eq!(clean.rounds(), inert.rounds());
    assert_eq!(inert.recovery.retries, 0);
    assert_eq!(inert.recovery.recovery_rounds, 0);
}

/// A heavy drop rate forces retries; the recovery shows up in the stats,
/// in `faults/`-prefixed ledger charges, and as `Retry` fault events —
/// and the run is reproducible from the plan seed.
#[test]
fn recovery_is_accounted_and_reproducible() {
    let inst = circulant(80, 402);
    let config = shattering_config(2);
    let plan = lossy(9, 0.01);

    let run = |cfg: &RandConfig| {
        let sink = Arc::new(RecordingSink::new());
        let probe = Probe::new(sink.clone());
        let report = color_randomized_with_faults(&inst.graph, cfg, &plan, &probe).unwrap();
        (report, sink.events())
    };
    let (a, events) = run(&config);
    verify_delta_coloring(&inst.graph, &a.coloring).unwrap();
    assert!(validate_coloring(&inst.graph, &a.coloring, 16).is_ok());
    assert!(
        a.recovery.retries > 0,
        "1% drops on {} leftover components should force a retry",
        a.shatter.components
    );
    assert!(a.recovery.struck_vertices > 0);
    assert!(a.recovery.components_hit > 0);
    assert!(a.recovery.max_attempts >= 2);
    assert!(a.recovery.recovery_rounds > 0);

    // Discarded attempts are charged under `faults/` and surface on the
    // probe as charge events; each retry emits a Fault event.
    let fault_charges: u64 = events
        .iter()
        .filter_map(|e| match e {
            Event::Charge { path, rounds, .. } if path.contains("faults/") => Some(*rounds),
            _ => None,
        })
        .sum();
    assert_eq!(fault_charges, a.recovery.recovery_rounds);
    let retries = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                Event::Fault {
                    kind: FaultKind::Retry,
                    scope,
                    ..
                } if scope == "pipeline"
            )
        })
        .count();
    assert_eq!(retries, a.recovery.retries);

    // Bit-identical replay from the same seeds.
    let (b, _) = run(&config);
    for v in inst.graph.vertices() {
        assert_eq!(a.coloring.get(v), b.coloring.get(v));
    }
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.rounds(), b.rounds());
}

/// Strikes only re-run the components they hit: with exactly one component
/// hit, every other component solves once.
#[test]
fn only_struck_components_retry() {
    let inst = circulant(120, 403);
    let config = shattering_config(4);
    // Scan for a plan that hits at least one but not all components.
    let mut partial_hit = None;
    for plan_seed in 0..32 {
        let plan = lossy(plan_seed, 0.002);
        let report =
            color_randomized_with_faults(&inst.graph, &config, &plan, &Probe::disabled()).unwrap();
        if report.recovery.components_hit > 0
            && report.recovery.components_hit < report.shatter.components
        {
            partial_hit = Some(report);
            break;
        }
    }
    let report = partial_hit.expect("some plan seed strikes a strict subset of components");
    verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
    assert!(report.recovery.retries >= report.recovery.components_hit);
}
