//! Run-supervisor contracts: kill-and-resume bit-identity at every phase
//! boundary, panic containment with Brooks degradation, budget
//! enforcement, and failure repro bundles.
//!
//! The resume contract is exact: for every checkpoint boundary, stopping
//! there and resuming must produce the same coloring, the same round
//! ledger total, the same recovery stats, and a stitched telemetry
//! stream (partial events + resumed events) equal to the uninterrupted
//! run's stream after wall-clock normalization — at any thread count,
//! with or without a fault plan.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use delta_core::{
    drive_deterministic, drive_randomized, load_snapshot, replay_bundle, ChaosPlan, Config,
    PhaseCursor, RandConfig, RandReport, Report, RunOutcome, Supervisor,
};
use graphgen::coloring::verify_delta_coloring;
use graphgen::generators::{self, BlueprintKind, HardCliqueParams};
use graphgen::Graph;
use localsim::{Event, FaultPlan, JsonlSink, MetricsHub, Probe, RecordingSink};

fn circulant(cliques: usize, seed: u64) -> generators::HardCliqueInstance {
    generators::hard_cliques_with_blueprint(
        &HardCliqueParams {
            cliques,
            delta: 16,
            external_per_vertex: 1,
            seed,
        },
        BlueprintKind::Circulant,
    )
    .unwrap()
}

/// `defer_radius = 5` leaves real leftover components on these circulant
/// instances, so the supervised component pool has units to quarantine.
fn shattering_config(seed: u64, threads: usize) -> RandConfig {
    let mut config = RandConfig::for_delta(16, seed);
    config.defer_radius = 5;
    config.base.threads = threads;
    config
}

fn normalize(events: &[Event]) -> Vec<Event> {
    events.iter().map(Event::normalized).collect()
}

/// Self-cleaning scratch directory under the system temp dir. The tag
/// must be unique per call site since tests share one process.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("delta-supervisor-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn checkpointing(dir: &TempDir) -> Supervisor {
    Supervisor {
        checkpoint_dir: Some(dir.path().to_path_buf()),
        ..Supervisor::passive()
    }
}

fn supervised_rand(
    g: &Graph,
    config: &RandConfig,
    faults: Option<&FaultPlan>,
    sup: &Supervisor,
    resume: Option<delta_core::Snapshot>,
) -> (RunOutcome<RandReport>, Vec<Event>) {
    let sink = Arc::new(RecordingSink::new());
    let probe = Probe::new(sink.clone());
    let outcome = drive_randomized(g, config, faults, &probe, sup, resume).unwrap();
    (outcome, sink.events())
}

fn supervised_det(
    g: &Graph,
    config: &Config,
    sup: &Supervisor,
    resume: Option<delta_core::Snapshot>,
) -> (RunOutcome<Report>, Vec<Event>) {
    let sink = Arc::new(RecordingSink::new());
    let probe = Probe::new(sink.clone());
    let outcome = drive_deterministic(g, config, &probe, sup, resume).unwrap();
    (outcome, sink.events())
}

const RAND_BOUNDARIES: [PhaseCursor; 5] = [
    PhaseCursor::Acd,
    PhaseCursor::Classification,
    PhaseCursor::PreShattering,
    PhaseCursor::PostShattering,
    PhaseCursor::PostProcessing,
];

const DET_BOUNDARIES: [PhaseCursor; 6] = [
    PhaseCursor::Acd,
    PhaseCursor::Classification,
    PhaseCursor::Phase1,
    PhaseCursor::Phase2,
    PhaseCursor::Phase3,
    PhaseCursor::Phase4,
];

/// Runs the randomized pipeline uninterrupted, then kills and resumes it
/// at every phase boundary, asserting bit-identity each time.
fn assert_rand_resume_identical(
    g: &Graph,
    config: &RandConfig,
    faults: Option<&FaultPlan>,
    tag: &str,
) {
    let ref_dir = TempDir::new(&format!("{tag}-ref"));
    let (outcome, ref_events) = supervised_rand(g, config, faults, &checkpointing(&ref_dir), None);
    let RunOutcome::Complete {
        report: ref_report, ..
    } = outcome
    else {
        panic!("{tag}: uninterrupted run must complete");
    };
    verify_delta_coloring(g, &ref_report.coloring).unwrap();
    let ref_checkpoints = ref_events
        .iter()
        .filter(|e| matches!(e, Event::Checkpoint { .. }))
        .count();
    assert_eq!(
        ref_checkpoints,
        RAND_BOUNDARIES.len(),
        "{tag}: uninterrupted run must emit one Checkpoint event per boundary"
    );

    for cursor in RAND_BOUNDARIES {
        let dir = TempDir::new(&format!("{tag}-{}", cursor.slug()));
        let stopper = Supervisor {
            stop_after: Some(cursor),
            ..checkpointing(&dir)
        };
        let (outcome, partial_events) = supervised_rand(g, config, faults, &stopper, None);
        let RunOutcome::Suspended {
            cursor: at,
            snapshot,
        } = outcome
        else {
            panic!("{tag}: expected suspension at `{cursor}`");
        };
        assert_eq!(at, cursor);

        let snap = load_snapshot(&snapshot).unwrap();
        let (outcome, resumed_events) =
            supervised_rand(g, config, faults, &checkpointing(&dir), Some(snap));
        let RunOutcome::Complete { report, .. } = outcome else {
            panic!("{tag}: resumed run from `{cursor}` must complete");
        };

        assert_eq!(
            report.coloring, ref_report.coloring,
            "{tag}: colors differ after resume from `{cursor}`"
        );
        assert_eq!(
            report.ledger.total(),
            ref_report.ledger.total(),
            "{tag}: round totals differ after resume from `{cursor}`"
        );
        assert_eq!(
            report.recovery, ref_report.recovery,
            "{tag}: recovery stats differ after resume from `{cursor}`"
        );
        let mut stitched = normalize(&partial_events);
        stitched.extend(normalize(&resumed_events));
        assert_eq!(
            stitched,
            normalize(&ref_events),
            "{tag}: stitched telemetry differs from uninterrupted run at `{cursor}`"
        );
    }
}

#[test]
fn randomized_kill_and_resume_is_bit_identical_at_every_boundary() {
    let inst = circulant(80, 500);
    for threads in [1, 4] {
        let config = shattering_config(1, threads);
        assert_rand_resume_identical(&inst.graph, &config, None, &format!("clean-t{threads}"));
    }
}

#[test]
fn faulted_kill_and_resume_is_bit_identical_at_every_boundary() {
    let inst = circulant(80, 501);
    let plan = FaultPlan {
        seed: 0xFA17,
        message_drop_p: 0.01,
        ..FaultPlan::default()
    };
    for threads in [1, 4] {
        let config = shattering_config(5, threads);
        assert_rand_resume_identical(
            &inst.graph,
            &config,
            Some(&plan),
            &format!("faulted-t{threads}"),
        );
    }
}

#[test]
fn deterministic_kill_and_resume_is_bit_identical_at_every_boundary() {
    let inst = circulant(80, 500);
    for threads in [1, 4] {
        let mut config = Config::for_delta(16);
        config.threads = threads;
        let tag = format!("det-t{threads}");

        let ref_dir = TempDir::new(&format!("{tag}-ref"));
        let (outcome, ref_events) =
            supervised_det(&inst.graph, &config, &checkpointing(&ref_dir), None);
        let RunOutcome::Complete {
            report: ref_report, ..
        } = outcome
        else {
            panic!("{tag}: uninterrupted run must complete");
        };
        verify_delta_coloring(&inst.graph, &ref_report.coloring).unwrap();

        for cursor in DET_BOUNDARIES {
            let dir = TempDir::new(&format!("{tag}-{}", cursor.slug()));
            let stopper = Supervisor {
                stop_after: Some(cursor),
                ..checkpointing(&dir)
            };
            let (outcome, partial_events) = supervised_det(&inst.graph, &config, &stopper, None);
            let RunOutcome::Suspended { snapshot, .. } = outcome else {
                panic!(
                    "{tag}: expected suspension at `{cursor}` (instance must have hard cliques)"
                );
            };
            let snap = load_snapshot(&snapshot).unwrap();
            let (outcome, resumed_events) =
                supervised_det(&inst.graph, &config, &checkpointing(&dir), Some(snap));
            let RunOutcome::Complete { report, .. } = outcome else {
                panic!("{tag}: resumed run from `{cursor}` must complete");
            };
            assert_eq!(
                report.coloring, ref_report.coloring,
                "{tag}: colors differ after resume from `{cursor}`"
            );
            assert_eq!(report.ledger.total(), ref_report.ledger.total());
            let mut stitched = normalize(&partial_events);
            stitched.extend(normalize(&resumed_events));
            assert_eq!(
                stitched,
                normalize(&ref_events),
                "{tag}: stitched telemetry differs from uninterrupted run at `{cursor}`"
            );
        }
    }
}

#[test]
fn resume_rejects_a_mismatched_graph() {
    let a = circulant(80, 500);
    let b = circulant(80, 777);
    let config = shattering_config(1, 1);
    let dir = TempDir::new("digest-mismatch");
    let stopper = Supervisor {
        stop_after: Some(PhaseCursor::Classification),
        ..checkpointing(&dir)
    };
    let (outcome, _) = supervised_rand(&a.graph, &config, None, &stopper, None);
    let RunOutcome::Suspended { snapshot, .. } = outcome else {
        panic!("expected suspension");
    };
    let snap = load_snapshot(&snapshot).unwrap();
    let err = drive_randomized(
        &b.graph,
        &config,
        None,
        &Probe::disabled(),
        &Supervisor::passive(),
        Some(snap),
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("digest"),
        "error must name the digest mismatch, got: {msg}"
    );
}

#[test]
fn injected_panic_degrades_to_brooks_and_completes() {
    let inst = circulant(80, 500);
    let config = shattering_config(1, 2);
    let sup = Supervisor {
        degrade: true,
        chaos: ChaosPlan {
            panic_components: vec![0],
            ..ChaosPlan::default()
        },
        ..Supervisor::passive()
    };
    let (outcome, events) = supervised_rand(&inst.graph, &config, None, &sup, None);
    let RunOutcome::Complete { report, degraded } = outcome else {
        panic!("contained panic must not abort the run");
    };
    assert_eq!(degraded.len(), 1, "exactly the panicked component degrades");
    assert_eq!(degraded[0].index, 0);
    assert!(
        degraded[0].reason.contains("panic"),
        "reason must record the panic, got: {}",
        degraded[0].reason
    );
    verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
    assert!(
        delta_core::validate_coloring(&inst.graph, &report.coloring, 16).is_ok(),
        "degraded run must still produce a valid Δ-coloring"
    );
    let degraded_events: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, Event::Degraded { .. }))
        .collect();
    assert_eq!(
        degraded_events.len(),
        1,
        "one Degraded telemetry event per quarantined component"
    );
}

/// A contained component panic must flush the trace sink: a JSONL trace
/// buffered behind a large `BufWriter` reaches the backing store at the
/// containment point, not only when the sink is eventually dropped — so
/// a run that dies right after still leaves its trace on disk.
#[test]
fn contained_panic_flushes_buffered_trace() {
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let inst = circulant(80, 500);
    let config = shattering_config(1, 2);
    let sup = Supervisor {
        degrade: true,
        chaos: ChaosPlan {
            panic_components: vec![0],
            ..ChaosPlan::default()
        },
        ..Supervisor::passive()
    };
    let buf = SharedBuf::default();
    // 4 MiB of buffering: far more than this run emits, so no line can
    // reach the shared buffer through capacity spill — only via flush.
    let sink = Arc::new(JsonlSink::new(std::io::BufWriter::with_capacity(
        1 << 22,
        buf.clone(),
    )));
    let hub = Arc::new(MetricsHub::new());
    let probe = Probe::new(sink.clone()).with_metrics(hub.clone());
    let outcome = drive_randomized(&inst.graph, &config, None, &probe, &sup, None).unwrap();
    assert!(
        matches!(outcome, RunOutcome::Complete { .. }),
        "contained panic must not abort the run"
    );
    // The sink (and its BufWriter) is still alive — nothing was dropped.
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    assert!(
        !text.is_empty(),
        "containment must flush buffered trace lines while the sink is alive"
    );
    for line in text.lines() {
        let _: Event = serde::json::from_str(line)
            .unwrap_or_else(|e| panic!("flushed line must parse as an event: {e}\n{line}"));
    }
    assert!(
        text.contains("pre-shattering"),
        "the flushed prefix must cover the phases before the panic"
    );
    assert_eq!(
        hub.counter("supervisor.contained_panics").get(),
        1,
        "the containment path records the panic in the metrics hub"
    );
}

#[test]
fn round_budget_exhaustion_degrades_every_component() {
    let inst = circulant(80, 500);
    let config = shattering_config(1, 1);
    let sup = Supervisor {
        degrade: true,
        component_round_budget: Some(0),
        ..Supervisor::passive()
    };
    let (outcome, _) = supervised_rand(&inst.graph, &config, None, &sup, None);
    let RunOutcome::Complete { report, degraded } = outcome else {
        panic!("budget degradation must not abort the run");
    };
    assert_eq!(
        degraded.len(),
        report.shatter.components,
        "a zero round budget quarantines every leftover component"
    );
    assert!(
        !degraded.is_empty(),
        "instance must have leftover components"
    );
    assert!(degraded
        .iter()
        .all(|d| d.reason.contains("round budget exceeded")));
    verify_delta_coloring(&inst.graph, &report.coloring).unwrap();
}

#[test]
fn budget_overrun_without_degradation_is_an_error() {
    let inst = circulant(80, 500);
    let config = shattering_config(1, 1);
    let sup = Supervisor {
        component_round_budget: Some(0),
        ..Supervisor::passive()
    };
    let err =
        drive_randomized(&inst.graph, &config, None, &Probe::disabled(), &sup, None).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("degradation disabled"),
        "error must say degradation was disabled, got: {msg}"
    );
}

#[test]
fn skipped_component_captures_a_bundle_and_replay_reproduces_it() {
    let inst = circulant(80, 500);
    let config = shattering_config(1, 1);
    let dir = TempDir::new("skip-bundle");
    let sup = Supervisor {
        bundle_dir: Some(dir.path().to_path_buf()),
        chaos: ChaosPlan {
            skip_components: vec![0],
            ..ChaosPlan::default()
        },
        ..Supervisor::passive()
    };
    let (outcome, _) = supervised_rand(&inst.graph, &config, None, &sup, None);
    let RunOutcome::Failed(failure) = outcome else {
        panic!("a silently skipped component must fail the completeness check");
    };
    assert!(
        !failure.violations.is_empty(),
        "the failure must record concrete violations"
    );
    let bundle = failure
        .bundle
        .expect("bundle_dir was set, bundle must save");

    let replay = replay_bundle(&bundle, &Probe::disabled()).unwrap();
    assert!(replay.reproduced, "replaying the bundle must reproduce");
    assert_eq!(replay.recorded_error, failure.error);
    assert_eq!(replay.observed_violations, failure.violations);
}

fn golden_bundle_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
        .join("golden-bundle.json")
}

/// The committed golden bundle (generated by `regenerate_golden_bundle`
/// below) must keep reproducing its recorded validation failure — this
/// pins the bundle schema and the replay determinism across refactors.
#[test]
fn golden_bundle_replay_reproduces_the_recorded_failure() {
    let replay = replay_bundle(&golden_bundle_path(), &Probe::disabled()).unwrap();
    assert!(
        !replay.recorded_violations.is_empty(),
        "golden bundle must carry a recorded violation list"
    );
    assert!(
        replay.reproduced,
        "golden bundle no longer reproduces: recorded `{}` vs observed `{:?}`",
        replay.recorded_error, replay.observed_error
    );
}

/// Regenerates `tests/data/golden-bundle.json`. Run with:
/// `cargo test -p delta-core --test supervisor regenerate_golden_bundle -- --ignored`
#[test]
#[ignore = "writes the committed golden bundle; run manually after schema changes"]
fn regenerate_golden_bundle() {
    let inst = circulant(80, 500);
    let config = shattering_config(1, 1);
    let data_dir = golden_bundle_path().parent().unwrap().to_path_buf();
    std::fs::create_dir_all(&data_dir).unwrap();
    let sup = Supervisor {
        bundle_dir: Some(data_dir.clone()),
        chaos: ChaosPlan {
            skip_components: vec![0],
            ..ChaosPlan::default()
        },
        ..Supervisor::passive()
    };
    let (outcome, _) = supervised_rand(&inst.graph, &config, None, &sup, None);
    let RunOutcome::Failed(failure) = outcome else {
        panic!("skip chaos must fail");
    };
    let written = failure.bundle.unwrap();
    std::fs::rename(&written, golden_bundle_path()).unwrap();
}
